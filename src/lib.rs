//! # xml-view-update
//!
//! A complete Rust implementation of
//!
//! > Sławek Staworko, Iovka Boneva, Benoît Groz.
//! > **The View Update Problem for XML.**
//! > EDBT/ICDT Workshops 2010.
//!
//! Given an XML document `t` satisfying a DTD `D`, a view defined by an
//! annotation `A` (hiding selected parts of the document), and a user
//! update `S` of the view (inserting/deleting whole subtrees), the library
//! computes update *propagations* `S'` to the source document that are
//! **schema compliant** (`Out(S') ∈ L(D)`) and **side-effect free**
//! (`A(Out(S')) = Out(S)`), preferring the ones that minimally modify the
//! invisible parts of the document.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names:
//!
//! | module | contents |
//! |--------|----------|
//! | [`tree`] | ordered labeled trees with persistent node identifiers |
//! | [`automata`] | regexes, Glushkov NFAs, DFAs, min-cost words |
//! | [`dtd`] | DTDs, validation, minimal trees, insertlets |
//! | [`view`] | annotations, visibility, view extraction, view DTDs |
//! | [`edit`] | editing scripts over `E(Σ)` and the update builder |
//! | [`propagate`] | inversion/propagation graphs, the algorithm (the paper's contribution) |
//! | [`repair`] | Zhang–Shasha TED and the §6.2 repair baseline |
//! | [`workload`] | paper fixtures and deterministic generators |
//! | [`xml`] | element-only XML + `<!ELEMENT>` DTD interchange |
//!
//! ## Quickstart
//!
//! ```
//! use xml_view_update::prelude::*;
//!
//! // Schema and security view.
//! let mut alpha = Alphabet::new();
//! let mut gen = NodeIdGen::new();
//! let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
//! let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
//!
//! // Source document and the view the user sees.
//! let t = parse_term_with_ids(
//!     &mut alpha, &mut gen,
//!     "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
//! ).unwrap();
//! let view = extract_view(&ann, &t);
//!
//! // The user edits the view: delete the first (a, d) group…
//! let mut builder = UpdateBuilder::new(&view);
//! builder.delete(NodeId(1)).unwrap();
//! builder.delete(NodeId(3)).unwrap();
//! let update = builder.finish();
//!
//! // …and the library propagates the update to the source document.
//! let inst = Instance::new(&dtd, &ann, &t, &update, alpha.len()).unwrap();
//! let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
//! verify_propagation(&inst, &prop.script).unwrap();
//!
//! // Hidden nodes inside the deleted group are deleted with it; hidden
//! // nodes elsewhere are untouched.
//! let new_source = output_tree(&prop.script).unwrap();
//! assert!(dtd.is_valid(&new_source));
//! assert_eq!(extract_view(&ann, &new_source), output_tree(&update).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use xvu_automata as automata;
pub use xvu_dtd as dtd;
pub use xvu_edit as edit;
pub use xvu_propagate as propagate;
pub use xvu_repair as repair;
pub use xvu_tree as tree;
pub use xvu_view as view;
pub use xvu_workload as workload;
pub use xvu_xml as xml;

/// The commonly used names in one import.
pub mod prelude {
    pub use xvu_dtd::Violation;
    pub use xvu_dtd::{
        exponential_dtd, min_sizes, minimal_witness, parse_dtd, Dtd, InsertletPackage, MinSizes,
    };
    pub use xvu_edit::{
        apply, cost, del_script, input_tree, ins_script, nop_script, output_tree, parse_script,
        script_to_term, validate_script, ELabel, EditOp, Script, UpdateBuilder,
    };
    pub use xvu_edit::{compose, diff};
    pub use xvu_propagate::{
        count_optimal_propagations, cross_view_effect, cross_view_touched,
        enumerate_optimal_propagations, find_complement_preserving, invisible_impact, propagate,
        propagate_view_edit, revalidate_output, typing_report, verify_propagation, Config,
        CostModel, Instance, InversionForest, InvisibleImpact, PropagateError, Propagation,
        PropagationForest, Selector, TypingReport,
    };
    pub use xvu_repair::{repair_based_update, tree_edit_distance, RepairConfig};
    pub use xvu_tree::{
        parse_term, parse_term_with_ids, to_term, to_term_with_ids, Alphabet, DocTree, NodeId,
        NodeIdGen, Sym, Tree, TreeBuilder,
    };
    pub use xvu_view::{
        derive_view_dtd, extract_view, parse_annotation, visible_nodes, Annotation,
    };
    pub use xvu_xml::{read_dtd, read_xml, write_xml, WriteOptions};
}
