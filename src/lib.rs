//! # xml-view-update
//!
//! A complete Rust implementation of
//!
//! > Sławek Staworko, Iovka Boneva, Benoît Groz.
//! > **The View Update Problem for XML.**
//! > EDBT/ICDT Workshops 2010.
//!
//! Given an XML document `t` satisfying a DTD `D`, a view defined by an
//! annotation `A` (hiding selected parts of the document), and a user
//! update `S` of the view (inserting/deleting whole subtrees), the library
//! computes update *propagations* `S'` to the source document that are
//! **schema compliant** (`Out(S') ∈ L(D)`) and **side-effect free**
//! (`A(Out(S')) = Out(S)`), preferring the ones that minimally modify the
//! invisible parts of the document.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names:
//!
//! | module | contents |
//! |--------|----------|
//! | [`tree`] | ordered labeled trees with persistent node identifiers |
//! | [`automata`] | regexes, Glushkov NFAs, DFAs, min-cost words |
//! | [`dtd`] | DTDs, validation, minimal trees, insertlets |
//! | [`view`] | annotations, visibility, view extraction, view DTDs |
//! | [`edit`] | editing scripts over `E(Σ)` and the update builder |
//! | [`propagate`] | inversion/propagation graphs, the algorithm (the paper's contribution) |
//! | [`repair`] | Zhang–Shasha TED and the §6.2 repair baseline |
//! | [`workload`] | paper fixtures and deterministic generators |
//! | [`server`] | the long-lived serving daemon, wire protocol, and fleet driver |
//! | [`xml`] | element-only XML + `<!ELEMENT>` DTD interchange |
//! | [`error`] | [`XvuError`], the facade-wide error type |
//!
//! ## Quickstart
//!
//! The schema and view are fixed once, as an [`Engine`]; each document is
//! opened in a [`Session`] that serves any number of updates:
//!
//! ```
//! use xml_view_update::prelude::*;
//!
//! # fn main() -> Result<(), XvuError> {
//! // Schema and security view.
//! let mut alpha = Alphabet::new();
//! let mut gen = NodeIdGen::new();
//! let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*")?;
//! let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b")?;
//!
//! // Source document…
//! let t = parse_term_with_ids(
//!     &mut alpha, &mut gen,
//!     "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
//! )?;
//!
//! // …compiled engine (derived view DTD, min-size tables, cost model)…
//! let engine = Engine::builder()
//!     .alphabet(alpha)
//!     .dtd(dtd)
//!     .annotation(ann)
//!     .build()?;
//!
//! // …and an open session: validated once, view materialised once.
//! let mut session = engine.open(&t)?;
//!
//! // The user edits the view: delete the first (a, d) group…
//! let mut builder = UpdateBuilder::new(session.view());
//! builder.delete(NodeId(1))?;
//! builder.delete(NodeId(3))?;
//! let update = builder.finish();
//!
//! // …the engine propagates it to the source, and the commit advances
//! // the session (incremental revalidation) to serve the next update.
//! let prop = session.propagate(&update)?;
//! session.verify(&update, &prop.script)?;
//! session.commit(&prop)?;
//!
//! // Hidden nodes inside the deleted group went with it; hidden nodes
//! // elsewhere are untouched, and the new view is what the user asked.
//! assert!(engine.dtd().is_valid(session.document()));
//! assert_eq!(session.view(), &output_tree(&update).unwrap());
//! # Ok(())
//! # }
//! ```
//!
//! One-shot callers can still use the compatibility layer
//! ([`prelude::Instance`] + [`prelude::propagate`] +
//! [`prelude::verify_propagation`]); it shares the engine's core code
//! paths but re-derives the schema artefacts on every call.
//!
//! ## Concurrent serving
//!
//! The compiled engine is immutable and `Send + Sync`: share one
//! `Arc<Engine>` across OS worker threads and serve independent requests
//! with [`Engine::propagate_batch`], or check out per-document sessions
//! from a [`prelude::SessionPool`] for the repeated-update path — see
//! [`propagate::serve`] for the sharing contract and examples.
//!
//! ```
//! use std::sync::Arc;
//! use xml_view_update::prelude::*;
//!
//! # fn main() -> Result<(), XvuError> {
//! let mut alpha = Alphabet::new();
//! let mut gen = NodeIdGen::new();
//! let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*")?;
//! let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b")?;
//! let t = parse_term_with_ids(
//!     &mut alpha, &mut gen,
//!     "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
//! )?;
//! let s = parse_script(
//!     &mut alpha,
//!     "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
//!      ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
//! )?;
//!
//! let engine = Arc::new(
//!     Engine::builder().alphabet(alpha).dtd(dtd).annotation(ann).build()?,
//! );
//! // Independent (document, update) requests, four worker threads,
//! // results in request order:
//! let requests: Vec<_> = (0..8).map(|_| (t.clone(), s.clone())).collect();
//! for result in engine.propagate_batch(&requests, 4) {
//!     assert_eq!(result?.cost, 14);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! ## The serving daemon
//!
//! For fleets of documents behind a network boundary, the [`server`]
//! crate wraps the engine in a long-lived daemon: a versioned frame
//! protocol over TCP or stdio, a document store, a bounded LRU session
//! pool with transparent eviction, admission control with `retry`
//! pushback, and latency/cache observability via a `stats` verb — run it
//! with `xvu serve`, speak to it with `xvu client` or
//! [`server::Client`], and regression-test it against direct library
//! sessions with [`server::run_fleet`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod error;

pub use xvu_automata as automata;
pub use xvu_dtd as dtd;
pub use xvu_edit as edit;
pub use xvu_propagate as propagate;
pub use xvu_repair as repair;
pub use xvu_server as server;
pub use xvu_tree as tree;
pub use xvu_view as view;
pub use xvu_workload as workload;
pub use xvu_xml as xml;

pub use error::XvuError;
pub use xvu_propagate::{Engine, EngineBuilder, Session};

/// The commonly used names in one import.
pub mod prelude {
    pub use crate::error::XvuError;
    pub use xvu_dtd::Violation;
    pub use xvu_dtd::{
        exponential_dtd, min_sizes, minimal_witness, parse_dtd, Dtd, InsertletPackage, MinSizes,
    };
    pub use xvu_edit::{
        apply, apply_in_place, cost, del_script, input_tree, ins_script, nop_script, output_tree,
        parse_script, script_footprint, script_to_term, validate_script, ELabel, EditOp, Script,
        ScriptFootprint, UpdateBuilder,
    };
    pub use xvu_edit::{compose, diff};
    pub use xvu_propagate::{
        count_optimal_propagations, cross_view_effect, cross_view_touched,
        enumerate_optimal_propagations, find_complement_preserving, invisible_impact, propagate,
        propagate_view_edit, revalidate_output, typing_report, verify_propagation, CacheStats,
        Config, CostModel, Engine, EngineBuilder, EvictOutcome, GraphScratch, Instance,
        InversionForest, InvisibleImpact, PhaseBreakdown, PropScratch, PropagateError, Propagation,
        PropagationForest, Selector, Session, SessionLease, SessionPool, SharedCacheBackend,
        SharedCacheStats, SharedMemoCache, TypingReport,
    };
    pub use xvu_repair::{repair_based_update, tree_edit_distance, RepairConfig};
    pub use xvu_tree::{
        parse_term, parse_term_with_ids, to_term, to_term_with_ids, Alphabet, DocTree, InternId,
        Interner, NodeId, NodeIdGen, Sym, Tree, TreeBuilder,
    };
    pub use xvu_view::{
        derive_view_dtd, extract_view, parse_annotation, visible_nodes, Annotation,
    };
    pub use xvu_xml::{read_dtd, read_xml, write_xml, WriteOptions};
}
