//! The facade-wide error type.
//!
//! Every workspace crate defines its own error enum; applications that
//! drive the whole pipeline (parse a DTD, read XML, build an engine,
//! propagate, write XML) would otherwise juggle seven incompatible `Err`
//! types. [`XvuError`] unifies them: each per-crate error converts with
//! `From`, so `?` works uniformly across the pipeline — the `xvu` CLI in
//! [`crate::cli`] is written against it.

use std::fmt;
use xvu_automata::AutomatonError;
use xvu_dtd::DtdError;
use xvu_edit::EditError;
use xvu_propagate::PropagateError;
use xvu_tree::TreeError;
use xvu_view::AnnotationParseError;
use xvu_xml::XmlError;

/// Any error the xml-view-update pipeline can raise.
#[derive(Clone, Debug)]
pub enum XvuError {
    /// Tree construction/manipulation error.
    Tree(TreeError),
    /// Regex/NFA/DFA error.
    Automaton(AutomatonError),
    /// DTD parsing, validation, or insertlet error.
    Dtd(DtdError),
    /// Editing-script error.
    Edit(EditError),
    /// Propagation-pipeline error.
    Propagate(PropagateError),
    /// XML/DTD interchange error.
    Xml(XmlError),
    /// Annotation-syntax error.
    Annotation(AnnotationParseError),
    /// An application-level message (missing input, bad flag, …).
    Message(String),
}

impl fmt::Display for XvuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XvuError::Tree(e) => write!(f, "{e}"),
            XvuError::Automaton(e) => write!(f, "{e}"),
            XvuError::Dtd(e) => write!(f, "{e}"),
            XvuError::Edit(e) => write!(f, "{e}"),
            XvuError::Propagate(e) => write!(f, "{e}"),
            XvuError::Xml(e) => write!(f, "{e}"),
            XvuError::Annotation(e) => write!(f, "{e}"),
            XvuError::Message(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for XvuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XvuError::Tree(e) => Some(e),
            XvuError::Automaton(e) => Some(e),
            XvuError::Dtd(e) => Some(e),
            XvuError::Edit(e) => Some(e),
            XvuError::Propagate(e) => Some(e),
            XvuError::Xml(e) => Some(e),
            XvuError::Annotation(e) => Some(e),
            XvuError::Message(_) => None,
        }
    }
}

impl From<TreeError> for XvuError {
    fn from(e: TreeError) -> Self {
        XvuError::Tree(e)
    }
}

impl From<AutomatonError> for XvuError {
    fn from(e: AutomatonError) -> Self {
        XvuError::Automaton(e)
    }
}

impl From<DtdError> for XvuError {
    fn from(e: DtdError) -> Self {
        XvuError::Dtd(e)
    }
}

impl From<EditError> for XvuError {
    fn from(e: EditError) -> Self {
        XvuError::Edit(e)
    }
}

impl From<PropagateError> for XvuError {
    fn from(e: PropagateError) -> Self {
        XvuError::Propagate(e)
    }
}

impl From<XmlError> for XvuError {
    fn from(e: XmlError) -> Self {
        XvuError::Xml(e)
    }
}

impl From<AnnotationParseError> for XvuError {
    fn from(e: AnnotationParseError) -> Self {
        XvuError::Annotation(e)
    }
}

impl From<String> for XvuError {
    fn from(m: String) -> Self {
        XvuError::Message(m)
    }
}

impl From<&str> for XvuError {
    fn from(m: &str) -> Self {
        XvuError::Message(m.to_owned())
    }
}

impl From<std::num::ParseIntError> for XvuError {
    fn from(e: std::num::ParseIntError) -> Self {
        XvuError::Message(format!("invalid number: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline_fragment() -> Result<usize, XvuError> {
        // each `?` below crosses a different crate's error type
        let mut alpha = xvu_tree::Alphabet::new();
        let dtd = xvu_dtd::parse_dtd(&mut alpha, "r -> a*")?;
        let mut gen = xvu_tree::NodeIdGen::new();
        let doc = xvu_tree::parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1)")?;
        dtd.validate(&doc)?;
        let xml = xvu_xml::write_xml(&doc, &alpha, &xvu_xml::WriteOptions::default());
        let back = xvu_xml::read_xml(&mut alpha, &mut gen, &xml)?;
        Ok(back.size())
    }

    #[test]
    fn question_mark_works_across_crates() {
        assert_eq!(pipeline_fragment().unwrap(), 2);
    }

    #[test]
    fn conversions_and_display() {
        let e: XvuError = "missing --dtd FILE".into();
        assert_eq!(e.to_string(), "missing --dtd FILE");
        let e: XvuError = "x".parse::<usize>().unwrap_err().into();
        assert!(e.to_string().starts_with("invalid number:"), "{e}");
        let mut alpha = xvu_tree::Alphabet::new();
        let parse_err = xvu_dtd::parse_dtd(&mut alpha, "r ->").unwrap_err();
        let wrapped: XvuError = parse_err.clone().into();
        assert_eq!(wrapped.to_string(), parse_err.to_string());
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}
