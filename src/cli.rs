//! The `xvu` command-line interface.
//!
//! A thin, dependency-free front end over the library for shell use:
//!
//! ```text
//! xvu validate  --dtd schema.dtd --doc doc.xml
//! xvu view      --dtd schema.dtd --ann view.ann --doc doc.xml
//! xvu invert    --dtd schema.dtd --ann view.ann --view view.xml
//! xvu propagate --dtd schema.dtd --ann view.ann --doc doc.xml --update edit.script
//!               [--selector nop|first|type]
//! ```
//!
//! File formats are sniffed from content: DTDs may be `<!ELEMENT …>`
//! declarations or the `label -> regex` rule syntax; documents may be XML
//! (`<…>`, with optional `xvu:id` attributes) or term syntax
//! (`r#0(a#1, …)`); annotations are `hide`/`show` lines; updates are
//! script terms (`nop:r#0(del:a#1, …)`).
//!
//! All logic lives in [`run`] so it is unit-testable; the binary only
//! forwards `std::env::args` and prints.

use crate::prelude::*;
use std::fmt::Write as _;

/// Executes a CLI invocation. `args` excludes the program name. Returns
/// the text to print on success, or a user-facing error message.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?;
    let opts = parse_opts(it.as_slice())?;
    match cmd.as_str() {
        "validate" => cmd_validate(&opts),
        "view" => cmd_view(&opts),
        "invert" => cmd_invert(&opts),
        "propagate" => cmd_propagate(&opts),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: xvu <command> [options]\n\
     \n\
     commands:\n\
     \x20 validate  --dtd FILE --doc FILE\n\
     \x20 view      --dtd FILE --ann FILE --doc FILE\n\
     \x20 invert    --dtd FILE --ann FILE --view FILE\n\
     \x20 propagate --dtd FILE --ann FILE --doc FILE --update FILE [--selector nop|first|type]\n"
        .to_owned()
}

struct Opts {
    dtd: Option<String>,
    ann: Option<String>,
    doc: Option<String>,
    view: Option<String>,
    update: Option<String>,
    selector: Selector,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        dtd: None,
        ann: None,
        doc: None,
        view: None,
        update: None,
        selector: Selector::PreferNop,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--dtd" => opts.dtd = Some(read_file(value()?)?),
            "--ann" => opts.ann = Some(read_file(value()?)?),
            "--doc" => opts.doc = Some(read_file(value()?)?),
            "--view" => opts.view = Some(read_file(value()?)?),
            "--update" => opts.update = Some(read_file(value()?)?),
            "--selector" => {
                opts.selector = match value()? {
                    "nop" => Selector::PreferNop,
                    "first" => Selector::First,
                    "type" => Selector::PreferTypePreserving,
                    other => return Err(format!("unknown selector {other:?}")),
                }
            }
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }
    Ok(opts)
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Context shared by the commands: alphabet + id generator + parsed
/// inputs.
struct Ctx {
    alpha: Alphabet,
    gen: NodeIdGen,
    dtd: Dtd,
}

impl Ctx {
    fn new(opts: &Opts) -> Result<Ctx, String> {
        let src = opts.dtd.as_deref().ok_or("missing --dtd FILE".to_owned())?;
        let mut alpha = Alphabet::new();
        let dtd = if src.trim_start().starts_with("<!") {
            read_dtd(&mut alpha, src).map_err(|e| e.to_string())?
        } else {
            parse_dtd(&mut alpha, src).map_err(|e| e.to_string())?
        };
        Ok(Ctx {
            alpha,
            gen: NodeIdGen::new(),
            dtd,
        })
    }

    fn doc(&mut self, src: &str) -> Result<DocTree, String> {
        let trimmed = src.trim_start();
        if trimmed.starts_with('<') {
            read_xml(&mut self.alpha, &mut self.gen, src).map_err(|e| e.to_string())
        } else {
            parse_term_with_ids(&mut self.alpha, &mut self.gen, src.trim())
                .map_err(|e| e.to_string())
        }
    }

    fn ann(&mut self, opts: &Opts) -> Result<Annotation, String> {
        let src = opts.ann.as_deref().ok_or("missing --ann FILE".to_owned())?;
        parse_annotation(&mut self.alpha, src).map_err(|e| e.to_string())
    }
}

fn cmd_validate(opts: &Opts) -> Result<String, String> {
    let mut ctx = Ctx::new(opts)?;
    let doc_src = opts.doc.as_deref().ok_or("missing --doc FILE")?;
    let doc = ctx.doc(doc_src)?;
    match ctx.dtd.first_violation(&doc) {
        None => Ok(format!("valid: {} nodes\n", doc.size())),
        Some(v) => Err(format!(
            "invalid at node {} (label {}): child word [{}] not allowed",
            v.node,
            ctx.alpha.name(v.label),
            v.child_word
                .iter()
                .map(|&s| ctx.alpha.name(s))
                .collect::<Vec<_>>()
                .join(" ")
        )),
    }
}

fn cmd_view(opts: &Opts) -> Result<String, String> {
    let mut ctx = Ctx::new(opts)?;
    let ann = ctx.ann(opts)?;
    let doc_src = opts.doc.as_deref().ok_or("missing --doc FILE")?;
    let doc = ctx.doc(doc_src)?;
    ctx.dtd.validate(&doc).map_err(|e| e.to_string())?;
    let view = extract_view(&ann, &doc);
    Ok(write_xml(
        &view,
        &ctx.alpha,
        &WriteOptions {
            pretty: true,
            with_ids: true,
        },
    ))
}

fn cmd_invert(opts: &Opts) -> Result<String, String> {
    let mut ctx = Ctx::new(opts)?;
    let ann = ctx.ann(opts)?;
    let view_src = opts.view.as_deref().ok_or("missing --view FILE")?;
    let view = ctx.doc(view_src)?;
    let sizes = min_sizes(&ctx.dtd, ctx.alpha.len());
    let insertlets = InsertletPackage::new();
    let cm = CostModel {
        sizes: &sizes,
        insertlets: &insertlets,
    };
    let forest = InversionForest::build(&ctx.dtd, &ann, &view, &cm).map_err(|e| e.to_string())?;
    let mut gen = ctx.gen.clone();
    let inverse = forest
        .materialize_min(&ctx.dtd, &cm, Selector::PreferNop, &mut gen, 1_000_000)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "minimal inverse: {} nodes ({} visible + {} padding)",
        inverse.size(),
        view.size(),
        forest.min_padding()
    );
    out.push_str(&write_xml(
        &inverse,
        &ctx.alpha,
        &WriteOptions {
            pretty: true,
            with_ids: true,
        },
    ));
    Ok(out)
}

fn cmd_propagate(opts: &Opts) -> Result<String, String> {
    let mut ctx = Ctx::new(opts)?;
    let ann = ctx.ann(opts)?;
    let doc_src = opts.doc.as_deref().ok_or("missing --doc FILE")?;
    let doc = ctx.doc(doc_src)?;
    let update_src = opts.update.as_deref().ok_or("missing --update FILE")?;
    let update = parse_script(&mut ctx.alpha, update_src.trim()).map_err(|e| e.to_string())?;

    let inst =
        Instance::new(&ctx.dtd, &ann, &doc, &update, ctx.alpha.len()).map_err(|e| e.to_string())?;
    let cfg = Config {
        selector: opts.selector,
        ..Config::default()
    };
    let prop = propagate(&inst, &InsertletPackage::new(), &cfg).map_err(|e| e.to_string())?;
    verify_propagation(&inst, &prop.script).map_err(|e| e.to_string())?;
    let new_source = output_tree(&prop.script).expect("propagations preserve the root");

    let mut out = String::new();
    let _ = writeln!(out, "propagation cost: {}", prop.cost);
    let _ = writeln!(
        out,
        "optimal propagations captured: {}",
        count_optimal_propagations(&prop.forest)
    );
    let _ = writeln!(out, "script: {}", script_to_term(&prop.script, &ctx.alpha));
    let _ = writeln!(out, "new source:");
    out.push_str(&write_xml(
        &new_source,
        &ctx.alpha,
        &WriteOptions {
            pretty: true,
            with_ids: true,
        },
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DTD: &str = "r -> (a.(b+c).d)*\nd -> ((a+b).c)*";
    const ANN: &str = "hide r b\nhide r c\nhide d a\nhide d b";
    const DOC: &str = "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))";
    const UPDATE: &str = "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
        ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))";

    fn write_tmp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join(format!("xvu-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(name);
        std::fs::write(&path, content).expect("write tmp");
        path.to_string_lossy().into_owned()
    }

    fn run_args(args: &[&str]) -> Result<String, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&owned)
    }

    #[test]
    fn validate_accepts_and_rejects() {
        let dtd = write_tmp("schema.rules", DTD);
        let good = write_tmp("good.term", DOC);
        let out = run_args(&["validate", "--dtd", &dtd, "--doc", &good]).unwrap();
        assert!(out.contains("valid: 11 nodes"));

        let bad = write_tmp("bad.term", "r#0(a#1)");
        let err = run_args(&["validate", "--dtd", &dtd, "--doc", &bad]).unwrap_err();
        assert!(err.contains("invalid at node"));
    }

    #[test]
    fn view_prints_xml() {
        let dtd = write_tmp("schema2.rules", DTD);
        let ann = write_tmp("view.ann", ANN);
        let doc = write_tmp("doc.term", DOC);
        let out = run_args(&["view", "--dtd", &dtd, "--ann", &ann, "--doc", &doc]).unwrap();
        assert!(out.contains("<r xvu:id=\"0\">"));
        assert!(!out.contains("<b"), "hidden b must not appear:\n{out}");
    }

    #[test]
    fn propagate_full_pipeline() {
        let dtd = write_tmp("schema3.rules", DTD);
        let ann = write_tmp("view3.ann", ANN);
        let doc = write_tmp("doc3.term", DOC);
        let upd = write_tmp("edit3.script", UPDATE);
        let out = run_args(&[
            "propagate",
            "--dtd",
            &dtd,
            "--ann",
            &ann,
            "--doc",
            &doc,
            "--update",
            &upd,
        ])
        .unwrap();
        assert!(out.contains("propagation cost: 14"), "{out}");
        assert!(out.contains("new source:"));
    }

    #[test]
    fn invert_reports_padding() {
        let dtd = write_tmp("schema4.rules", DTD);
        let ann = write_tmp("view4.ann", ANN);
        let view = write_tmp("view4.term", "d#11(c#13, c#14)");
        let out = run_args(&["invert", "--dtd", &dtd, "--ann", &ann, "--view", &view]).unwrap();
        assert!(out.contains("5 nodes (3 visible + 2 padding)"), "{out}");
    }

    #[test]
    fn xml_dtd_syntax_is_sniffed() {
        let dtd = write_tmp(
            "schema5.dtd",
            "<!ELEMENT r (a, (b | c), d)*>\n<!ELEMENT d ((a | b), c)*>",
        );
        let doc = write_tmp("doc5.xml", "<r><a/><b/><d><a/><c/></d></r>");
        let out = run_args(&["validate", "--dtd", &dtd, "--doc", &doc]).unwrap();
        assert!(out.contains("valid: 6 nodes"));
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(run_args(&[]).is_err());
        assert!(run_args(&["frobnicate"]).unwrap_err().contains("usage"));
        assert!(run_args(&["validate"]).unwrap_err().contains("--dtd"));
        let dtd = write_tmp("schema6.rules", DTD);
        assert!(run_args(&["validate", "--dtd", &dtd])
            .unwrap_err()
            .contains("--doc"));
        assert!(run_args(&["validate", "--dtd", "/nonexistent/x"])
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_args(&["help"]).unwrap();
        assert!(out.contains("usage: xvu"));
    }
}
