//! The `xvu` command-line interface.
//!
//! A thin, dependency-free front end over the library for shell use:
//!
//! ```text
//! xvu validate  --dtd schema.dtd --doc doc.xml
//! xvu view      --dtd schema.dtd --ann view.ann --doc doc.xml
//! xvu invert    --dtd schema.dtd --ann view.ann --view view.xml
//! xvu propagate --dtd schema.dtd --ann view.ann --doc doc.xml --update edit.script
//!               [--update more.script ...] [--selector nop|first|type] [--jobs N]
//! ```
//!
//! File formats are sniffed from content: DTDs may be `<!ELEMENT …>`
//! declarations or the `label -> regex` rule syntax; documents may be XML
//! (`<…>`, with optional `xvu:id` attributes) or term syntax
//! (`r#0(a#1, …)`); annotations are `hide`/`show` lines; updates are
//! script terms (`nop:r#0(del:a#1, …)`).
//!
//! Commands compile the schema and view once into an [`Engine`], open the
//! document in a [`Session`], and serve every requested update from it —
//! repeating `--update` propagates a whole sequence, committing each
//! result (with incremental revalidation) before the next. Errors flow
//! through [`XvuError`] so every library stage composes with `?`.
//!
//! `propagate` also has a **batch mode**: repeating `--doc` pairs each
//! document with the `--update` at the same position and fans the
//! independent requests across `--jobs N` worker threads
//! ([`Engine::propagate_batch`]) — one compiled engine shared by every
//! worker, results printed in request order.
//!
//! All logic lives in [`run`] so it is unit-testable; the binary only
//! forwards `std::env::args` and prints.

use crate::error::XvuError;
use crate::prelude::*;
use std::fmt::Write as _;

/// Executes a CLI invocation. `args` excludes the program name. Returns
/// the text to print on success, or a user-facing error message.
pub fn run(args: &[String]) -> Result<String, String> {
    run_inner(args).map_err(|e| e.to_string())
}

fn run_inner(args: &[String]) -> Result<String, XvuError> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?;
    // the serving commands have their own flag surface
    match cmd.as_str() {
        "serve" => return cmd_serve(it.as_slice()),
        "client" => return cmd_client(it.as_slice()),
        "snapshot" => return cmd_snapshot(it.as_slice()),
        _ => {}
    }
    let opts = parse_opts(it.as_slice())?;
    if opts.jobs != 1 && cmd != "propagate" {
        return Err("--jobs applies to `propagate` only".into());
    }
    match cmd.as_str() {
        "validate" => cmd_validate(&opts),
        "view" => cmd_view(&opts),
        "invert" => cmd_invert(&opts),
        "propagate" => cmd_propagate(&opts),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(format!("unknown command {other:?}\n\n{usage}", usage = usage()).into()),
    }
}

fn usage() -> XvuError {
    XvuError::Message(
        "usage: xvu <command> [options]\n\
         \n\
         commands:\n\
         \x20 validate  --dtd FILE --doc FILE\n\
         \x20 view      --dtd FILE --ann FILE --doc FILE\n\
         \x20 invert    --dtd FILE --ann FILE --view FILE\n\
         \x20 propagate --dtd FILE --ann FILE --doc FILE --update FILE\n\
         \x20           [--update FILE ...] [--selector nop|first|type] [--jobs N]\n\
         \x20 serve     --dtd FILE --ann FILE [--listen ADDR] [--stdio]\n\
         \x20           [--workers N] [--pool N] [--queue N] [--corpus FILE]\n\
         \x20 client    ADDR stats|shutdown\n\
         \x20 client    ADDR load ID FAMILY FILE | open ID | commit ID | close ID\n\
         \x20 client    ADDR propagate ID FILE | count ID FILE | verify ID FILE FILE\n\
         \x20 client    ADDR snapshot PATH\n\
         \x20 snapshot  pack --out FILE --doc FILE [--doc FILE ...] [--family N]\n\
         \x20 snapshot  info FILE\n\
         \x20 snapshot  unpack FILE [ID]\n\
         \n\
         repeating --doc in `propagate` pairs each document with the --update\n\
         at the same position and serves the batch on N worker threads;\n\
         `serve` runs the long-lived daemon and `client` speaks its protocol;\n\
         `snapshot` converts term/XML documents to and from the flat binary\n\
         corpus format that `serve --corpus` preloads without parsing\n"
            .to_owned(),
    )
}

struct Opts {
    dtd: Option<String>,
    ann: Option<String>,
    docs: Vec<String>,
    view: Option<String>,
    updates: Vec<String>,
    selector: Selector,
    jobs: usize,
}

impl Opts {
    /// The single `--doc` required by non-batch commands.
    fn single_doc(&self) -> Result<&str, XvuError> {
        match self.docs.as_slice() {
            [] => Err("missing --doc FILE".into()),
            [one] => Ok(one),
            many => Err(format!(
                "this command takes one --doc, got {} (batch mode is `propagate` only)",
                many.len()
            )
            .into()),
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, XvuError> {
    let mut opts = Opts {
        dtd: None,
        ann: None,
        docs: Vec::new(),
        view: None,
        updates: Vec::new(),
        selector: Selector::PreferNop,
        jobs: 1,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| XvuError::Message(format!("flag {flag} needs a value")))
        };
        match flag.as_str() {
            "--dtd" => opts.dtd = Some(read_file(value()?)?),
            "--ann" => opts.ann = Some(read_file(value()?)?),
            "--doc" => opts.docs.push(read_file(value()?)?),
            "--view" => opts.view = Some(read_file(value()?)?),
            "--update" => opts.updates.push(read_file(value()?)?),
            "--jobs" => {
                opts.jobs = value()?.parse()?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--selector" => {
                opts.selector = match value()? {
                    "nop" => Selector::PreferNop,
                    "first" => Selector::First,
                    "type" => Selector::PreferTypePreserving,
                    other => return Err(format!("unknown selector {other:?}").into()),
                }
            }
            other => {
                return Err(format!("unknown flag {other:?}\n\n{usage}", usage = usage()).into())
            }
        }
    }
    Ok(opts)
}

fn read_file(path: &str) -> Result<String, XvuError> {
    std::fs::read_to_string(path).map_err(|e| XvuError::Message(format!("cannot read {path}: {e}")))
}

/// Parsing context for the inputs: alphabet + id generator + parsed DTD.
/// All inputs are parsed *before* the engine is built, because parsing
/// interns labels into the alphabet.
struct Ctx {
    alpha: Alphabet,
    gen: NodeIdGen,
    dtd: Dtd,
}

impl Ctx {
    fn new(opts: &Opts) -> Result<Ctx, XvuError> {
        let src = opts.dtd.as_deref().ok_or("missing --dtd FILE")?;
        let mut alpha = Alphabet::new();
        let dtd = if src.trim_start().starts_with("<!") {
            read_dtd(&mut alpha, src)?
        } else {
            parse_dtd(&mut alpha, src)?
        };
        Ok(Ctx {
            alpha,
            gen: NodeIdGen::new(),
            dtd,
        })
    }

    fn doc(&mut self, src: &str) -> Result<DocTree, XvuError> {
        let trimmed = src.trim_start();
        if trimmed.starts_with('<') {
            Ok(read_xml(&mut self.alpha, &mut self.gen, src)?)
        } else {
            Ok(parse_term_with_ids(
                &mut self.alpha,
                &mut self.gen,
                src.trim(),
            )?)
        }
    }

    fn ann(&mut self, opts: &Opts) -> Result<Annotation, XvuError> {
        let src = opts.ann.as_deref().ok_or("missing --ann FILE")?;
        Ok(parse_annotation(&mut self.alpha, src)?)
    }

    /// Compiles the engine from the fully populated parsing context.
    fn engine(self, ann: Annotation, selector: Selector) -> Result<Engine, XvuError> {
        Ok(Engine::builder()
            .alphabet(self.alpha)
            .dtd(self.dtd)
            .annotation(ann)
            .selector(selector)
            .build()?)
    }
}

fn pretty() -> WriteOptions {
    WriteOptions {
        pretty: true,
        with_ids: true,
    }
}

fn cmd_validate(opts: &Opts) -> Result<String, XvuError> {
    let mut ctx = Ctx::new(opts)?;
    let doc = ctx.doc(opts.single_doc()?)?;
    match ctx.dtd.first_violation(&doc) {
        None => Ok(format!("valid: {} nodes\n", doc.size())),
        Some(v) => Err(format!(
            "invalid at node {} (label {}): child word [{}] not allowed",
            v.node,
            ctx.alpha.name(v.label),
            v.child_word
                .iter()
                .map(|&s| ctx.alpha.name(s))
                .collect::<Vec<_>>()
                .join(" ")
        )
        .into()),
    }
}

fn cmd_view(opts: &Opts) -> Result<String, XvuError> {
    // View extraction needs none of the engine's compiled artefacts
    // (no min-size tables, no view DTD) — validate and extract directly.
    let mut ctx = Ctx::new(opts)?;
    let ann = ctx.ann(opts)?;
    let doc = ctx.doc(opts.single_doc()?)?;
    ctx.dtd.validate(&doc)?;
    let view = extract_view(&ann, &doc);
    Ok(write_xml(&view, &ctx.alpha, &pretty()))
}

fn cmd_invert(opts: &Opts) -> Result<String, XvuError> {
    let mut ctx = Ctx::new(opts)?;
    let ann = ctx.ann(opts)?;
    let view_src = opts.view.as_deref().ok_or("missing --view FILE")?;
    let view = ctx.doc(view_src)?;
    let mut gen = ctx.gen.clone();
    let engine = ctx.engine(ann, opts.selector)?;
    let cm = engine.cost_model();
    let forest = InversionForest::build(engine.dtd(), engine.annotation(), &view, &cm)?;
    // The CLI keeps its historical generous budget: inversion of a bare
    // view may need large fresh witnesses that propagation never does.
    let inverse = forest.materialize_min(
        engine.dtd(),
        &cm,
        engine.config().selector,
        &mut gen,
        1_000_000,
    )?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "minimal inverse: {} nodes ({} visible + {} padding)",
        inverse.size(),
        view.size(),
        forest.min_padding()
    );
    out.push_str(&write_xml(&inverse, engine.alphabet(), &pretty()));
    Ok(out)
}

fn cmd_propagate(opts: &Opts) -> Result<String, XvuError> {
    let mut ctx = Ctx::new(opts)?;
    let ann = ctx.ann(opts)?;
    if opts.docs.is_empty() {
        return Err("missing --doc FILE".into());
    }
    if opts.updates.is_empty() {
        return Err("missing --update FILE".into());
    }
    let docs = opts
        .docs
        .iter()
        .map(|src| ctx.doc(src))
        .collect::<Result<Vec<DocTree>, XvuError>>()?;
    let updates = opts
        .updates
        .iter()
        .map(|src| Ok(parse_script(&mut ctx.alpha, src.trim())?))
        .collect::<Result<Vec<Script>, XvuError>>()?;

    if docs.len() > 1 {
        // Batch mode: document i pairs with update i; independent
        // requests fan across the worker pool.
        if docs.len() != updates.len() {
            return Err(format!(
                "batch mode pairs --doc with --update positionally: got {} docs, {} updates",
                docs.len(),
                updates.len()
            )
            .into());
        }
        let engine = ctx.engine(ann, opts.selector)?;
        let requests: Vec<(DocTree, Script)> = docs.into_iter().zip(updates).collect();
        let results = engine.propagate_batch(&requests, opts.jobs);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch: {} documents on {} worker thread(s)",
            requests.len(),
            opts.jobs
        );
        for (i, result) in results.iter().enumerate() {
            let _ = writeln!(out, "--- document {} of {} ---", i + 1, requests.len());
            match result {
                Ok(prop) => {
                    let _ = writeln!(out, "propagation cost: {}", prop.cost);
                    let _ = writeln!(
                        out,
                        "script: {}",
                        script_to_term(&prop.script, engine.alphabet())
                    );
                    let new_source =
                        output_tree(&prop.script).ok_or("propagation deletes the document root")?;
                    let _ = writeln!(out, "new source:");
                    out.push_str(&write_xml(&new_source, engine.alphabet(), &pretty()));
                }
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                }
            }
        }
        return Ok(out);
    }

    // Compile once, serve every update from one session.
    let doc = docs.into_iter().next().expect("one document");
    let engine = ctx.engine(ann, opts.selector)?;
    let mut session = engine.open(&doc)?;

    let mut out = String::new();
    if opts.jobs > 1 {
        // a single document's updates are a dependent sequence (each
        // In(S) is the previous commit's view) — nothing to parallelise
        let _ = writeln!(
            out,
            "note: --jobs {} has no effect with one --doc; updates are a \
             dependent sequence served on one thread",
            opts.jobs
        );
    }
    let many = updates.len() > 1;
    for (i, update) in updates.iter().enumerate() {
        // One instance build per update: propagate and verify against it,
        // then release the session borrow before committing.
        let prop = {
            let inst = session.instance(update)?;
            let prop = engine.propagate(&inst)?;
            verify_propagation(&inst, &prop.script)?;
            prop
        };
        if many {
            let _ = writeln!(out, "--- update {} of {} ---", i + 1, updates.len());
        }
        let _ = writeln!(out, "propagation cost: {}", prop.cost);
        let _ = writeln!(
            out,
            "optimal propagations captured: {}",
            count_optimal_propagations(&prop.forest)
                .expect("a computed propagation's forest always counts ≥ 1")
        );
        let _ = writeln!(
            out,
            "script: {}",
            script_to_term(&prop.script, engine.alphabet())
        );
        session.commit(&prop)?;
    }
    let _ = writeln!(out, "new source:");
    out.push_str(&write_xml(session.document(), engine.alphabet(), &pretty()));
    Ok(out)
}

/// `xvu serve`: run the long-lived daemon over one schema/view family.
///
/// Documents are loaded by clients over the wire (`xvu client ADDR load
/// …`), so only the schema artefacts are compiled here. `--listen ADDR`
/// (default `127.0.0.1:7878`) serves TCP; `--stdio` serves exactly one
/// client on stdin/stdout instead. Returns (and prints) the final stats
/// snapshot once a client sends `shutdown`.
fn cmd_serve(args: &[String]) -> Result<String, XvuError> {
    let mut dtd_src = None;
    let mut ann_src = None;
    let mut listen = "127.0.0.1:7878".to_owned();
    let mut stdio = false;
    let mut corpus_path: Option<String> = None;
    let mut cfg = xvu_server::ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| XvuError::Message(format!("flag {flag} needs a value")))
        };
        match flag.as_str() {
            "--dtd" => dtd_src = Some(read_file(value()?)?),
            "--ann" => ann_src = Some(read_file(value()?)?),
            "--listen" => listen = value()?.to_owned(),
            "--stdio" => stdio = true,
            "--corpus" => corpus_path = Some(value()?.to_owned()),
            "--workers" => cfg.workers = value()?.parse::<usize>()?.max(1),
            "--pool" => cfg.pool_capacity = value()?.parse::<usize>()?.max(1),
            "--queue" => cfg.queue_capacity = value()?.parse::<usize>()?.max(1),
            other => {
                return Err(format!("unknown flag {other:?}\n\n{usage}", usage = usage()).into())
            }
        }
    }
    let src = dtd_src.ok_or("missing --dtd FILE")?;
    let mut alpha = Alphabet::new();
    let dtd = if src.trim_start().starts_with("<!") {
        read_dtd(&mut alpha, &src)?
    } else {
        parse_dtd(&mut alpha, &src)?
    };
    let ann = parse_annotation(&mut alpha, ann_src.as_deref().ok_or("missing --ann FILE")?)?;
    let engines = [Engine::builder()
        .alphabet(alpha)
        .dtd(dtd)
        .annotation(ann)
        .build()?];
    let server = xvu_server::Server::new(&engines, cfg);
    if let Some(path) = &corpus_path {
        let corpus = crate::tree::SnapshotFile::open(path)
            .map_err(|e| XvuError::Message(format!("cannot load corpus {path}: {e}")))?;
        let loaded = server
            .preload_corpus(&corpus)
            .map_err(|e| XvuError::Message(format!("corpus {path}: {e}")))?;
        eprintln!("xvu serve: preloaded {loaded} documents from {path}");
    }
    let report = if stdio {
        let transport =
            xvu_server::DuplexTransport::new(std::io::stdin().lock(), std::io::stdout().lock());
        server.serve_transport(transport)
    } else {
        let listener = std::net::TcpListener::bind(&listen)
            .map_err(|e| XvuError::Message(format!("cannot listen on {listen}: {e}")))?;
        if let Ok(bound) = listener.local_addr() {
            eprintln!("xvu serve: listening on {bound}");
        }
        server
            .serve_listener(listener)
            .map_err(|e| XvuError::Message(format!("serve failed: {e}")))?
    };
    if let Some(path) = &corpus_path {
        // persist the committed store back to the corpus it was booted
        // from, so the next `serve --corpus` resumes without parsing
        let bytes = server.snapshot_store_bytes();
        std::fs::write(path, &bytes)
            .map_err(|e| XvuError::Message(format!("cannot write corpus {path}: {e}")))?;
        eprintln!(
            "xvu serve: wrote corpus back to {path} ({} bytes)",
            bytes.len()
        );
    }
    Ok(format!(
        "served {} requests (drained {})\n{}\n",
        report.stats.total_requests(),
        if report.drained_clean {
            "clean"
        } else {
            "DIRTY"
        },
        report.stats.to_json()
    ))
}

/// `xvu client`: one request against a running daemon. Document files
/// may be XML (converted to the wire term syntax) or terms; script files
/// are passed through as terms.
fn cmd_client(args: &[String]) -> Result<String, XvuError> {
    let mut it = args.iter().map(String::as_str);
    let addr = it.next().ok_or("client needs ADDR, then a verb")?;
    let verb = it.next().ok_or("client needs a verb after ADDR")?;
    let mut next = |what: &str| {
        it.next()
            .ok_or_else(|| XvuError::Message(format!("client {verb} needs {what}")))
    };
    let mut client = xvu_server::Client::connect(addr)
        .map_err(|e| XvuError::Message(format!("cannot reach {addr}: {e}")))?;
    let fail = |e: xvu_server::ClientError| XvuError::Message(e.to_string());
    let parse_id = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| XvuError::Message(format!("bad document id {s:?}")))
    };
    match verb {
        "stats" => Ok(format!("{}\n", client.stats().map_err(fail)?)),
        "shutdown" => Ok(format!("{}\n", client.shutdown().map_err(fail)?)),
        "load" => {
            let id = parse_id(next("ID")?)?;
            let family = next("FAMILY")?
                .parse::<usize>()
                .map_err(|_| XvuError::Message("bad family index".to_owned()))?;
            let term = doc_file_as_term(next("FILE")?)?;
            client.load(id, family, &term).map_err(fail)?;
            Ok(format!("loaded document {id}\n"))
        }
        "open" => {
            let id = parse_id(next("ID")?)?;
            Ok(format!("{}\n", client.open(id).map_err(fail)?))
        }
        "propagate" => {
            let id = parse_id(next("ID")?)?;
            let script = read_file(next("FILE")?)?;
            let reply = client.propagate(id, script.trim()).map_err(fail)?;
            Ok(format!(
                "propagation cost: {}\noptimal propagations captured: {}\nscript: {}\n",
                reply.cost, reply.count, reply.script
            ))
        }
        "count" => {
            let id = parse_id(next("ID")?)?;
            let script = read_file(next("FILE")?)?;
            let n = client.count(id, script.trim()).map_err(fail)?;
            Ok(format!("optimal propagations captured: {n}\n"))
        }
        "verify" => {
            let id = parse_id(next("ID")?)?;
            let update = read_file(next("UPDATE-FILE")?)?;
            let candidate = read_file(next("CANDIDATE-FILE")?)?;
            client
                .verify(id, update.trim(), candidate.trim())
                .map_err(fail)?;
            Ok("verified: candidate propagates the update\n".to_owned())
        }
        "commit" => {
            let id = parse_id(next("ID")?)?;
            client.commit(id).map_err(fail)?;
            Ok(format!("committed document {id}\n"))
        }
        "close" => {
            let id = parse_id(next("ID")?)?;
            client.close_doc(id).map_err(fail)?;
            Ok(format!("closed document {id}\n"))
        }
        "snapshot" => {
            let path = next("PATH")?;
            let summary = client.snapshot(path).map_err(fail)?;
            Ok(format!("snapshot written to {path}: {summary}\n"))
        }
        other => Err(format!("unknown client verb {other:?}\n\n{usage}", usage = usage()).into()),
    }
}

/// `xvu snapshot`: convert documents to and from the flat binary corpus
/// format ([`crate::tree::snapshot`]). `pack` interns every `--doc` file
/// (XML or term) into one shared alphabet and writes a corpus with
/// sequential document ids; `info` lists the directory; `unpack` decodes
/// one document (or all of them) back to term syntax.
fn cmd_snapshot(args: &[String]) -> Result<String, XvuError> {
    use crate::tree::{CorpusBuilder, SnapshotFile};
    let mut it = args.iter();
    let sub = it
        .next()
        .ok_or("snapshot needs a subcommand: pack, info or unpack")?;
    match sub.as_str() {
        "pack" => {
            let mut out_path = None;
            let mut docs = Vec::new();
            let mut family = 0u32;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .map(String::as_str)
                        .ok_or_else(|| XvuError::Message(format!("flag {flag} needs a value")))
                };
                match flag.as_str() {
                    "--out" => out_path = Some(value()?.to_owned()),
                    "--doc" => docs.push(value()?.to_owned()),
                    "--family" => {
                        family = value()?
                            .parse::<u32>()
                            .map_err(|_| XvuError::Message("bad --family index".to_owned()))?
                    }
                    other => {
                        return Err(
                            format!("unknown flag {other:?}\n\n{usage}", usage = usage()).into(),
                        )
                    }
                }
            }
            let out_path = out_path.ok_or("missing --out FILE")?;
            if docs.is_empty() {
                return Err("pack needs at least one --doc FILE".into());
            }
            // one shared alphabet: every document's labels intern into the
            // same symbol space, like a serving family's engine alphabet
            let mut alpha = Alphabet::new();
            let mut gen = NodeIdGen::new();
            let mut builder = CorpusBuilder::new();
            for (id, path) in docs.iter().enumerate() {
                let term = doc_file_as_term(path)?;
                let tree = parse_term_with_ids(&mut alpha, &mut gen, &term)?;
                builder
                    .push(id as u64, family, &tree, &alpha)
                    .map_err(|e| XvuError::Message(format!("cannot encode {path}: {e}")))?;
            }
            let bytes = builder.finish();
            std::fs::write(&out_path, &bytes)
                .map_err(|e| XvuError::Message(format!("cannot write {out_path}: {e}")))?;
            Ok(format!(
                "packed {} documents into {out_path} ({} bytes)\n",
                docs.len(),
                bytes.len()
            ))
        }
        "info" => {
            let path = it.next().ok_or("info needs a corpus FILE")?;
            let corpus = SnapshotFile::open(path)
                .map_err(|e| XvuError::Message(format!("cannot load corpus {path}: {e}")))?;
            let mut out = format!("corpus {path}: {} documents\n", corpus.len());
            for (i, entry) in corpus.entries().iter().enumerate() {
                let mut alpha = Alphabet::new();
                let tree = corpus
                    .decode(i, &mut alpha)
                    .map_err(|e| XvuError::Message(format!("doc {}: {e}", entry.doc_id)))?;
                let _ = writeln!(
                    out,
                    "  doc {} family {}: {} nodes, {} bytes",
                    entry.doc_id,
                    entry.family,
                    tree.size(),
                    entry.byte_len()
                );
            }
            Ok(out)
        }
        "unpack" => {
            let path = it.next().ok_or("unpack needs a corpus FILE")?;
            let corpus = SnapshotFile::open(path)
                .map_err(|e| XvuError::Message(format!("cannot load corpus {path}: {e}")))?;
            let only: Option<u64> = match it.next() {
                Some(s) => Some(
                    s.parse::<u64>()
                        .map_err(|_| XvuError::Message(format!("bad document id {s:?}")))?,
                ),
                None => None,
            };
            let mut out = String::new();
            let mut matched = false;
            for (i, entry) in corpus.entries().iter().enumerate() {
                if let Some(want) = only {
                    if entry.doc_id != want {
                        continue;
                    }
                }
                matched = true;
                let mut alpha = Alphabet::new();
                let tree = corpus
                    .decode(i, &mut alpha)
                    .map_err(|e| XvuError::Message(format!("doc {}: {e}", entry.doc_id)))?;
                let _ = writeln!(
                    out,
                    "doc {} family {}: {}",
                    entry.doc_id,
                    entry.family,
                    to_term_with_ids(&tree, &alpha)
                );
            }
            if !matched {
                return Err(match only {
                    Some(id) => format!("document {id} not in corpus {path}").into(),
                    None => format!("corpus {path} is empty").into(),
                });
            }
            Ok(out)
        }
        other => Err(format!(
            "unknown snapshot subcommand {other:?}\n\n{usage}",
            usage = usage()
        )
        .into()),
    }
}

/// Reads a document file for the wire: XML is converted to the term
/// syntax (the daemon's document format), terms pass through.
fn doc_file_as_term(path: &str) -> Result<String, XvuError> {
    let src = read_file(path)?;
    if src.trim_start().starts_with('<') {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let doc = read_xml(&mut alpha, &mut gen, &src)?;
        Ok(to_term_with_ids(&doc, &alpha))
    } else {
        Ok(src.trim().to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DTD: &str = "r -> (a.(b+c).d)*\nd -> ((a+b).c)*";
    const ANN: &str = "hide r b\nhide r c\nhide d a\nhide d b";
    const DOC: &str = "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))";
    const UPDATE: &str = "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
        ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))";

    fn write_tmp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join(format!("xvu-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(name);
        std::fs::write(&path, content).expect("write tmp");
        path.to_string_lossy().into_owned()
    }

    fn run_args(args: &[&str]) -> Result<String, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&owned)
    }

    #[test]
    fn validate_accepts_and_rejects() {
        let dtd = write_tmp("schema.rules", DTD);
        let good = write_tmp("good.term", DOC);
        let out = run_args(&["validate", "--dtd", &dtd, "--doc", &good]).unwrap();
        assert!(out.contains("valid: 11 nodes"));

        let bad = write_tmp("bad.term", "r#0(a#1)");
        let err = run_args(&["validate", "--dtd", &dtd, "--doc", &bad]).unwrap_err();
        assert!(err.contains("invalid at node"));
    }

    #[test]
    fn view_prints_xml() {
        let dtd = write_tmp("schema2.rules", DTD);
        let ann = write_tmp("view.ann", ANN);
        let doc = write_tmp("doc.term", DOC);
        let out = run_args(&["view", "--dtd", &dtd, "--ann", &ann, "--doc", &doc]).unwrap();
        assert!(out.contains("<r xvu:id=\"0\">"));
        assert!(!out.contains("<b"), "hidden b must not appear:\n{out}");
    }

    #[test]
    fn propagate_full_pipeline() {
        let dtd = write_tmp("schema3.rules", DTD);
        let ann = write_tmp("view3.ann", ANN);
        let doc = write_tmp("doc3.term", DOC);
        let upd = write_tmp("edit3.script", UPDATE);
        let out = run_args(&[
            "propagate",
            "--dtd",
            &dtd,
            "--ann",
            &ann,
            "--doc",
            &doc,
            "--update",
            &upd,
        ])
        .unwrap();
        assert!(out.contains("propagation cost: 14"), "{out}");
        assert!(out.contains("new source:"));
    }

    #[test]
    fn propagate_applies_update_sequences() {
        // Two updates against the evolving view, served by one session:
        // delete the first (a, d) group, then delete the remaining one.
        let dtd = write_tmp("schema7.rules", DTD);
        let ann = write_tmp("view7.ann", ANN);
        let doc = write_tmp("doc7.term", DOC);
        let u1 = write_tmp(
            "edit7a.script",
            "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, nop:d#6(nop:c#10))",
        );
        let u2 = write_tmp("edit7b.script", "nop:r#0(del:a#4, del:d#6(del:c#10))");
        let out = run_args(&[
            "propagate",
            "--dtd",
            &dtd,
            "--ann",
            &ann,
            "--doc",
            &doc,
            "--update",
            &u1,
            "--update",
            &u2,
        ])
        .unwrap();
        assert!(out.contains("--- update 1 of 2 ---"), "{out}");
        assert!(out.contains("--- update 2 of 2 ---"), "{out}");
        // everything is deleted: the final source is the bare root
        assert!(out.contains("new source:"));
        assert!(out.trim_end().ends_with("<r xvu:id=\"0\"/>"), "{out}");
    }

    #[test]
    fn propagate_batch_mode_over_worker_threads() {
        // Three documents, three positionally paired updates, two worker
        // threads: results come back in request order, one engine.
        let dtd = write_tmp("schema8.rules", DTD);
        let ann = write_tmp("view8.ann", ANN);
        let d1 = write_tmp("doc8a.term", DOC);
        let d2 = write_tmp(
            "doc8b.term",
            "r#20(a#21, b#22, d#23(a#27, c#28), a#24, c#25, d#26(b#29, c#30))",
        );
        let d3 = write_tmp("doc8c.term", DOC);
        let u1 = write_tmp("edit8a.script", UPDATE);
        let u2 = write_tmp(
            "edit8b.script",
            "nop:r#20(del:a#21, del:d#23(del:c#28), nop:a#24, nop:d#26(nop:c#30))",
        );
        let u3 = write_tmp("edit8c.script", UPDATE);
        let out = run_args(&[
            "propagate",
            "--dtd",
            &dtd,
            "--ann",
            &ann,
            "--doc",
            &d1,
            "--doc",
            &d2,
            "--doc",
            &d3,
            "--update",
            &u1,
            "--update",
            &u2,
            "--update",
            &u3,
            "--jobs",
            "2",
        ])
        .unwrap();
        assert!(
            out.contains("batch: 3 documents on 2 worker thread(s)"),
            "{out}"
        );
        assert!(out.contains("--- document 1 of 3 ---"), "{out}");
        assert!(out.contains("--- document 3 of 3 ---"), "{out}");
        // documents 1 and 3 are the paper instance (cost 14); document 2
        // is the pure deletion (the hidden group goes with it)
        assert_eq!(out.matches("propagation cost: 14").count(), 2, "{out}");
        assert_eq!(out.matches("new source:").count(), 3, "{out}");
    }

    #[test]
    fn propagate_batch_mode_reports_errors_per_document() {
        let dtd = write_tmp("schema9.rules", DTD);
        let ann = write_tmp("view9.ann", ANN);
        let good = write_tmp("doc9a.term", DOC);
        let bad = write_tmp("doc9b.term", "r#50(a#51)"); // invalid source
        let u = write_tmp("edit9.script", UPDATE);
        let u2 = write_tmp("edit9b.script", "nop:r#50(nop:a#51)");
        let out = run_args(&[
            "propagate",
            "--dtd",
            &dtd,
            "--ann",
            &ann,
            "--doc",
            &good,
            "--doc",
            &bad,
            "--update",
            &u,
            "--update",
            &u2,
            "--jobs",
            "4",
        ])
        .unwrap();
        assert!(out.contains("propagation cost: 14"), "{out}");
        assert!(out.contains("error: source document invalid"), "{out}");
    }

    #[test]
    fn batch_flags_are_validated() {
        let dtd = write_tmp("schema10.rules", DTD);
        let ann = write_tmp("view10.ann", ANN);
        let doc = write_tmp("doc10.term", DOC);
        let u = write_tmp("edit10.script", UPDATE);
        // mismatched doc/update counts
        let err = run_args(&[
            "propagate",
            "--dtd",
            &dtd,
            "--ann",
            &ann,
            "--doc",
            &doc,
            "--doc",
            &doc,
            "--update",
            &u,
        ])
        .unwrap_err();
        assert!(err.contains("positionally"), "{err}");
        // --jobs must be a positive integer
        let err = run_args(&[
            "propagate",
            "--dtd",
            &dtd,
            "--ann",
            &ann,
            "--doc",
            &doc,
            "--update",
            &u,
            "--jobs",
            "0",
        ])
        .unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        let err = run_args(&[
            "propagate",
            "--dtd",
            &dtd,
            "--ann",
            &ann,
            "--doc",
            &doc,
            "--update",
            &u,
            "--jobs",
            "many",
        ])
        .unwrap_err();
        assert!(err.contains("invalid number"), "{err}");
        // multiple --doc on a single-document command
        let err = run_args(&["validate", "--dtd", &dtd, "--doc", &doc, "--doc", &doc]).unwrap_err();
        assert!(err.contains("one --doc"), "{err}");
        // --jobs on a non-propagate command is an error, not a silent no-op
        let err = run_args(&["validate", "--dtd", &dtd, "--doc", &doc, "--jobs", "4"]).unwrap_err();
        assert!(err.contains("--jobs applies to `propagate` only"), "{err}");
        // --jobs with one --doc is served sequentially, and says so
        let out = run_args(&[
            "propagate",
            "--dtd",
            &dtd,
            "--ann",
            &ann,
            "--doc",
            &doc,
            "--update",
            &u,
            "--jobs",
            "4",
        ])
        .unwrap();
        assert!(out.contains("note: --jobs 4 has no effect"), "{out}");
        assert!(out.contains("propagation cost: 14"), "{out}");
    }

    #[test]
    fn invert_reports_padding() {
        let dtd = write_tmp("schema4.rules", DTD);
        let ann = write_tmp("view4.ann", ANN);
        let view = write_tmp("view4.term", "d#11(c#13, c#14)");
        let out = run_args(&["invert", "--dtd", &dtd, "--ann", &ann, "--view", &view]).unwrap();
        assert!(out.contains("5 nodes (3 visible + 2 padding)"), "{out}");
    }

    #[test]
    fn xml_dtd_syntax_is_sniffed() {
        let dtd = write_tmp(
            "schema5.dtd",
            "<!ELEMENT r (a, (b | c), d)*>\n<!ELEMENT d ((a | b), c)*>",
        );
        let doc = write_tmp("doc5.xml", "<r><a/><b/><d><a/><c/></d></r>");
        let out = run_args(&["validate", "--dtd", &dtd, "--doc", &doc]).unwrap();
        assert!(out.contains("valid: 6 nodes"));
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(run_args(&[]).is_err());
        assert!(run_args(&["frobnicate"]).unwrap_err().contains("usage"));
        assert!(run_args(&["validate"]).unwrap_err().contains("--dtd"));
        let dtd = write_tmp("schema6.rules", DTD);
        assert!(run_args(&["validate", "--dtd", &dtd])
            .unwrap_err()
            .contains("--doc"));
        assert!(run_args(&["validate", "--dtd", "/nonexistent/x"])
            .unwrap_err()
            .contains("cannot read"));
        let ann = write_tmp("view6.ann", ANN);
        let doc = write_tmp("doc6.term", DOC);
        assert!(
            run_args(&["propagate", "--dtd", &dtd, "--ann", &ann, "--doc", &doc])
                .unwrap_err()
                .contains("--update")
        );
    }

    #[test]
    fn help_prints_usage() {
        let out = run_args(&["help"]).unwrap();
        assert!(out.contains("usage: xvu"));
        assert!(out.contains("serve"), "{out}");
        assert!(out.contains("client"), "{out}");
    }

    /// A locally free TCP address (bind-then-drop; the small race with
    /// other processes is acceptable in tests).
    fn free_addr() -> String {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    }

    #[test]
    fn serve_and_client_cover_the_wire_lifecycle() {
        let dtd = write_tmp("schema11.rules", DTD);
        let ann = write_tmp("view11.ann", ANN);
        let doc = write_tmp("doc11.term", DOC);
        let upd = write_tmp("edit11.script", UPDATE);
        let addr = free_addr();
        let serve_args: Vec<String> = [
            "serve",
            "--dtd",
            &dtd,
            "--ann",
            &ann,
            "--listen",
            &addr,
            "--workers",
            "2",
            "--pool",
            "2",
            "--queue",
            "8",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let daemon = std::thread::spawn(move || run(&serve_args));

        // the daemon needs a moment to bind; retry until it accepts
        let mut connected = false;
        for _ in 0..200 {
            if run_args(&["client", &addr, "stats"]).is_ok() {
                connected = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(connected, "daemon never came up on {addr}");

        let out = run_args(&["client", &addr, "load", "7", "0", &doc]).unwrap();
        assert!(out.contains("loaded document 7"), "{out}");
        let view = run_args(&["client", &addr, "open", "7"]).unwrap();
        assert!(view.contains("a#1"), "{view}");
        assert!(!view.contains("b#2"), "hidden node leaked: {view}");
        let out = run_args(&["client", &addr, "propagate", "7", &upd]).unwrap();
        assert!(out.contains("propagation cost: 14"), "{out}");
        let out = run_args(&["client", &addr, "count", "7", &upd]).unwrap();
        assert!(out.contains("optimal propagations captured:"), "{out}");
        let out = run_args(&["client", &addr, "commit", "7"]).unwrap();
        assert!(out.contains("committed"), "{out}");
        let out = run_args(&["client", &addr, "close", "7"]).unwrap();
        assert!(out.contains("closed"), "{out}");
        let err = run_args(&["client", &addr, "open", "99"]).unwrap_err();
        assert!(err.contains("unknown document"), "{err}");
        let stats = run_args(&["client", &addr, "stats"]).unwrap();
        assert!(stats.contains("\"propagate\":1"), "{stats}");

        let finale = run_args(&["client", &addr, "shutdown"]).unwrap();
        assert!(finale.contains("\"requests\""), "{finale}");
        let served = daemon.join().expect("serve thread").unwrap();
        assert!(served.contains("drained clean"), "{served}");
    }

    #[test]
    fn snapshot_pack_info_unpack_round_trip() {
        let doc_a = write_tmp("snap-a.term", DOC);
        let doc_b = write_tmp("snap-b.term", "r#20(a#21, b#22, d#23)");
        let out_path = write_tmp("corpus.xvus", "");
        let out = run_args(&[
            "snapshot", "pack", "--out", &out_path, "--doc", &doc_a, "--doc", &doc_b,
        ])
        .unwrap();
        assert!(out.contains("packed 2 documents"), "{out}");

        let info = run_args(&["snapshot", "info", &out_path]).unwrap();
        assert!(info.contains("2 documents"), "{info}");
        assert!(info.contains("doc 0 family 0: 11 nodes"), "{info}");
        assert!(info.contains("doc 1 family 0: 4 nodes"), "{info}");

        // unpacking one document reproduces the term exactly (same ids)
        let one = run_args(&["snapshot", "unpack", &out_path, "1"]).unwrap();
        assert!(one.contains("r#20(a#21, b#22, d#23)"), "{one}");
        let all = run_args(&["snapshot", "unpack", &out_path]).unwrap();
        assert!(all.contains("r#0(") && all.contains("r#20("), "{all}");

        let err = run_args(&["snapshot", "unpack", &out_path, "9"]).unwrap_err();
        assert!(err.contains("not in corpus"), "{err}");
    }

    #[test]
    fn snapshot_flags_are_validated() {
        assert!(run_args(&["snapshot"]).unwrap_err().contains("subcommand"));
        assert!(run_args(&["snapshot", "frob"])
            .unwrap_err()
            .contains("unknown snapshot subcommand"));
        assert!(run_args(&["snapshot", "pack"])
            .unwrap_err()
            .contains("--out"));
        let out = write_tmp("corpus-empty.xvus", "");
        assert!(run_args(&["snapshot", "pack", "--out", &out])
            .unwrap_err()
            .contains("--doc"));
        // a non-corpus file is a typed decode error, not a panic
        let junk = write_tmp("junk.xvus", "not a corpus");
        assert!(run_args(&["snapshot", "info", &junk])
            .unwrap_err()
            .contains("cannot load corpus"));
    }

    #[test]
    fn serve_preloads_a_corpus_and_snapshots_it_back() {
        let dtd = write_tmp("schema13.rules", DTD);
        let ann = write_tmp("view13.ann", ANN);
        let doc = write_tmp("doc13.term", DOC);
        let upd = write_tmp("edit13.script", UPDATE);
        let corpus = write_tmp("corpus13.xvus", "");
        let out = run_args(&["snapshot", "pack", "--out", &corpus, "--doc", &doc]).unwrap();
        assert!(out.contains("packed 1 documents"), "{out}");

        let addr = free_addr();
        let serve_args: Vec<String> = [
            "serve", "--dtd", &dtd, "--ann", &ann, "--listen", &addr, "--corpus", &corpus,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let daemon = std::thread::spawn(move || run(&serve_args));
        let mut connected = false;
        for _ in 0..200 {
            if run_args(&["client", &addr, "stats"]).is_ok() {
                connected = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(connected, "daemon never came up on {addr}");

        // the packed document (id 0) is servable without a `load`
        let view = run_args(&["client", &addr, "open", "0"]).unwrap();
        assert!(view.contains("a#1"), "{view}");
        let out = run_args(&["client", &addr, "propagate", "0", &upd]).unwrap();
        assert!(out.contains("propagation cost: 14"), "{out}");
        let out = run_args(&["client", &addr, "commit", "0"]).unwrap();
        assert!(out.contains("committed"), "{out}");

        // the snapshot verb writes the committed store to a fresh corpus
        let mid = write_tmp("corpus13-mid.xvus", "");
        let out = run_args(&["client", &addr, "snapshot", &mid]).unwrap();
        assert!(out.contains("docs=1"), "{out}");
        let info = run_args(&["snapshot", "info", &mid]).unwrap();
        assert!(info.contains("doc 0 family 0"), "{info}");

        run_args(&["client", &addr, "shutdown"]).unwrap();
        let served = daemon.join().expect("serve thread").unwrap();
        assert!(served.contains("drained clean"), "{served}");

        // shutdown wrote the committed (post-propagate) store back to the
        // boot corpus: the unpacked term reflects the committed edit
        let unpacked = run_args(&["snapshot", "unpack", &corpus, "0"]).unwrap();
        assert!(
            !unpacked.contains("a#1,"),
            "deleted node survived: {unpacked}"
        );
        assert!(
            unpacked.contains("d#11"),
            "inserted node missing: {unpacked}"
        );
    }

    #[test]
    fn serve_and_client_flags_are_validated() {
        assert!(run_args(&["serve"]).unwrap_err().contains("--dtd"));
        let dtd = write_tmp("schema12.rules", DTD);
        assert!(run_args(&["serve", "--dtd", &dtd])
            .unwrap_err()
            .contains("--ann"));
        assert!(run_args(&["serve", "--frob"])
            .unwrap_err()
            .contains("unknown flag"));
        assert!(run_args(&["client"]).unwrap_err().contains("ADDR"));
        // nothing listens on a freshly freed port
        let addr = free_addr();
        assert!(run_args(&["client", &addr, "stats"])
            .unwrap_err()
            .contains("cannot reach"));
    }
}
