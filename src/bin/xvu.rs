//! The `xvu` binary: validate documents, extract views, invert views, and
//! propagate view updates from the command line. See `xvu help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match xml_view_update::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
