//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides the (tiny) API surface the workspace actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] extension methods `random_bool` / `random_range`.
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically
//! adequate for workload generation (it is *not* cryptographic, exactly
//! like the upstream `StdRng` contract does not promise stream
//! compatibility across versions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 random mantissa bits -> uniform in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `range`. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> RngExt for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % width;
                (self.start as u128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end as u128) - (start as u128) + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as u128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014)
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(2..=3);
            assert!((2..=3).contains(&y));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
