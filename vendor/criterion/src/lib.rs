//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate provides a minimal benchmark harness with criterion's
//! surface syntax: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark is timed over a handful of wall-clock samples
//! and the median is printed — adequate for relative comparisons, with
//! none of criterion's statistics, plotting, or baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Number of timed samples per benchmark (upstream default is 100; this
/// harness favours fast feedback).
const SAMPLES: usize = 5;

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    /// When true (set by `--test`, as passed by `cargo test` to
    /// `harness = false` bench targets), run every closure once and skip
    /// timing entirely.
    test_mode: bool,
}

impl Criterion {
    /// Builds a driver configured from the process arguments.
    pub fn configure_from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let test_mode = self.test_mode;
        run_one("", &id.into().0, test_mode, f);
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    // tie the group to the driver borrow like upstream does
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; this harness always takes
    /// [`SAMPLES`] samples.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; this harness always takes
    /// [`SAMPLES`] samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &id.into().0, self.test_mode, f);
    }

    /// Benchmarks `f(input)` under `id` within this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.name, &id.into().0, self.test_mode, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if test_mode {
        let mut b = Bencher { sample: None };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }
    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let mut b = Bencher { sample: None };
            f(&mut b);
            b.sample.expect("Bencher::iter was never called")
        })
        .collect();
    samples.sort();
    let median = samples[samples.len() / 2];
    println!("{label:<48} median {:>12.3} µs", median.as_secs_f64() * 1e6);
}

/// Times one closure; handed to benchmark functions.
#[derive(Debug)]
pub struct Bencher {
    sample: Option<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean time per call.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warmup call, then a short timed batch.
        black_box(f());
        let start = Instant::now();
        let iters = 3u32;
        for _ in 0..iters {
            black_box(f());
        }
        self.sample = Some(start.elapsed() / iters);
    }
}

/// A benchmark identifier, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Measured throughput hints (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
