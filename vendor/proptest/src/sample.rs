//! Sampling from explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly selects one of the given values.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select() needs at least one item");
    Select(items)
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.0.len());
        self.0[ix].clone()
    }
}
