//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! micro-crate re-implements the subset of proptest the workspace's test
//! suites use: the [`proptest!`] macro, `prop_assert*` macros,
//! [`prop_oneof!`], [`strategy::Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, [`collection::vec`], [`sample::select`],
//! [`arbitrary::any`], integer-range strategies, and string-pattern
//! strategies of the `"\\PC{0,60}"` shape.
//!
//! Semantics differ from upstream in one deliberate way: failing cases
//! are **not shrunk** — the failing input is simply printed by the
//! standard assertion machinery. Generation is fully deterministic per
//! test name, so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` that runs `body` for `ProptestConfig::cases` freshly
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                { $body }
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks uniformly between several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}
