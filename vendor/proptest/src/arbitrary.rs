//! `any::<T>()` — the canonical strategy for a type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy generating arbitrary `T` values.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Biased toward ASCII, with occasional arbitrary scalar values.
        if rng.below(4) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0x11_0000).unwrap_or('\u{fffd}')
        } else {
            (0x20u8 + rng.below(0x5f) as u8) as char
        }
    }
}
