//! String-pattern strategies.
//!
//! Upstream proptest interprets `&str` strategies as full regexes. This
//! stand-in supports the shape the workspace's tests use — a character
//! class (`\PC`, `.`, or a literal prefix) followed by a `{m,n}`
//! repetition — and otherwise falls back to printable garbage of a
//! similar length. That is sufficient for "parser never panics on
//! arbitrary input" robustness properties.

use crate::test_runner::TestRng;

/// Characters mixed into generated strings: ASCII printables plus a few
/// multi-byte scalars so UTF-8 boundary handling gets exercised.
const EXOTIC: &[char] = &[
    'é', 'λ', '中', '𝄞', '\u{00A0}', '«', '»', 'ß', '☃', '\u{202E}',
];

/// Generates a string loosely matching `pattern` (see module docs).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let (lo, hi) = repetition_bounds(pattern).unwrap_or((0, 60));
    let len = lo + rng.below(hi - lo + 1);
    let mut out = String::new();
    for _ in 0..len {
        // \PC = "any char that is not a control character"; mostly
        // ASCII printable with the occasional multi-byte scalar.
        if rng.below(8) == 0 {
            out.push(EXOTIC[rng.below(EXOTIC.len())]);
        } else {
            out.push((0x20u8 + rng.below(0x5f) as u8) as char);
        }
    }
    out
}

/// Extracts the `{m,n}` suffix of a pattern, if present.
fn repetition_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern[open..].find('}')? + open;
    let body = &pattern[open + 1..close];
    let (lo, hi) = match body.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_parsed() {
        assert_eq!(repetition_bounds("\\PC{0,60}"), Some((0, 60)));
        assert_eq!(repetition_bounds(".{5}"), Some((5, 5)));
        assert_eq!(repetition_bounds("abc"), None);
    }

    #[test]
    fn lengths_in_bounds() {
        let mut rng = TestRng::from_name("lengths_in_bounds");
        for _ in 0..200 {
            let s = generate_matching("\\PC{0,10}", &mut rng);
            assert!(s.chars().count() <= 10);
            assert!(!s.chars().any(|c| c.is_control()));
        }
    }
}
