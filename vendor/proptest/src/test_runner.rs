//! Test configuration and the deterministic generator driving each test.

/// Per-test configuration (only `cases` is meaningful in this stand-in).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator, seeded from the test's name so
/// every run of a given test sees the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "TestRng::below(0)");
        (self.next_u64() % n as u64) as usize
    }
}
