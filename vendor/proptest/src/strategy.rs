//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `generate` draws a single concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `f`
    /// wraps an inner strategy into one for the next nesting level. The
    /// `_desired_size` / `_expected_branch` hints are accepted for
    /// upstream signature compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| f(inner).boxed()),
        }
    }

    /// Erases the strategy type behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_recursive`] combinator.
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    depth: u32,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as usize + 1);
        let mut s = self.base.clone();
        for _ in 0..levels {
            s = (self.recurse)(s);
        }
        s.generate(rng)
    }
}

/// Uniform choice between same-typed strategies (see [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over the given non-empty list of arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.0.len());
        self.0[ix].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as u128) - (start as u128) + 1;
                (start as u128 + (rng.next_u64() as u128) % width) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}
