//! The paper's two exponential phenomena, live.
//!
//! 1. §5: a DTD of size `O(n)` whose minimal trees have `2^{n+2} − 1`
//!    nodes — why the algorithm charges insertlet sizes `|W|` instead of
//!    materialising witnesses.
//! 2. §4 "Further results": inserting `k` visible nodes under
//!    `D2: r → (a·(b+c))*` (with `b`, `c` hidden) admits exactly `2^k`
//!    cost-minimal propagations — the propagation graphs *represent* them
//!    all in polynomial space, and counting is a linear pass. One
//!    [`Engine`] per `D2` serves every `k` through sessions.
//!
//! Run with: `cargo run --release --example exponential`

use xml_view_update::prelude::*;

fn main() {
    minimal_trees();
    println!();
    optimal_propagation_counts();
}

fn minimal_trees() {
    println!("§5 — minimal trees exponential in |D|   (a → aₙ·aₙ, aᵢ → aᵢ₋₁·aᵢ₋₁, a₀ → ε)");
    println!(
        "{:>4} {:>8} {:>22} {:>14}",
        "n", "|D|", "minsize(a)", "fixpoint"
    );
    for n in [4usize, 8, 16, 32, 60] {
        let mut alpha = Alphabet::new();
        let dtd = exponential_dtd(&mut alpha, n);
        let start = std::time::Instant::now();
        let sizes = min_sizes(&dtd, alpha.len());
        let elapsed = start.elapsed();
        let a = alpha.get("a").expect("a");
        println!(
            "{:>4} {:>8} {:>22} {:>11.3} ms",
            n,
            dtd.size(),
            sizes.get(a),
            elapsed.as_secs_f64() * 1e3
        );
    }
    println!("the size table is milliseconds; the tree itself would not fit in RAM at n = 60.");
}

fn optimal_propagation_counts() {
    println!(
        "§4 — D2: r → (a·(b+c))*, b and c hidden: inserting k a's has 2^k optimal propagations"
    );
    println!(
        "{:>4} {:>14} {:>22}",
        "k", "optimal cost", "# optimal propagations"
    );

    // One compiled engine serves every k below.
    let fx = xml_view_update::workload::paper::d2_exponential_choices();
    let mut alpha = fx.alpha.clone();
    let mut gen = NodeIdGen::new();
    let source = parse_term_with_ids(&mut alpha, &mut gen, "r#0").expect("source");
    let engine = Engine::builder()
        .alphabet(alpha.clone())
        .dtd(fx.dtd.clone())
        .annotation(fx.ann.clone())
        .build()
        .expect("complete engine");
    let session = engine.open(&source).expect("valid source");

    for k in [1usize, 4, 8, 16, 32, 64] {
        let mut s = String::from("nop:r#0(");
        for i in 0..k {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("ins:a#{}", i + 1));
        }
        s.push(')');
        let update = parse_script(&mut alpha, &s).expect("update");

        // One propagation answers both questions: the returned forest
        // already represents every optimal propagation.
        let prop = session.propagate(&update).expect("prop");
        let count = count_optimal_propagations(&prop.forest).expect("the forest has propagations");
        println!("{:>4} {:>14} {:>22}", k, prop.cost, count);
        assert_eq!(count, 1u128 << k);

        // Despite the exponential count, *one* optimal propagation was
        // produced in polynomial time — and it is sound:
        session.verify(&update, &prop.script).expect("sound");
    }
    println!("all counts verified = 2^k; each selected propagation verified sound.");
}
