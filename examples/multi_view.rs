//! Multiple views of one document: what does *your* edit do to *my* view?
//!
//! The paper lists multi-view side-effect analysis as future work; the
//! persistent node identifiers make it directly computable. Two hospital
//! roles see different views of the same document. When the registrar
//! admits and discharges patients, [`cross_view_effect`] computes the
//! exact editing script the auditor's view observes — before committing
//! anything. The registrar's `(Σ, D, A)` triple is compiled once into an
//! [`Engine`] and the record is served from a [`Session`].
//!
//! Run with: `cargo run --example multi_view`

use xml_view_update::prelude::*;
use xml_view_update::propagate::cross_view_effect;
use xml_view_update::workload::scenario::{discharge_patient, hospital, hospital_doc};

fn main() {
    let mut h = hospital();
    let mut gen = NodeIdGen::new();
    let doc = hospital_doc(&h, 2, 2, &mut gen);

    // The auditor sees billing but not names or treatments.
    let auditor = parse_annotation(
        &mut h.alpha,
        "hide patient name\nhide record diagnosis\nhide record treatment",
    )
    .expect("annotation");

    // The registrar's view hides clinical material (from the scenario).
    let engine = Engine::builder()
        .alphabet(h.alpha.clone())
        .dtd(h.dtd.clone())
        .annotation(h.ann.clone())
        .build()
        .expect("complete engine");
    let session = engine.open(&doc).expect("valid record");
    let registrar = engine.annotation();

    println!(
        "registrar sees {} nodes; auditor sees {} nodes (of {})",
        session.view().size(),
        extract_view(&auditor, &doc).size(),
        doc.size()
    );

    // The registrar discharges a patient…
    let update = discharge_patient(&h, &doc, 0, 1);
    let prop = session.propagate(&update).expect("prop");
    session.verify(&update, &prop.script).expect("sound");

    // …and before committing, we can answer: what changes in each view?
    let own = cross_view_effect(registrar, &prop.script).expect("diffable");
    let theirs = cross_view_effect(&auditor, &prop.script).expect("diffable");
    println!();
    println!(
        "registrar's view changes: {} operations (their own edit)",
        cost(&own)
    );
    println!(
        "auditor's view changes:   {} operations — they lose the patient's \
         insurance and billing records:",
        cost(&theirs)
    );
    println!("  {}", script_to_term(&theirs, &h.alpha));

    // The effect is a genuine editing script: it applies to the auditor's
    // old view and produces their new view.
    let before = extract_view(&auditor, &doc);
    let after = extract_view(&auditor, &output_tree(&prop.script).expect("non-empty"));
    assert_eq!(apply(&theirs, &before).expect("applies"), after);
    println!();
    println!("cross-view effect verified against the auditor's actual views ✓");
}
