//! Interchange: real XML documents and `<!ELEMENT>` DTDs in, XML out.
//!
//! Loads the schema from standard DTD declaration syntax and the document
//! from XML (with `xvu:id` attributes carrying node identifiers), compiles
//! an [`Engine`], propagates a view update through a [`Session`], and
//! serialises the new source back to XML.
//!
//! Run with: `cargo run --example xml_io`

use xml_view_update::prelude::*;

const DTD_SRC: &str = r#"
<!-- the paper's D0 in standard DTD syntax -->
<!ELEMENT r (a, (b | c), d)*>
<!ELEMENT d ((a | b), c)*>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
<!ELEMENT c EMPTY>
"#;

const DOC_SRC: &str = r#"<?xml version="1.0"?>
<r xvu:id="0">
  <a xvu:id="1"/>
  <b xvu:id="2"/>
  <d xvu:id="3">
    <a xvu:id="7"/>
    <c xvu:id="8"/>
  </d>
  <a xvu:id="4"/>
  <c xvu:id="5"/>
  <d xvu:id="6">
    <b xvu:id="9"/>
    <c xvu:id="10"/>
  </d>
</r>
"#;

fn main() {
    let mut alpha = Alphabet::new();
    let mut gen = NodeIdGen::new();

    let dtd = read_dtd(&mut alpha, DTD_SRC).expect("well-formed DTD");
    let source = read_xml(&mut alpha, &mut gen, DOC_SRC).expect("well-formed XML");
    let ann =
        parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").expect("annotation");

    let engine = Engine::builder()
        .alphabet(alpha)
        .dtd(dtd)
        .annotation(ann)
        .build()
        .expect("complete engine");
    // `open` validates the document against the DTD once.
    let mut session = engine.open(&source).expect("document satisfies the DTD");
    println!("loaded {} nodes from XML", source.size());

    println!(
        "\nthe view as XML:\n{}",
        write_xml(session.view(), engine.alphabet(), &WriteOptions::default())
    );

    // Delete the first (a, d) group in the view.
    let view = session.view();
    let kids: Vec<NodeId> = view.children(view.root()).to_vec();
    let mut b = UpdateBuilder::new(view);
    b.delete(kids[0]).expect("view-valid");
    b.delete(kids[1]).expect("view-valid");
    let update = b.finish();

    let prop = session.apply(&update).expect("propagate + commit");
    println!(
        "propagated deletion (cost {}); the new source as XML:\n",
        prop.cost
    );
    println!(
        "{}",
        write_xml(
            session.document(),
            engine.alphabet(),
            &WriteOptions {
                pretty: true,
                with_ids: true
            }
        )
    );
    assert!(engine.dtd().is_valid(session.document()));
}
