//! Interchange: real XML documents and `<!ELEMENT>` DTDs in, XML out.
//!
//! Loads the schema from standard DTD declaration syntax and the document
//! from XML (with `xvu:id` attributes carrying node identifiers),
//! propagates a view update, and serialises the new source back to XML.
//!
//! Run with: `cargo run --example xml_io`

use xml_view_update::prelude::*;

const DTD_SRC: &str = r#"
<!-- the paper's D0 in standard DTD syntax -->
<!ELEMENT r (a, (b | c), d)*>
<!ELEMENT d ((a | b), c)*>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>
<!ELEMENT c EMPTY>
"#;

const DOC_SRC: &str = r#"<?xml version="1.0"?>
<r xvu:id="0">
  <a xvu:id="1"/>
  <b xvu:id="2"/>
  <d xvu:id="3">
    <a xvu:id="7"/>
    <c xvu:id="8"/>
  </d>
  <a xvu:id="4"/>
  <c xvu:id="5"/>
  <d xvu:id="6">
    <b xvu:id="9"/>
    <c xvu:id="10"/>
  </d>
</r>
"#;

fn main() {
    let mut alpha = Alphabet::new();
    let mut gen = NodeIdGen::new();

    let dtd = read_dtd(&mut alpha, DTD_SRC).expect("well-formed DTD");
    let source = read_xml(&mut alpha, &mut gen, DOC_SRC).expect("well-formed XML");
    dtd.validate(&source).expect("document satisfies the DTD");
    println!("loaded {} nodes from XML", source.size());

    let ann =
        parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").expect("annotation");
    let view = extract_view(&ann, &source);
    println!(
        "\nthe view as XML:\n{}",
        write_xml(&view, &alpha, &WriteOptions::default())
    );

    // Delete the first (a, d) group in the view.
    let kids: Vec<NodeId> = view.children(view.root()).to_vec();
    let mut b = UpdateBuilder::new(&view);
    b.delete(kids[0]).expect("view-valid");
    b.delete(kids[1]).expect("view-valid");
    let update = b.finish();

    let inst = Instance::new(&dtd, &ann, &source, &update, alpha.len()).expect("valid");
    let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).expect("propagate");
    verify_propagation(&inst, &prop.script).expect("verified");

    let new_source = output_tree(&prop.script).expect("non-empty");
    println!(
        "propagated deletion (cost {}); the new source as XML:\n",
        prop.cost
    );
    println!(
        "{}",
        write_xml(
            &new_source,
            &alpha,
            &WriteOptions {
                pretty: true,
                with_ids: true
            }
        )
    );
    assert!(dtd.is_valid(&new_source));
}
