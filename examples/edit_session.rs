//! A multi-step editing session against a view.
//!
//! Demonstrates the full read–edit–propagate loop an application would
//! run: the user never sees the source document; every update is built
//! positionally against the *current* view with [`UpdateBuilder`],
//! propagated, and the next round starts from the new source. Hidden
//! material flows along correctly at every step.
//!
//! Run with: `cargo run --example edit_session`

use xml_view_update::prelude::*;

fn main() {
    let mut alpha = Alphabet::new();
    let mut gen = NodeIdGen::new();
    let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").expect("DTD");
    let ann =
        parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").expect("annotation");
    let insertlets = {
        // administrator-chosen insertlets: always pad with c under r and
        // with b under d
        let sizes = min_sizes(&dtd, alpha.len());
        let mut pkg = InsertletPackage::new();
        let c = parse_term(&mut alpha, &mut gen, "c").expect("c");
        let b = parse_term(&mut alpha, &mut gen, "b").expect("b");
        pkg.insert(&dtd, &sizes, alpha.get("c").expect("interned"), c)
            .expect("valid insertlet");
        pkg.insert(&dtd, &sizes, alpha.get("b").expect("interned"), b)
            .expect("valid insertlet");
        pkg
    };

    let mut source = parse_term_with_ids(
        &mut alpha,
        &mut gen,
        "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
    )
    .expect("t0");

    println!("initial source: {}", to_term_with_ids(&source, &alpha));

    // -------- round 1: append a fresh (a, d) group in the view ---------
    {
        let view = extract_view(&ann, &source);
        println!("\n[1] view: {}", to_term_with_ids(&view, &alpha));
        let mut b = UpdateBuilder::new(&view);
        let new_a = parse_term(&mut alpha, &mut gen, "a").expect("a");
        let new_d = parse_term(&mut alpha, &mut gen, "d(c)").expect("d(c)");
        let end = view.children(view.root()).len();
        b.insert(view.root(), end, new_a).expect("view-valid");
        b.insert(view.root(), end + 1, new_d).expect("view-valid");
        source = run_round(
            &dtd,
            &ann,
            &insertlets,
            &alpha,
            &source,
            b.finish(),
            &mut gen,
        );
    }

    // -------- round 2: delete the middle d-subtree ----------------------
    {
        let view = extract_view(&ann, &source);
        println!("\n[2] view: {}", to_term_with_ids(&view, &alpha));
        // delete the second (a, d) pair in the view
        let kids: Vec<NodeId> = view.children(view.root()).to_vec();
        let mut b = UpdateBuilder::new(&view);
        b.delete(kids[2]).expect("view-valid");
        b.delete(kids[3]).expect("view-valid");
        source = run_round(
            &dtd,
            &ann,
            &insertlets,
            &alpha,
            &source,
            b.finish(),
            &mut gen,
        );
    }

    // -------- round 3: grow a d with another c ---------------------------
    {
        let view = extract_view(&ann, &source);
        println!("\n[3] view: {}", to_term_with_ids(&view, &alpha));
        let first_d = view
            .children(view.root())
            .iter()
            .copied()
            .find(|&n| alpha.name(view.label(n)) == "d")
            .expect("a d child exists");
        let mut b = UpdateBuilder::new(&view);
        let new_c = parse_term(&mut alpha, &mut gen, "c").expect("c");
        b.insert(first_d, view.children(first_d).len(), new_c)
            .expect("view-valid");
        source = run_round(
            &dtd,
            &ann,
            &insertlets,
            &alpha,
            &source,
            b.finish(),
            &mut gen,
        );
    }

    println!("\nfinal source:  {}", to_term_with_ids(&source, &alpha));
    println!(
        "final view:    {}",
        to_term_with_ids(&extract_view(&ann, &source), &alpha)
    );
    assert!(dtd.is_valid(&source));
}

/// Propagates one view update and returns the new source document.
///
/// After propagating, the application's identifier generator is re-synced
/// past every identifier of the new source: propagation allocates fresh
/// identifiers for invisible padding, and the well-formedness requirement
/// `N_S ∩ (N_t \ N_{A(t)}) = ∅` (checked by `Instance::new`) would reject
/// a later update whose "fresh" nodes collided with them.
fn run_round(
    dtd: &Dtd,
    ann: &Annotation,
    insertlets: &InsertletPackage,
    alpha: &Alphabet,
    source: &DocTree,
    update: Script,
    gen: &mut NodeIdGen,
) -> DocTree {
    let inst = Instance::new(dtd, ann, source, &update, alpha.len()).expect("valid instance");
    let prop = propagate(&inst, insertlets, &Config::default()).expect("propagation exists");
    verify_propagation(&inst, &prop.script).expect("verified");
    let next = output_tree(&prop.script).expect("non-empty");
    for id in next.node_ids() {
        gen.bump_past(id);
    }
    println!(
        "    update cost {:>2} → new source {}",
        prop.cost,
        to_term_with_ids(&next, alpha)
    );
    next
}
