//! A multi-step editing session against a view.
//!
//! Demonstrates the full read–edit–propagate loop an application would
//! run: the schema and view are compiled once into an [`Engine`], the
//! document is opened once in a [`Session`], and every round builds an
//! update positionally against the session's *current* view with
//! [`UpdateBuilder`] and applies it with [`Session::apply`] (propagate +
//! incremental commit). The user never sees the source document; hidden
//! material flows along correctly at every step, and the session keeps
//! the identifier high-water mark so fresh view nodes never collide with
//! hidden source nodes — no manual generator re-syncing.
//!
//! Run with: `cargo run --example edit_session`

use xml_view_update::prelude::*;

fn main() {
    let mut alpha = Alphabet::new();
    let mut gen = NodeIdGen::new();
    let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").expect("DTD");
    let ann =
        parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").expect("annotation");
    let insertlets = {
        // administrator-chosen insertlets: always pad with c under r and
        // with b under d
        let sizes = min_sizes(&dtd, alpha.len());
        let mut pkg = InsertletPackage::new();
        let c = parse_term(&mut alpha, &mut gen, "c").expect("c");
        let b = parse_term(&mut alpha, &mut gen, "b").expect("b");
        pkg.insert(&dtd, &sizes, alpha.get("c").expect("interned"), c)
            .expect("valid insertlet");
        pkg.insert(&dtd, &sizes, alpha.get("b").expect("interned"), b)
            .expect("valid insertlet");
        pkg
    };

    let t0 = parse_term_with_ids(
        &mut alpha,
        &mut gen,
        "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
    )
    .expect("t0");

    // Compile once; the engine snapshots the alphabet (ours stays mutable
    // for parsing the fragments the user inserts later — no new labels
    // appear, so the two agree).
    let engine = Engine::builder()
        .alphabet(alpha.clone())
        .dtd(dtd)
        .annotation(ann)
        .insertlets(insertlets)
        .build()
        .expect("complete engine");
    let mut session = engine.open(&t0).expect("t0 satisfies the DTD");

    println!(
        "initial source: {}",
        to_term_with_ids(session.document(), &alpha)
    );

    // -------- round 1: append a fresh (a, d) group in the view ---------
    {
        let mut gen = session.id_gen();
        println!("\n[1] view: {}", to_term_with_ids(session.view(), &alpha));
        let new_a = parse_term(&mut alpha, &mut gen, "a").expect("a");
        let new_d = parse_term(&mut alpha, &mut gen, "d(c)").expect("d(c)");
        let view = session.view();
        let end = view.children(view.root()).len();
        let mut b = UpdateBuilder::new(view);
        b.insert(view.root(), end, new_a).expect("view-valid");
        b.insert(view.root(), end + 1, new_d).expect("view-valid");
        let update = b.finish();
        run_round(&mut session, &alpha, &update);
    }

    // -------- round 2: delete the middle d-subtree ----------------------
    {
        println!("\n[2] view: {}", to_term_with_ids(session.view(), &alpha));
        // delete the second (a, d) pair in the view
        let view = session.view();
        let kids: Vec<NodeId> = view.children(view.root()).to_vec();
        let mut b = UpdateBuilder::new(view);
        b.delete(kids[2]).expect("view-valid");
        b.delete(kids[3]).expect("view-valid");
        let update = b.finish();
        run_round(&mut session, &alpha, &update);
    }

    // -------- round 3: grow a d with another c ---------------------------
    {
        let mut gen = session.id_gen();
        println!("\n[3] view: {}", to_term_with_ids(session.view(), &alpha));
        let new_c = parse_term(&mut alpha, &mut gen, "c").expect("c");
        let view = session.view();
        let first_d = view
            .children(view.root())
            .iter()
            .copied()
            .find(|&n| alpha.name(view.label(n)) == "d")
            .expect("a d child exists");
        let mut b = UpdateBuilder::new(view);
        b.insert(first_d, view.children(first_d).len(), new_c)
            .expect("view-valid");
        let update = b.finish();
        run_round(&mut session, &alpha, &update);
    }

    println!(
        "\nfinal source:  {}",
        to_term_with_ids(session.document(), &alpha)
    );
    println!(
        "final view:    {}",
        to_term_with_ids(session.view(), &alpha)
    );
    assert!(engine.dtd().is_valid(session.document()));
    assert_eq!(session.commits(), 3);
}

/// Propagates one view update through the session and commits it.
fn run_round(session: &mut Session<'_>, alpha: &Alphabet, update: &Script) {
    let prop = session.apply(update).expect("propagation exists");
    println!(
        "    update cost {:>2} → new source {}",
        prop.cost,
        to_term_with_ids(session.document(), alpha)
    );
}
