//! Why repair-based view updating is not enough (paper §6.2).
//!
//! `D3: r → b·(c+ε)·(a·c)*` with `a` and `b` hidden gives the view DTD
//! `r → c*`. For the source `t = r(b, a, c)` the view is `r(c)`; the user
//! appends a second `c` *after* the existing one. Two source documents
//! have the updated view: `t1 = r(b, c, a, c)` and `t2 = r(b, a, c, a, c)`.
//! Tree-edit-distance repair prefers `t1` (distance 1) — but the user
//! inserted the new `c` after the old one, so the old `c` keeps its hidden
//! `(a)` prefix and the faithful answer is `t2`. Node identifiers carry
//! exactly this positional information, and the propagation graphs use it.
//!
//! Run with: `cargo run --example repair_pitfall`

use xml_view_update::prelude::*;
use xml_view_update::workload::paper::d3_repair_pitfall;

fn main() {
    let (fx, t, s, _gen) = d3_repair_pitfall();
    println!("DTD D3          : r -> b.(c+eps).(a.c)*   (a, b hidden under r)");
    println!("source t        = {}", to_term_with_ids(&t, &fx.alpha));
    println!(
        "view A(t)       = {}",
        to_term_with_ids(&extract_view(&fx.ann, &t), &fx.alpha)
    );
    println!("user update     = {}", script_to_term(&s, &fx.alpha));

    // --- The repair-based baseline --------------------------------------
    let repair = repair_based_update(
        &fx.dtd,
        &fx.ann,
        fx.alpha.len(),
        &t,
        &s,
        &RepairConfig::default(),
    )
    .expect("repair baseline");
    println!();
    println!(
        "repair baseline picks  {}   (TED to t = {}, {} candidates considered)",
        to_term(&repair.chosen, &fx.alpha),
        repair.distance,
        repair.candidates_considered
    );

    // --- The propagation-graph solution ---------------------------------
    let engine = Engine::builder()
        .alphabet(fx.alpha.clone())
        .dtd(fx.dtd.clone())
        .annotation(fx.ann.clone())
        .build()
        .expect("complete engine");
    let mut session = engine.open(&t).expect("valid");
    let prop = session.apply(&s).expect("propagate + commit");
    let new_source = session.document();
    println!(
        "propagation produces   {}   (cost {})",
        to_term(new_source, &fx.alpha),
        prop.cost
    );

    assert_eq!(to_term(&repair.chosen, &fx.alpha), "r(b, c, a, c)");
    assert_eq!(to_term(new_source, &fx.alpha), "r(b, a, c, a, c)");
    println!();
    println!(
        "the two disagree: repair moved the hidden (a) group *after* the old c,\n\
         silently reordering invisible data relative to the node the user kept.\n\
         The propagation keeps node c#3's context intact — the paper's point."
    );
}
