//! Quickstart: the paper's running example, end to end.
//!
//! Builds the source document `t0` (Fig. 1), the DTD `D0` (Fig. 2), the
//! annotation `A0` (Fig. 3), compiles them into an [`Engine`], replays
//! the user's view update `S0` (Fig. 4) through a [`Session`], and
//! propagates it to the source — reproducing the optimal propagation of
//! Fig. 7 (cost 14).
//!
//! Run with: `cargo run --example quickstart`

use xml_view_update::prelude::*;

fn main() {
    let mut alpha = Alphabet::new();
    let mut gen = NodeIdGen::new();

    // --- Schema (D0) and view definition (A0) -------------------------
    let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").expect("DTD");
    let ann =
        parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").expect("annotation");

    // --- Source document (t0, Fig. 1) ---------------------------------
    let t0 = parse_term_with_ids(
        &mut alpha,
        &mut gen,
        "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
    )
    .expect("t0");

    // --- The user's update (S0, Fig. 4) --------------------------------
    let s0 = parse_script(
        &mut alpha,
        "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
         ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
    )
    .expect("S0");

    // --- Compile once, open the document, serve the update --------------
    let engine = Engine::builder()
        .alphabet(alpha)
        .dtd(dtd)
        .annotation(ann)
        .build()
        .expect("alphabet, DTD, and annotation supplied");
    let alpha = engine.alphabet();
    let mut session = engine.open(&t0).expect("t0 satisfies D0");

    println!("source      t0    = {}", to_term_with_ids(&t0, alpha));
    println!(
        "view        A(t0) = {}",
        to_term_with_ids(session.view(), alpha)
    );
    println!("view update S0    = {}", script_to_term(&s0, alpha));
    println!(
        "updated view      = {}",
        to_term_with_ids(&output_tree(&s0).expect("non-empty"), alpha)
    );

    // --- Propagation ----------------------------------------------------
    let prop = session
        .propagate(&s0)
        .expect("Theorem 5: a propagation always exists");
    session
        .verify(&s0, &prop.script)
        .expect("schema compliant and side-effect free");

    println!();
    println!(
        "propagation S'    = {}",
        script_to_term(&prop.script, alpha)
    );
    println!("cost              = {} (paper Fig. 7: 14)", prop.cost);
    println!(
        "optimal count     = {} cost-minimal propagations captured by G*",
        count_optimal_propagations(&prop.forest).expect("the forest has propagations")
    );

    // Committing advances the session to the new source with incremental
    // revalidation — ready for the next update.
    session.commit(&prop).expect("commit");
    let new_source = session.document();
    println!(
        "new source        = {}",
        to_term_with_ids(new_source, alpha)
    );
    assert!(engine.dtd().is_valid(new_source));
    assert_eq!(
        session.view(),
        &output_tree(&s0).expect("non-empty"),
        "side-effect free: the new view is exactly what the user asked for"
    );
    println!();
    println!("side-effect free & schema compliant: verified ✓");
}
