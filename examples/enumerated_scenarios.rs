//! Three named view-update scenarios from the enumerated workload layer,
//! driven end to end: a publishing pipeline (editors see chapters, not
//! front-matter), a fleet configuration view (operators see hosts and
//! interfaces, never credentials), and an audit-log redaction view
//! (analysts see actions, not actors or details).
//!
//! Each scenario is built from the same `(seq | alt | star | opt)` rule
//! grammar that `xvu_workload::enumo` enumerates, so the ad-hoc stories
//! here live inside the grammar space the differential oracle harness
//! sweeps exhaustively (`tests/enumerated_differential.rs`).
//!
//! Run with: `cargo run --example enumerated_scenarios`

use xml_view_update::prelude::*;
use xml_view_update::workload::scenario::{
    add_chapter, add_host, audit_doc, audit_redaction, config_doc, config_view, log_event,
    publishing, publishing_doc, EnumScenario,
};

fn drive(name: &str, s: &EnumScenario, doc: &DocTree, update: &Script) {
    let engine = Engine::builder()
        .alphabet(s.alpha.clone())
        .dtd(s.dtd.clone())
        .annotation(s.ann.clone())
        .build()
        .expect("complete engine");
    let mut session = engine.open(doc).expect("valid document");

    println!("== {name} ==");
    println!("source ({} nodes)", doc.size());
    println!(
        "view   ({} nodes): {}",
        session.view().size(),
        to_term(session.view(), &s.alpha)
    );
    println!("update: {}", script_to_term(update, &s.alpha));

    let prop = session.propagate(update).expect("Theorem 5");
    session.verify(update, &prop.script).expect("sound");
    println!(
        "optimal source edit (cost {}): {}",
        prop.cost,
        script_to_term(&prop.script, &s.alpha)
    );
    if let Some(n) = count_optimal_propagations(&prop.forest) {
        println!("optimal propagations: {n}");
    }
    session.commit(&prop).expect("commits");
    println!(
        "source after commit ({} nodes)\n",
        session.document().size()
    );
}

fn main() {
    let mut gen = NodeIdGen::new();

    // Publishing: the editor's view hides front-matter and footnotes;
    // adding a chapter in the view must not clobber either.
    let pubs = publishing();
    let book = publishing_doc(&pubs, 2, 3, &mut gen);
    let u = add_chapter(&pubs, &book, &mut gen);
    drive("publishing", &pubs, &book, &u);

    // Config views: the operator's view hides credential blocks; a new
    // host minted in the view gains no secrets.
    let cfg = config_view();
    let fleet = config_doc(&cfg, 3, &mut gen);
    let u = add_host(&cfg, &fleet, &mut gen);
    drive("config view", &cfg, &fleet, &u);

    // Audit redaction: the analyst's view hides actors and details; a new
    // sub-event logged in the view forces the engine to mint the hidden
    // mandatory `actor` in the source — visible-cost 2, source-cost 3.
    let audit = audit_redaction();
    let log = audit_doc(&audit, 3, 2, &mut gen);
    let u = log_event(&audit, &log, &[0], &mut gen);
    drive("audit redaction", &audit, &log, &u);
}
