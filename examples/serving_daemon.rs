//! The long-lived serving daemon, end to end in one process.
//!
//! Builds the paper's running-example engine, starts an
//! [`xml_view_update::server::Server`] on an ephemeral TCP port, and
//! drives it with the typed [`xml_view_update::server::Client`]: load a
//! document, open its view, propagate and commit a view update, read
//! the stats, shut down cleanly. The same daemon is what `xvu serve`
//! runs, and the same client is what `xvu client` wraps.
//!
//! To see the fleet-scale differential harness instead — many documents,
//! Zipf popularity, full lifecycles, every reply diffed against direct
//! library sessions — see `server::run_fleet` and `tests/serving.rs`.
//!
//! Run with: `cargo run --example serving_daemon`

use std::net::TcpListener;
use xml_view_update::prelude::*;
use xml_view_update::server::{Client, Server, ServerConfig};

fn main() {
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").expect("DTD");
    let ann =
        parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").expect("annotation");
    let engines = [Engine::builder()
        .alphabet(alpha)
        .dtd(dtd)
        .annotation(ann)
        .build()
        .expect("engine")];

    // a deliberately tiny pool: switching documents forces LRU eviction,
    // which the store's write-back makes observationally invisible
    let server = Server::new(
        &engines,
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            pool_capacity: 1,
            retry_after_ms: 1,
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    println!("daemon listening on {addr}");

    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.serve_listener(listener).expect("serve"));

        let mut client = Client::connect(&addr).expect("connect + hello");
        client
            .load(
                1,
                0,
                "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
            )
            .expect("load");
        println!("view of document 1: {}", client.open(1).expect("open"));

        // the paper's running update: delete the first (a, d) group and
        // insert a fresh one
        let update = "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
             ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))";
        let reply = client.propagate(1, update).expect("propagate");
        println!(
            "propagated at cost {} ({} optimal propagations)",
            reply.cost, reply.count
        );
        println!("source script: {}", reply.script);
        client
            .verify(1, update, &reply.script)
            .expect("the daemon's own script verifies");
        client.commit(1).expect("commit");

        // a second document evicts the first (pool capacity 1) — yet
        // document 1 reopens with its committed state intact
        client
            .load(2, 0, "r#0(a#1, b#2, d#3(a#7, c#8))")
            .expect("load");
        client.open(2).expect("open evicts document 1");
        println!(
            "document 1 after eviction: {}",
            client.open(1).expect("reopen")
        );

        println!("stats: {}", client.stats().expect("stats"));
        client.shutdown().expect("shutdown");
        let report = daemon.join().expect("daemon thread");
        println!(
            "daemon drained {} ({} requests served)",
            if report.drained_clean {
                "clean"
            } else {
                "dirty"
            },
            report.stats.total_requests()
        );
    });
}
