//! Serving many users from one shared engine.
//!
//! The compiled [`Engine`] is immutable and `Send + Sync`, so a server
//! shares exactly one behind an `Arc` and fans requests across plain OS
//! threads. Two serving shapes:
//!
//! 1. **Independent requests** — [`Engine::propagate_batch`] spreads a
//!    `(document, update)` batch over a worker pool; results come back in
//!    request order, identical to a sequential run.
//! 2. **Repeated updates per document** — a [`SessionPool`] checks out
//!    one exclusive [`Session`] per document key, so commits are
//!    serialised per document while distinct documents proceed in
//!    parallel.
//!
//! Run with: `cargo run --example concurrent_serving`

use std::sync::Arc;
use xml_view_update::prelude::*;

fn main() {
    let mut alpha = Alphabet::new();
    let mut gen = NodeIdGen::new();
    let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").expect("DTD");
    let ann =
        parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").expect("annotation");
    let t0 = parse_term_with_ids(
        &mut alpha,
        &mut gen,
        "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
    )
    .expect("document");
    let s0 = parse_script(
        &mut alpha,
        "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
         ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
    )
    .expect("update");

    // One engine for the whole process: compiled once, shared forever.
    let engine = Arc::new(
        Engine::builder()
            .alphabet(alpha)
            .dtd(dtd)
            .annotation(ann)
            .build()
            .expect("engine"),
    );

    // --- shape 1: a batch of independent requests over 4 workers -------
    let requests: Vec<(DocTree, Script)> = (0..8).map(|_| (t0.clone(), s0.clone())).collect();
    let results = engine.propagate_batch(&requests, 4);
    println!("batch of {} requests on 4 worker threads:", requests.len());
    for (i, result) in results.iter().enumerate() {
        let prop = result.as_ref().expect("Theorem 5");
        println!("  request {i}: cost {}", prop.cost);
        assert_eq!(prop.cost, 14); // every result = the paper's Fig. 7 optimum
    }

    // --- shape 2: per-document sessions under concurrent commits -------
    let pool: SessionPool<'_, usize> = SessionPool::new(&engine);
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let (pool, t0, s0) = (&pool, &t0, &s0);
            scope.spawn(move || {
                // all workers hit the same document key: the lease
                // serialises them, so exactly one applies the real edit
                // and the rest observe the already-advanced view
                let mut lease = pool.checkout(0, t0).expect("valid document");
                if lease.commits() == 0 {
                    let prop = lease.apply(s0).expect("Theorem 5");
                    println!("  worker {worker}: committed cost {}", prop.cost);
                } else {
                    let nop = nop_script(lease.view());
                    lease.apply(&nop).expect("identity");
                    println!("  worker {worker}: view already current");
                }
            });
        }
    });
    let lease = pool.checkout(0, &t0).expect("valid document");
    println!(
        "document 0 served {} commits; final view = {}",
        lease.commits(),
        to_term_with_ids(lease.view(), engine.alphabet())
    );
    assert_eq!(lease.commits(), 4);
    assert_eq!(lease.view(), &output_tree(&s0).expect("non-empty output"));
}
