//! Security views: the hospital registrar scenario.
//!
//! The paper motivates annotation views with secure access to XML
//! databases. Here a registrar works against a view that hides insurance,
//! diagnoses, treatments, and billing; admissions and discharges made in
//! the view are propagated to the full hospital record without ever
//! exposing — or clobbering — the hidden clinical data.
//!
//! Run with: `cargo run --example security_view`

use xml_view_update::prelude::*;
use xml_view_update::workload::scenario::{
    admit_patient, discharge_patient, hospital, hospital_doc,
};

fn main() {
    let h = hospital();
    let mut gen = NodeIdGen::new();

    // Two departments with two patients each; every patient has hidden
    // insurance + clinical record details.
    let doc = hospital_doc(&h, 2, 2, &mut gen);
    println!("full record   ({} nodes)", doc.size());
    println!(
        "registrar view ({} nodes):",
        extract_view(&h.ann, &doc).size()
    );
    println!("{}", to_term(&extract_view(&h.ann, &doc), &h.alpha));

    // --- Admission -----------------------------------------------------
    let admit = admit_patient(&h, &doc, 0, &mut gen);
    let inst = Instance::new(&h.dtd, &h.ann, &doc, &admit, h.alpha.len()).expect("valid");
    let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).expect("propagate");
    verify_propagation(&inst, &prop.script).expect("verified");
    let doc2 = output_tree(&prop.script).expect("non-empty");
    println!();
    println!(
        "admitted a patient through the view: propagation cost {} — record now {} nodes",
        prop.cost,
        doc2.size()
    );
    assert!(h.dtd.is_valid(&doc2));

    // Hidden data of the *other* patients is untouched: every hidden node
    // of the old record is still present.
    let old_hidden: Vec<NodeId> = {
        let visible = visible_nodes(&h.ann, &doc);
        doc.node_ids().filter(|n| !visible.contains(n)).collect()
    };
    for n in &old_hidden {
        assert!(
            doc2.contains(*n),
            "hidden node {n} must survive an admission"
        );
    }
    println!(
        "all {} hidden clinical/billing nodes survived untouched ✓",
        old_hidden.len()
    );

    // --- Discharge -----------------------------------------------------
    let discharge = discharge_patient(&h, &doc2, 1, 0);
    let inst2 = Instance::new(&h.dtd, &h.ann, &doc2, &discharge, h.alpha.len()).expect("valid");
    let prop2 = propagate(&inst2, &InsertletPackage::new(), &Config::default()).expect("propagate");
    verify_propagation(&inst2, &prop2.script).expect("verified");
    let doc3 = output_tree(&prop2.script).expect("non-empty");
    println!();
    println!(
        "discharged a patient: propagation cost {} — the patient's hidden record \
         ({} nodes incl. invisible) went with them",
        prop2.cost,
        doc2.size() - doc3.size()
    );
    assert!(h.dtd.is_valid(&doc3));
    // The discharge deletes the patient's whole subtree, including the
    // parts the registrar cannot see — that is what side-effect freedom
    // demands, and the cost reflects it (8 nodes per full patient).
    assert_eq!(prop2.cost, 8);

    println!();
    println!("final registrar view:");
    println!("{}", to_term(&extract_view(&h.ann, &doc3), &h.alpha));
}
