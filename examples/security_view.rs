//! Security views: the hospital registrar scenario.
//!
//! The paper motivates annotation views with secure access to XML
//! databases. Here a registrar works against a view that hides insurance,
//! diagnoses, treatments, and billing; admissions and discharges made in
//! the view are propagated to the full hospital record without ever
//! exposing — or clobbering — the hidden clinical data. The hospital
//! schema is compiled once into an [`Engine`]; one [`Session`] serves the
//! whole shift.
//!
//! Run with: `cargo run --example security_view`

use xml_view_update::prelude::*;
use xml_view_update::workload::scenario::{
    admit_patient, discharge_patient, hospital, hospital_doc,
};

fn main() {
    let h = hospital();
    let mut gen = NodeIdGen::new();

    // Two departments with two patients each; every patient has hidden
    // insurance + clinical record details.
    let doc = hospital_doc(&h, 2, 2, &mut gen);
    let engine = Engine::builder()
        .alphabet(h.alpha.clone())
        .dtd(h.dtd.clone())
        .annotation(h.ann.clone())
        .build()
        .expect("complete engine");
    let mut session = engine.open(&doc).expect("valid record");

    println!("full record   ({} nodes)", doc.size());
    println!("registrar view ({} nodes):", session.view().size());
    println!("{}", to_term(session.view(), &h.alpha));

    // --- Admission -----------------------------------------------------
    let admit = admit_patient(&h, &doc, 0, &mut gen);
    let prop = session.propagate(&admit).expect("propagate");
    session.verify(&admit, &prop.script).expect("verified");
    session.commit(&prop).expect("commit");
    println!();
    println!(
        "admitted a patient through the view: propagation cost {} — record now {} nodes",
        prop.cost,
        session.document().size()
    );
    assert!(engine.dtd().is_valid(session.document()));

    // Hidden data of the *other* patients is untouched: every hidden node
    // of the old record is still present.
    let old_hidden: Vec<NodeId> = {
        let visible = visible_nodes(&h.ann, &doc);
        doc.node_ids().filter(|n| !visible.contains(n)).collect()
    };
    for n in &old_hidden {
        assert!(
            session.document().contains(*n),
            "hidden node {n} must survive an admission"
        );
    }
    println!(
        "all {} hidden clinical/billing nodes survived untouched ✓",
        old_hidden.len()
    );

    // --- Discharge -----------------------------------------------------
    let size_before = session.document().size();
    let discharge = discharge_patient(&h, session.document(), 1, 0);
    let prop2 = session.apply(&discharge).expect("propagate + commit");
    println!();
    println!(
        "discharged a patient: propagation cost {} — the patient's hidden record \
         ({} nodes incl. invisible) went with them",
        prop2.cost,
        size_before - session.document().size()
    );
    assert!(engine.dtd().is_valid(session.document()));
    // The discharge deletes the patient's whole subtree, including the
    // parts the registrar cannot see — that is what side-effect freedom
    // demands, and the cost reflects it (8 nodes per full patient).
    assert_eq!(prop2.cost, 8);

    println!();
    println!("final registrar view:");
    println!("{}", to_term(session.view(), &h.alpha));
}
