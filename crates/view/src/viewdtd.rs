//! Deriving the view DTD from a source DTD and an annotation.
//!
//! The paper remarks (§2): *"a DTD capturing `A(L(D))` can be easily
//! derived from `D` and `A`. For instance, the view DTD for `D0` and `A0`
//! is `r → (a·d)*`, `d → c*`."*
//!
//! A visible node labeled `x` has as visible children exactly its children
//! with `A(x, y) = 1`, in order; hidden children vanish with their
//! subtrees. The view content model of `x` is therefore the image of
//! `L(D(x))` under the morphism erasing invisible symbols — computed by
//! [`xvu_automata::Nfa::erase_symbols`].

use crate::annotation::Annotation;
use xvu_dtd::Dtd;
use xvu_tree::Sym;

/// Derives a DTD for the view language `A(L(D))`.
///
/// The result has a rule for every label that has one in `dtd`; content
/// models are erased and trimmed. Note that the derived DTD constrains
/// *view* trees — it is what `Out(S) ∈ A(L(D))` is checked against.
pub fn derive_view_dtd(dtd: &Dtd, ann: &Annotation, alphabet_len: usize) -> Dtd {
    let mut out = Dtd::new();
    for label in dtd.ruled_labels() {
        let _ = alphabet_len; // alphabet length only documents intent here
        let erased = dtd
            .content_model(label)
            .erase_symbols(|y: Sym| !ann.is_visible(label, y))
            .trim();
        out.set_rule_nfa(label, erased);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::parse_annotation;
    use crate::view::extract_view;
    use xvu_automata::{glushkov, parse_regex, Dfa};
    use xvu_dtd::parse_dtd;
    use xvu_tree::{parse_term, Alphabet, NodeIdGen};

    #[test]
    fn paper_view_dtd_for_d0_a0() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
        let view_dtd = derive_view_dtd(&dtd, &ann, alpha.len());

        // Expected: r → (a·d)*, d → c*
        let expect_r = glushkov(&parse_regex(&mut alpha, "(a.d)*").unwrap());
        let expect_d = glushkov(&parse_regex(&mut alpha, "c*").unwrap());
        let r = alpha.get("r").unwrap();
        let d = alpha.get("d").unwrap();
        let got_r = Dfa::determinize(view_dtd.content_model(r), alpha.len()).minimize();
        let got_d = Dfa::determinize(view_dtd.content_model(d), alpha.len()).minimize();
        assert!(got_r.equivalent(&Dfa::determinize(&expect_r, alpha.len()).minimize()));
        assert!(got_d.equivalent(&Dfa::determinize(&expect_d, alpha.len()).minimize()));
    }

    #[test]
    fn views_of_valid_documents_satisfy_view_dtd() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
        let view_dtd = derive_view_dtd(&dtd, &ann, alpha.len());

        let mut gen = NodeIdGen::new();
        for term in [
            "r",
            "r(a, b, d)",
            "r(a, c, d(a, c), a, b, d(b, c, a, c))",
            "r(a, b, d(a, c), a, c, d(b, c))",
        ] {
            let t = parse_term(&mut alpha, &mut gen, term).unwrap();
            assert!(dtd.is_valid(&t), "source {term} must be valid");
            let v = extract_view(&ann, &t);
            assert!(
                view_dtd.is_valid(&v),
                "view of {term} must satisfy view DTD"
            );
        }
    }

    #[test]
    fn view_dtd_rejects_non_view_trees() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
        let view_dtd = derive_view_dtd(&dtd, &ann, alpha.len());
        let mut gen = NodeIdGen::new();
        // d before a is not a view of any valid document
        let bad = parse_term(&mut alpha, &mut gen, "r(d, a)").unwrap();
        assert!(!view_dtd.is_valid(&bad));
        // b must never appear in a view under r
        let bad2 = parse_term(&mut alpha, &mut gen, "r(a, b, d)").unwrap();
        assert!(!view_dtd.is_valid(&bad2));
    }

    #[test]
    fn all_visible_gives_equivalent_dtd() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> (a.b)*").unwrap();
        let view_dtd = derive_view_dtd(&dtd, &Annotation::all_visible(), alpha.len());
        let r = alpha.get("r").unwrap();
        let d1 = Dfa::determinize(dtd.content_model(r), alpha.len());
        let d2 = Dfa::determinize(view_dtd.content_model(r), alpha.len());
        assert!(d1.equivalent(&d2));
    }

    #[test]
    fn d3_example_view_dtd() {
        // Paper §6.2: D3: r → b·(c+ε)·(a·c)*, A3 hides b and a under r.
        // View DTD: r → c*.
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> b.(c+eps).(a.c)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide r b\nhide r a").unwrap();
        let view_dtd = derive_view_dtd(&dtd, &ann, alpha.len());
        let r = alpha.get("r").unwrap();
        let expect = glushkov(&parse_regex(&mut alpha, "c*").unwrap());
        let got = Dfa::determinize(view_dtd.content_model(r), alpha.len());
        assert!(got.equivalent(&Dfa::determinize(&expect, alpha.len())));
    }
}
