//! Visibility computation and view extraction.

use crate::annotation::Annotation;
use std::collections::HashSet;
use xvu_tree::{DocTree, NodeId, Tree};

/// Computes the set of visible nodes `⟦A⟧_t` of `t` (paper §2):
///
/// 1. the root is always visible;
/// 2. a node with a visible parent `p` is visible iff
///    `A(λ(p), λ(n)) = 1`;
/// 3. all other nodes are hidden.
///
/// Visibility is upward closed: descendants of hidden nodes are hidden.
pub fn visible_nodes(ann: &Annotation, t: &DocTree) -> HashSet<NodeId> {
    let mut visible = HashSet::new();
    let mut stack = vec![t.root()];
    visible.insert(t.root());
    while let Some(n) = stack.pop() {
        let parent_label = t.label(n);
        for &c in t.children(n) {
            if ann.is_visible(parent_label, t.label(c)) {
                visible.insert(c);
                stack.push(c);
            }
        }
    }
    visible
}

/// Extracts the view `A(t)`: the restriction of `t` to its visible nodes,
/// preserving identifiers, labels, and relative order.
pub fn extract_view(ann: &Annotation, t: &DocTree) -> DocTree {
    fn rec(ann: &Annotation, t: &DocTree, n: NodeId, out: &mut DocTree, out_parent: NodeId) {
        let parent_label = t.label(n);
        for &c in t.children(n) {
            if ann.is_visible(parent_label, t.label(c)) {
                out.add_child_with_id(out_parent, c, t.label(c))
                    .expect("view ids are a subset of source ids, hence unique");
                rec(ann, t, c, out, c);
            }
        }
    }
    let mut out = Tree::leaf_with_id(t.root(), t.label(t.root()));
    let root = t.root();
    rec(ann, t, root, &mut out, root);
    out
}

/// The number of nodes of `t` hidden by `ann` — `|t| − |A(t)|`.
pub fn hidden_count(ann: &Annotation, t: &DocTree) -> usize {
    t.size() - visible_nodes(ann, t).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::parse_annotation;
    use xvu_tree::{parse_term_with_ids, to_term_with_ids, Alphabet, NodeIdGen};

    /// Paper fixtures: t0 (Fig. 1) and A0 (Fig. 3).
    fn fixtures() -> (Alphabet, DocTree, Annotation) {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t0 = parse_term_with_ids(
            &mut alpha,
            &mut gen,
            "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
        )
        .unwrap();
        let a0 = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
        (alpha, t0, a0)
    }

    #[test]
    fn paper_fig3_visible_nodes() {
        let (_, t0, a0) = fixtures();
        let vis = visible_nodes(&a0, &t0);
        let expected: HashSet<NodeId> = [0u64, 1, 3, 4, 6, 8, 10].map(NodeId).into_iter().collect();
        assert_eq!(vis, expected);
    }

    #[test]
    fn paper_fig3_view_tree() {
        let (alpha, t0, a0) = fixtures();
        let view = extract_view(&a0, &t0);
        assert_eq!(
            to_term_with_ids(&view, &alpha),
            "r#0(a#1, d#3(c#8), a#4, d#6(c#10))"
        );
        view.validate().unwrap();
    }

    #[test]
    fn visibility_is_upward_closed() {
        let (_, t0, a0) = fixtures();
        let vis = visible_nodes(&a0, &t0);
        for &n in &vis {
            if let Some(p) = t0.parent(n) {
                assert!(vis.contains(&p), "visible node {n} has hidden parent");
            }
        }
    }

    #[test]
    fn hidden_subtrees_disappear_entirely() {
        // c visible under d, but the d occurrence under a hidden b must not
        // resurface: hide r b with t = r(b(d(c)))
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(b#1(d#2(c#3)))").unwrap();
        let ann = parse_annotation(&mut alpha, "hide r b").unwrap();
        let view = extract_view(&ann, &t);
        assert_eq!(view.size(), 1);
        assert_eq!(hidden_count(&ann, &t), 3);
    }

    #[test]
    fn all_visible_annotation_is_identity() {
        let (_, t0, _) = fixtures();
        let view = extract_view(&Annotation::all_visible(), &t0);
        assert_eq!(view, t0);
    }

    #[test]
    fn view_preserves_sibling_order() {
        let (_, t0, a0) = fixtures();
        let view = extract_view(&a0, &t0);
        let kids: Vec<u64> = view.children(view.root()).iter().map(|n| n.0).collect();
        assert_eq!(kids, vec![1, 3, 4, 6]);
    }

    #[test]
    fn view_of_view_is_view() {
        // Extracting with the same annotation twice is idempotent.
        let (_, t0, a0) = fixtures();
        let v1 = extract_view(&a0, &t0);
        let v2 = extract_view(&a0, &v1);
        assert_eq!(v1, v2);
    }
}
