//! Annotation-defined XML views (paper §2).
//!
//! A view is obtained by *hiding* selected parts of a source document: an
//! [`Annotation`] `A : Σ × Σ → {0,1}` decides, per (parent label, child
//! label) pair, whether a child of a visible parent is visible. The root is
//! always visible and visibility is upward closed, so hiding a node hides
//! its whole subtree. This view class performs no restructuring; its
//! flagship application is secure access to XML documents (security views).
//!
//! Provided operations:
//!
//! * [`visible_nodes`] / [`extract_view`] — compute `⟦A⟧_t` and `A(t)`,
//!   preserving node identifiers (the identifiers are what ties views back
//!   to their sources during update propagation);
//! * [`derive_view_dtd`] — a DTD for the view language `A(L(D))`, used to
//!   check that user updates produce legal views;
//! * [`parse_annotation`] — a small textual syntax for annotations.
//!
//! # Paper cross-reference
//!
//! | paper | here |
//! |-------|------|
//! | annotations `A : Σ × Σ → {0,1}` (§2, Fig. 3) | [`Annotation`], [`parse_annotation`] |
//! | visible nodes `⟦A⟧_t` | [`visible_nodes`] |
//! | the view `A(t)` (identifier-preserving) | [`extract_view`] |
//! | a DTD for the view language `A(L(D))` (§3) | [`derive_view_dtd`] |
//! | security-view motivation (§1) | exercised in `examples/security_view.rs` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annotation;
mod view;
mod viewdtd;

pub use annotation::{parse_annotation, Annotation, AnnotationParseError};
pub use view::{extract_view, hidden_count, visible_nodes};
pub use viewdtd::derive_view_dtd;
