//! Annotations `A : Σ × Σ → {0,1}`.

use std::collections::HashSet;
use std::fmt;
use xvu_tree::{Alphabet, Sym};

/// An annotation selecting which children are visible under which parents.
///
/// `A(x, y) = 1` means "a `y`-labeled child of a visible `x`-labeled parent
/// is visible"; `0` hides it (and, since visibility is upward closed, its
/// whole subtree). Following the paper's convention for examples, pairs are
/// **visible by default** and only the hidden pairs are stored.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Annotation {
    hidden: HashSet<(Sym, Sym)>,
}

impl Annotation {
    /// The all-visible annotation (the identity view).
    pub fn all_visible() -> Annotation {
        Annotation::default()
    }

    /// Sets `A(parent, child) = 0`.
    pub fn hide(&mut self, parent: Sym, child: Sym) -> &mut Self {
        self.hidden.insert((parent, child));
        self
    }

    /// Sets `A(parent, child) = 1` (the default).
    pub fn show(&mut self, parent: Sym, child: Sym) -> &mut Self {
        self.hidden.remove(&(parent, child));
        self
    }

    /// Evaluates `A(parent, child)`.
    #[inline]
    pub fn is_visible(&self, parent: Sym, child: Sym) -> bool {
        !self.hidden.contains(&(parent, child))
    }

    /// Number of hidden pairs (the annotation's description size).
    pub fn hidden_pairs(&self) -> usize {
        self.hidden.len()
    }

    /// Iterates over the hidden `(parent, child)` pairs.
    pub fn iter_hidden(&self) -> impl Iterator<Item = (Sym, Sym)> + '_ {
        self.hidden.iter().copied()
    }
}

/// Errors from [`parse_annotation`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnnotationParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for AnnotationParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "annotation parse error on line {}: {}",
            self.line, self.msg
        )
    }
}

impl std::error::Error for AnnotationParseError {}

/// Parses a textual annotation. One directive per line:
///
/// ```text
/// # comments and blank lines are ignored
/// hide r b
/// hide r c
/// show d c      # redundant (visible is the default) but allowed
/// ```
pub fn parse_annotation(
    alpha: &mut Alphabet,
    src: &str,
) -> Result<Annotation, AnnotationParseError> {
    let mut ann = Annotation::all_visible();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (verb, parent, child) = (parts.next(), parts.next(), parts.next());
        if parts.next().is_some() {
            return Err(AnnotationParseError {
                line: lineno + 1,
                msg: "expected 'hide|show parent child'".to_owned(),
            });
        }
        match (verb, parent, child) {
            (Some("hide"), Some(p), Some(c)) => {
                let (p, c) = (alpha.intern(p), alpha.intern(c));
                ann.hide(p, c);
            }
            (Some("show"), Some(p), Some(c)) => {
                let (p, c) = (alpha.intern(p), alpha.intern(c));
                ann.show(p, c);
            }
            _ => {
                return Err(AnnotationParseError {
                    line: lineno + 1,
                    msg: format!("cannot parse directive {line:?}"),
                })
            }
        }
    }
    Ok(ann)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_visible() {
        let mut alpha = Alphabet::new();
        let (r, a) = (alpha.intern("r"), alpha.intern("a"));
        let ann = Annotation::all_visible();
        assert!(ann.is_visible(r, a));
        assert_eq!(ann.hidden_pairs(), 0);
    }

    #[test]
    fn hide_and_show_round_trip() {
        let mut alpha = Alphabet::new();
        let (r, b) = (alpha.intern("r"), alpha.intern("b"));
        let mut ann = Annotation::all_visible();
        ann.hide(r, b);
        assert!(!ann.is_visible(r, b));
        ann.show(r, b);
        assert!(ann.is_visible(r, b));
    }

    #[test]
    fn parse_paper_a0() {
        // A0(r,b) = A0(r,c) = 0, A0(d,a) = A0(d,b) = 0, rest 1.
        let mut alpha = Alphabet::new();
        let ann = parse_annotation(
            &mut alpha,
            "# paper A0\n\
             hide r b\n\
             hide r c\n\
             hide d a\n\
             hide d b\n",
        )
        .unwrap();
        let g = |s: &str| alpha.get(s).unwrap();
        assert!(ann.is_visible(g("r"), g("a")));
        assert!(ann.is_visible(g("r"), g("d")));
        assert!(!ann.is_visible(g("r"), g("b")));
        assert!(!ann.is_visible(g("r"), g("c")));
        assert!(!ann.is_visible(g("d"), g("a")));
        assert!(!ann.is_visible(g("d"), g("b")));
        assert!(ann.is_visible(g("d"), g("c")));
        assert_eq!(ann.hidden_pairs(), 4);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let mut alpha = Alphabet::new();
        for bad in ["hide r", "frobnicate r b", "hide r b c", "hide"] {
            assert!(parse_annotation(&mut alpha, bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn inline_comments_are_stripped() {
        let mut alpha = Alphabet::new();
        let ann = parse_annotation(&mut alpha, "hide r b # secret\n").unwrap();
        assert_eq!(ann.hidden_pairs(), 1);
    }
}
