//! Zhang–Shasha tree edit distance for ordered labeled trees.
//!
//! The repair-based alternative the paper discusses (§6.2, citing [26])
//! needs "the tree closest to the original tree" — the classic ordered
//! tree edit distance with insert / delete / relabel operations. This is
//! the Zhang–Shasha `O(n² · m²)`-worst-case dynamic program over leftmost
//! leaves and keyroots, implemented from scratch.
//!
//! Identifiers are ignored: the distance compares labels and shape only,
//! which is exactly the information loss the paper criticises.

use xvu_tree::Tree;

/// Operation costs for the edit distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TedCosts {
    /// Cost of inserting a node.
    pub insert: usize,
    /// Cost of deleting a node.
    pub delete: usize,
    /// Cost of relabeling a node.
    pub relabel: usize,
}

impl Default for TedCosts {
    fn default() -> TedCosts {
        TedCosts {
            insert: 1,
            delete: 1,
            relabel: 1,
        }
    }
}

/// Computes the ordered tree edit distance between `t1` and `t2` with unit
/// costs.
pub fn tree_edit_distance<L: Eq + Copy>(t1: &Tree<L>, t2: &Tree<L>) -> usize {
    tree_edit_distance_with(t1, t2, TedCosts::default())
}

/// Computes the ordered tree edit distance with explicit costs.
pub fn tree_edit_distance_with<L: Eq + Copy>(t1: &Tree<L>, t2: &Tree<L>, costs: TedCosts) -> usize {
    let a = Indexed::new(t1);
    let b = Indexed::new(t2);
    let (n, m) = (a.len(), b.len());
    // treedist[i][j], 1-based over postorder indices
    let mut td = vec![vec![0usize; m + 1]; n + 1];

    for &i in &a.keyroots {
        for &j in &b.keyroots {
            forest_dist(&a, &b, i, j, &mut td, costs);
        }
    }
    td[n][m]
}

/// Postorder-indexed view of a tree (1-based indices, Zhang–Shasha
/// convention).
struct Indexed<L> {
    labels: Vec<L>,
    /// `lml[i]` = postorder index of the leftmost leaf of node `i`.
    lml: Vec<usize>,
    keyroots: Vec<usize>,
}

impl<L: Copy> Indexed<L> {
    fn new(t: &Tree<L>) -> Indexed<L> {
        let order: Vec<_> = t.postorder().collect();
        let index_of = |id: xvu_tree::NodeId| -> usize {
            order.iter().position(|&n| n == id).expect("node in order") + 1
        };
        let mut labels = Vec::with_capacity(order.len() + 1);
        let mut lml = vec![0usize; order.len() + 1];
        labels.push(t.label(t.root())); // dummy at 0, never read
        for (k, &id) in order.iter().enumerate() {
            labels.push(t.label(id));
            // leftmost leaf: descend first children
            let mut cur = id;
            while let Some(&first) = t.children(cur).first() {
                cur = first;
            }
            lml[k + 1] = index_of(cur);
        }
        // keyroots: i is a keyroot iff no j > i has lml[j] == lml[i]
        let mut keyroots = Vec::new();
        for i in 1..=order.len() {
            if !(i + 1..=order.len()).any(|j| lml[j] == lml[i]) {
                keyroots.push(i);
            }
        }
        Indexed {
            labels,
            lml,
            keyroots,
        }
    }

    fn len(&self) -> usize {
        self.labels.len() - 1
    }
}

fn forest_dist<L: Eq + Copy>(
    a: &Indexed<L>,
    b: &Indexed<L>,
    i: usize,
    j: usize,
    td: &mut [Vec<usize>],
    costs: TedCosts,
) {
    let (li, lj) = (a.lml[i], b.lml[j]);
    let (ni, nj) = (i - li + 2, j - lj + 2);
    // fd[x][y]: distance between forests a[li..li+x-1] and b[lj..lj+y-1]
    let mut fd = vec![vec![0usize; nj]; ni];
    for x in 1..ni {
        fd[x][0] = fd[x - 1][0] + costs.delete;
    }
    for y in 1..nj {
        fd[0][y] = fd[0][y - 1] + costs.insert;
    }
    for x in 1..ni {
        let i1 = li + x - 1;
        for y in 1..nj {
            let j1 = lj + y - 1;
            if a.lml[i1] == li && b.lml[j1] == lj {
                let rel = if a.labels[i1] == b.labels[j1] {
                    0
                } else {
                    costs.relabel
                };
                fd[x][y] = (fd[x - 1][y] + costs.delete)
                    .min(fd[x][y - 1] + costs.insert)
                    .min(fd[x - 1][y - 1] + rel);
                td[i1][j1] = fd[x][y];
            } else {
                let fx = a.lml[i1] - li;
                let fy = b.lml[j1] - lj;
                fd[x][y] = (fd[x - 1][y] + costs.delete)
                    .min(fd[x][y - 1] + costs.insert)
                    .min(fd[fx][fy] + td[i1][j1]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvu_tree::{parse_term, Alphabet, DocTree, NodeIdGen};

    fn t(alpha: &mut Alphabet, s: &str) -> DocTree {
        let mut gen = NodeIdGen::new();
        parse_term(alpha, &mut gen, s).unwrap()
    }

    #[test]
    fn identical_trees_have_distance_zero() {
        let mut alpha = Alphabet::new();
        let a = t(&mut alpha, "r(a, b(c), d)");
        let b = t(&mut alpha, "r(a, b(c), d)");
        assert_eq!(tree_edit_distance(&a, &b), 0);
    }

    #[test]
    fn single_operations() {
        let mut alpha = Alphabet::new();
        let base = t(&mut alpha, "r(a, b)");
        assert_eq!(tree_edit_distance(&base, &t(&mut alpha, "r(a, b, c)")), 1);
        assert_eq!(tree_edit_distance(&base, &t(&mut alpha, "r(a)")), 1);
        assert_eq!(tree_edit_distance(&base, &t(&mut alpha, "r(a, c)")), 1);
        assert_eq!(tree_edit_distance(&base, &t(&mut alpha, "x(a, b)")), 1);
    }

    #[test]
    fn paper_d3_distances() {
        // t = r(b, a, c); candidates t1 = r(b, c, a, c), t2 = r(b, a, c, a, c)
        let mut alpha = Alphabet::new();
        let orig = t(&mut alpha, "r(b, a, c)");
        let t1 = t(&mut alpha, "r(b, c, a, c)");
        let t2 = t(&mut alpha, "r(b, a, c, a, c)");
        assert_eq!(tree_edit_distance(&orig, &t1), 1);
        assert_eq!(tree_edit_distance(&orig, &t2), 2);
    }

    #[test]
    fn nested_restructure() {
        let mut alpha = Alphabet::new();
        // classic zhang-shasha example shape
        let a = t(&mut alpha, "f(d(a, c(b)), e)");
        let b = t(&mut alpha, "f(c(d(a, b)), e)");
        assert_eq!(tree_edit_distance(&a, &b), 2);
    }

    #[test]
    fn deep_chain_vs_leaf() {
        let mut alpha = Alphabet::new();
        let a = t(&mut alpha, "a(a(a(a(a))))");
        let b = t(&mut alpha, "a");
        assert_eq!(tree_edit_distance(&a, &b), 4);
    }

    #[test]
    fn symmetry_with_unit_costs() {
        let mut alpha = Alphabet::new();
        let pairs = [
            ("r(a, b(c), d)", "r(b(c, a), d)"),
            ("r", "r(a, b, c)"),
            ("f(d(a, c(b)), e)", "f(c(d(a, b)), e)"),
        ];
        for (x, y) in pairs {
            let a = t(&mut alpha, x);
            let b = t(&mut alpha, y);
            assert_eq!(
                tree_edit_distance(&a, &b),
                tree_edit_distance(&b, &a),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn agrees_with_bruteforce_on_small_trees() {
        // Exhaustive cross-check against a naive recursive forest distance.
        use std::collections::HashMap;

        type Forest = Vec<BTree>;
        #[derive(Clone, PartialEq, Eq, Hash, Debug)]
        struct BTree {
            label: u32,
            children: Vec<BTree>,
        }

        fn to_btree(t: &DocTree, n: xvu_tree::NodeId) -> BTree {
            BTree {
                label: t.label(n).index() as u32,
                children: t.children(n).iter().map(|&c| to_btree(t, c)).collect(),
            }
        }
        fn size(f: &[BTree]) -> usize {
            f.iter().map(|t| 1 + size(&t.children)).sum()
        }
        fn fdist(f1: &[BTree], f2: &[BTree], memo: &mut HashMap<(Forest, Forest), usize>) -> usize {
            if f1.is_empty() {
                return size(f2);
            }
            if f2.is_empty() {
                return size(f1);
            }
            let key = (f1.to_vec(), f2.to_vec());
            if let Some(&d) = memo.get(&key) {
                return d;
            }
            // rightmost trees
            let (r1, rest1) = f1.split_last().unwrap();
            let (r2, rest2) = f2.split_last().unwrap();
            // delete root of r1
            let mut del_f = rest1.to_vec();
            del_f.extend(r1.children.iter().cloned());
            let d_del = fdist(&del_f, f2, memo) + 1;
            // insert root of r2
            let mut ins_f = rest2.to_vec();
            ins_f.extend(r2.children.iter().cloned());
            let d_ins = fdist(f1, &ins_f, memo) + 1;
            // match roots
            let rel = usize::from(r1.label != r2.label);
            let d_match = fdist(rest1, rest2, memo) + fdist(&r1.children, &r2.children, memo) + rel;
            let d = d_del.min(d_ins).min(d_match);
            memo.insert(key, d);
            d
        }

        let mut alpha = Alphabet::new();
        let shapes = [
            "r",
            "r(a)",
            "r(a, b)",
            "r(b, a)",
            "r(a(b), c)",
            "r(c, a(b))",
            "r(a(b, c))",
            "r(a, a, a)",
            "a(r)",
            "r(b(a), b(a))",
        ];
        let trees: Vec<DocTree> = shapes.iter().map(|s| t(&mut alpha, s)).collect();
        for x in &trees {
            for y in &trees {
                let fast = tree_edit_distance(x, y);
                let mut memo = HashMap::new();
                let slow = fdist(
                    &[to_btree(x, x.root())],
                    &[to_btree(y, y.root())],
                    &mut memo,
                );
                assert_eq!(fast, slow, "mismatch");
            }
        }
    }

    #[test]
    fn custom_costs() {
        let mut alpha = Alphabet::new();
        let a = t(&mut alpha, "r(a)");
        let b = t(&mut alpha, "r(b)");
        // relabel twice as expensive as delete+insert ⇒ distance 2
        let costs = TedCosts {
            insert: 1,
            delete: 1,
            relabel: 3,
        };
        assert_eq!(tree_edit_distance_with(&a, &b, costs), 2);
    }
}
