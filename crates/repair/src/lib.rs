//! The repair-based baseline for view updates (paper §6.2).
//!
//! The paper contrasts its propagation graphs with an obvious alternative
//! built on XML repairing: close the inverses of the updated view under
//! isomorphism and pick the tree-edit-distance-closest one to the old
//! source. This crate implements that baseline from scratch —
//! [`tree_edit_distance`] is a full Zhang–Shasha implementation — so the
//! paper's inadequacy argument (the `D3` example, experiment E10) can be
//! reproduced executable-y rather than rhetorically.
//!
//! # Paper cross-reference
//!
//! | paper | here |
//! |-------|------|
//! | tree edit distance (Zhang–Shasha) | [`tree_edit_distance`], [`tree_edit_distance_with`] |
//! | repair-based view updating (§6.2) | [`repair_based_update`], [`RepairConfig`] |
//! | the `D3` counterexample preferring the unfaithful repair | `examples/repair_pitfall.rs` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod ted;

pub use baseline::{repair_based_update, RepairConfig, RepairOutcome};
pub use ted::{tree_edit_distance, tree_edit_distance_with, TedCosts};
