//! The repair-based baseline (paper §6.2) — and why it is inadequate.
//!
//! The alternative approach the paper refutes: take the updated view
//! `t' = Out(S)`, close the inverse set under isomorphism (dropping node
//! identifiers), and *repair* the old source `t` to the nearest member —
//! nearest by ordered tree edit distance. The information lost by dropping
//! identifiers is positional: the example `D3: r → b·(c+ε)·(a·c)*` with
//! `a, b` hidden shows the repair picks `r(b, c, a, c)` (distance 1)
//! although the user appended the new `c` *after* the existing one, so
//! `r(b, a, c, a, c)` is the faithful source — which is exactly what the
//! propagation-graph solution produces.

use crate::ted::tree_edit_distance;
use xvu_dtd::{min_sizes, Dtd, InsertletPackage};
use xvu_edit::{output_tree, Script};
use xvu_propagate::{CostModel, InversionForest, PropagateError};
use xvu_tree::{DocTree, NodeIdGen};
use xvu_view::Annotation;

/// The outcome of a repair-based update.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The chosen new source document (identifiers are fresh/meaningless —
    /// this approach cannot preserve them, which is its flaw).
    pub chosen: DocTree,
    /// Tree edit distance from the old source to the chosen document.
    pub distance: usize,
    /// How many inverse candidates were scored.
    pub candidates_considered: usize,
}

/// Knobs for [`repair_based_update`].
#[derive(Clone, Debug)]
pub struct RepairConfig {
    /// Maximum number of inverse candidates to enumerate per view node.
    pub candidate_cap: usize,
    /// Maximum inversion-path length per view node (bounds padding).
    pub max_path_len: usize,
    /// Witness materialisation budget.
    pub witness_budget: u64,
}

impl Default for RepairConfig {
    fn default() -> RepairConfig {
        RepairConfig {
            candidate_cap: 200,
            max_path_len: 24,
            witness_budget: 10_000,
        }
    }
}

/// Runs the repair-based view update: enumerate (bounded) inverses of the
/// updated view, return the candidate closest to `source` by tree edit
/// distance.
pub fn repair_based_update(
    dtd: &Dtd,
    ann: &Annotation,
    alphabet_len: usize,
    source: &DocTree,
    update: &Script,
    cfg: &RepairConfig,
) -> Result<RepairOutcome, PropagateError> {
    let updated_view = output_tree(update).ok_or_else(|| {
        PropagateError::InvalidInstance("update deletes the view root".to_owned())
    })?;
    let sizes = min_sizes(dtd, alphabet_len);
    let insertlets = InsertletPackage::new();
    let cost = CostModel {
        sizes: &sizes,
        insertlets: &insertlets,
    };
    let forest = InversionForest::build(dtd, ann, &updated_view, &cost)?;
    let mut gen = NodeIdGen::starting_at(1_000_000_000);
    let candidates = forest.enumerate_inverses(
        dtd,
        &cost,
        &mut gen,
        cfg.witness_budget,
        cfg.candidate_cap,
        cfg.max_path_len,
    )?;
    let scored = candidates
        .into_iter()
        .map(|c| {
            let d = tree_edit_distance(source, &c);
            (d, c)
        })
        .collect::<Vec<_>>();
    let candidates_considered = scored.len();
    let (distance, chosen) = scored
        .into_iter()
        .min_by_key(|(d, c)| (*d, c.size()))
        .ok_or(PropagateError::InversionImpossible(updated_view.root()))?;
    Ok(RepairOutcome {
        chosen,
        distance,
        candidates_considered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvu_propagate::{propagate, Config, Instance};
    use xvu_tree::{parse_term, to_term, Alphabet, NodeIdGen};
    use xvu_workload::paper::d3_repair_pitfall;

    #[test]
    fn d3_repair_picks_the_wrong_source() {
        // The paper's §6.2 argument, end to end.
        let (fx, t, s, _gen) = d3_repair_pitfall();
        let out = repair_based_update(
            &fx.dtd,
            &fx.ann,
            fx.alpha.len(),
            &t,
            &s,
            &RepairConfig::default(),
        )
        .unwrap();
        // Repair chooses the TED-closest inverse r(b, c, a, c)…
        assert_eq!(to_term(&out.chosen, &fx.alpha), "r(b, c, a, c)");
        assert_eq!(out.distance, 1);
        assert!(out.candidates_considered >= 2);

        // …whereas the propagation-graph solution yields r(b, a, c, a, c),
        // keeping the existing hidden (a) group before the old c.
        let inst = Instance::new(&fx.dtd, &fx.ann, &t, &s, fx.alpha.len()).unwrap();
        let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
        let new_source = xvu_edit::output_tree(&prop.script).unwrap();
        assert_eq!(to_term(&new_source, &fx.alpha), "r(b, a, c, a, c)");
        // and the propagation preserves the identifier of the untouched c.
        assert!(new_source.contains(xvu_tree::NodeId(3)));
        // the repair's choice and the propagation's choice are different
        // trees even up to isomorphism — the baseline is wrong, not just
        // differently-labeled.
        assert!(!out.chosen.isomorphic(&new_source));
    }

    #[test]
    fn repair_is_exact_when_no_positional_ambiguity_exists() {
        // With nothing hidden, the inverse is unique and repair agrees
        // with propagation up to isomorphism.
        let mut alpha = Alphabet::new();
        let dtd = xvu_dtd::parse_dtd(&mut alpha, "r -> a*").unwrap();
        let ann = xvu_view::Annotation::all_visible();
        let mut gen = NodeIdGen::new();
        let t = parse_term(&mut alpha, &mut gen, "r(a, a)").unwrap();
        // append an a in the (identity) view
        let view = xvu_view::extract_view(&ann, &t);
        let mut b = xvu_edit::UpdateBuilder::new(&view);
        let new_a = parse_term(&mut alpha, &mut gen, "a").unwrap();
        b.insert(view.root(), 2, new_a).unwrap();
        let s = b.finish();
        let out =
            repair_based_update(&dtd, &ann, alpha.len(), &t, &s, &RepairConfig::default()).unwrap();
        assert_eq!(to_term(&out.chosen, &alpha), "r(a, a, a)");
        assert_eq!(out.distance, 1);
    }
}
