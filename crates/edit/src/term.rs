//! Term syntax for editing scripts.
//!
//! Scripts are written as terms whose heads carry the operation:
//!
//! ```text
//! nop:r#0(del:a#1, ins:d#11(ins:c#13))
//! ```
//!
//! The `#id` part is optional (fresh identifiers are allocated), but paper
//! fixtures always pin identifiers. The printer emits the same syntax.

use crate::error::EditError;
use crate::op::{ELabel, EditOp};
use crate::script::Script;
use xvu_tree::{Alphabet, NodeId, NodeIdGen, Tree};

/// Parses the script term syntax, interning labels into `alpha`.
/// Identifiers not given explicitly are allocated from an internal
/// generator starting beyond the largest explicit identifier — for
/// reproducible fixtures, pin all identifiers.
pub fn parse_script(alpha: &mut Alphabet, input: &str) -> Result<Script, EditError> {
    let mut gen = NodeIdGen::starting_at(1_000_000);
    parse_script_with_gen(alpha, &mut gen, input)
}

/// Like [`parse_script`] but drawing fresh identifiers from `gen`.
pub fn parse_script_with_gen(
    alpha: &mut Alphabet,
    gen: &mut NodeIdGen,
    input: &str,
) -> Result<Script, EditError> {
    let mut p = Parser {
        alpha,
        bytes: input.as_bytes(),
        pos: 0,
    };
    let t = p.term(gen)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after script"));
    }
    Ok(t)
}

/// Renders a script in the term syntax with identifiers.
pub fn script_to_term(s: &Script, alpha: &Alphabet) -> String {
    let mut out = String::new();
    write_node(s, alpha, s.root(), &mut out);
    out
}

fn write_node(s: &Script, alpha: &Alphabet, n: NodeId, out: &mut String) {
    let l = s.label(n);
    out.push_str(l.op.name());
    out.push(':');
    out.push_str(alpha.name(l.label));
    out.push('#');
    out.push_str(&n.0.to_string());
    let children = s.children(n);
    if !children.is_empty() {
        out.push('(');
        for (i, &c) in children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_node(s, alpha, c, out);
        }
        out.push(')');
    }
}

struct Parser<'a> {
    alpha: &'a mut Alphabet,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn term(&mut self, gen: &mut NodeIdGen) -> Result<Script, EditError> {
        self.skip_ws();
        let op_name = self.ident()?;
        let op = match op_name.as_str() {
            "ins" => EditOp::Ins,
            "del" => EditOp::Del,
            "nop" => EditOp::Nop,
            other => return Err(self.err(&format!("unknown operation {other:?}"))),
        };
        if self.peek() != Some(b':') {
            return Err(self.err("expected ':' after operation"));
        }
        self.pos += 1;
        let label_name = self.ident()?;
        let label = self.alpha.intern(&label_name);
        let id = if self.peek() == Some(b'#') {
            self.pos += 1;
            let start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if start == self.pos {
                return Err(self.err("expected digits after '#'"));
            }
            let raw: u64 = std::str::from_utf8(&self.bytes[start..self.pos])
                .expect("ascii")
                .parse()
                .map_err(|_| self.err("identifier out of range"))?;
            let id = NodeId(raw);
            gen.bump_past(id);
            id
        } else {
            gen.fresh()
        };
        let mut tree = Tree::leaf_with_id(id, ELabel { op, label });
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            loop {
                let child = self.term(gen)?;
                let pos = tree.children(tree.root()).len();
                tree.attach_subtree(tree.root(), pos, child)?;
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or ')'")),
                }
            }
        }
        Ok(tree)
    }

    fn ident(&mut self) -> Result<String, EditError> {
        self.skip_ws();
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => self.pos += 1,
            _ => return Err(self.err("expected an identifier")),
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii")
            .to_owned())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> EditError {
        EditError::Parse {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_round_trip() {
        let mut alpha = Alphabet::new();
        let src = "nop:r#0(del:a#1, ins:d#11(ins:c#13, ins:c#14), nop:d#6(nop:c#10))";
        let s = parse_script(&mut alpha, src).unwrap();
        assert_eq!(script_to_term(&s, &alpha), src);
    }

    #[test]
    fn ops_are_parsed() {
        let mut alpha = Alphabet::new();
        let s = parse_script(&mut alpha, "nop:r#0(ins:a#1, del:b#2)").unwrap();
        assert_eq!(s.label(NodeId(0)).op, EditOp::Nop);
        assert_eq!(s.label(NodeId(1)).op, EditOp::Ins);
        assert_eq!(s.label(NodeId(2)).op, EditOp::Del);
    }

    #[test]
    fn missing_ids_get_fresh_ones() {
        let mut alpha = Alphabet::new();
        let s = parse_script(&mut alpha, "nop:r(ins:a, del:b#5)").unwrap();
        assert!(s.contains(NodeId(5)));
        assert_eq!(s.size(), 3);
    }

    #[test]
    fn parse_errors() {
        let mut alpha = Alphabet::new();
        for bad in [
            "",
            "zap:r#0",
            "nop r#0",
            "nop:r#0(",
            "nop:r#0(ins:a#1",
            "nop:r#0(ins:a#1,)",
            "nop:#0",
        ] {
            assert!(parse_script(&mut alpha, bad).is_err(), "{bad:?}");
        }
    }
}
