//! Deriving an editing script from before/after trees.
//!
//! Because node identifiers are persistent, two trees related by
//! subtree-insert/delete operations can be *diffed* exactly: shared
//! identifiers are `Nop`, identifiers only in the old tree are `Del`,
//! identifiers only in the new tree are `Ins`. This gives applications a
//! third way to produce updates (besides raw scripts and the positional
//! [`crate::UpdateBuilder`]): copy the view, mutate the copy with plain
//! tree operations, and call [`diff`].
//!
//! The edit model has no moves or relabels, so a shared identifier must
//! keep its label and its parent; violations are reported as typed errors
//! rather than guessed around.

use crate::error::EditError;
use crate::op::ELabel;
use crate::script::Script;
use xvu_tree::{DocTree, NodeId, Tree};

/// Computes the editing script transforming `old` into `new`, matching
/// nodes by identifier. `apply(&diff(old, new)?, old) == new` always holds
/// for the returned script.
///
/// Errors:
/// * the roots differ (identifier or label) — scripts cannot replace the
///   root;
/// * a shared identifier changed label (relabeling is outside the paper's
///   update model);
/// * a shared identifier changed parent or its siblings were reordered
///   (moves are outside the model);
pub fn diff(old: &DocTree, new: &DocTree) -> Result<Script, EditError> {
    if old.root() != new.root() || old.label(old.root()) != new.label(new.root()) {
        return Err(EditError::NotAnUpdateOf(
            "trees have different roots".to_owned(),
        ));
    }
    let root = old.root();
    let mut script: Script = Tree::leaf_with_id(root, ELabel::nop(old.label(root)));
    merge(old, new, root, &mut script)?;
    Ok(script)
}

fn merge(old: &DocTree, new: &DocTree, n: NodeId, script: &mut Script) -> Result<(), EditError> {
    let c_old = old.children(n);
    let c_new = new.children(n);
    let in_old = |id: NodeId| old.contains(id);
    let in_new = |id: NodeId| new.contains(id);

    // Common children must keep their relative order (no moves).
    let common_old: Vec<NodeId> = c_old.iter().copied().filter(|&c| in_new(c)).collect();
    let common_new: Vec<NodeId> = c_new.iter().copied().filter(|&c| in_old(c)).collect();
    if common_old != common_new {
        return Err(EditError::NotAnUpdateOf(format!(
            "children of {n} were moved or reordered: {common_old:?} vs {common_new:?}"
        )));
    }
    // A "common child" per the above is common *as an identifier in the
    // other tree*; it must actually be a child of n there too, otherwise
    // it moved across parents.
    for &c in &common_old {
        if new.parent(c) != Some(n) || old.parent(c) != Some(n) {
            return Err(EditError::NotAnUpdateOf(format!(
                "node {c} changed parent (moves are not expressible)"
            )));
        }
        if old.label(c) != new.label(c) {
            return Err(EditError::NotAnUpdateOf(format!(
                "node {c} changed label (relabeling is not expressible)"
            )));
        }
    }

    let mut i_old = 0usize;
    for &m in c_new {
        if in_old(m) {
            // flush old-only children before m
            while i_old < c_old.len() && c_old[i_old] != m {
                attach_deleted(old, new, c_old[i_old], n, script)?;
                i_old += 1;
            }
            debug_assert!(i_old < c_old.len());
            i_old += 1;
            script.add_child_with_id(n, m, ELabel::nop(old.label(m)))?;
            merge(old, new, m, script)?;
        } else {
            attach_inserted(old, new, m, n, script)?;
        }
    }
    while i_old < c_old.len() {
        attach_deleted(old, new, c_old[i_old], n, script)?;
        i_old += 1;
    }
    Ok(())
}

/// Attaches the old subtree at `m` as all-`Del`, verifying none of its
/// descendants resurfaces in `new` (which would be a move).
fn attach_deleted(
    old: &DocTree,
    new: &DocTree,
    m: NodeId,
    parent: NodeId,
    script: &mut Script,
) -> Result<(), EditError> {
    if new.contains(m) {
        return Err(EditError::NotAnUpdateOf(format!(
            "node {m} moved into a deleted region"
        )));
    }
    script.add_child_with_id(parent, m, ELabel::del(old.label(m)))?;
    for &c in old.children(m) {
        attach_deleted(old, new, c, m, script)?;
    }
    Ok(())
}

/// Attaches the new subtree at `m` as all-`Ins`, verifying none of its
/// descendants came from `old`.
fn attach_inserted(
    old: &DocTree,
    new: &DocTree,
    m: NodeId,
    parent: NodeId,
    script: &mut Script,
) -> Result<(), EditError> {
    if old.contains(m) {
        return Err(EditError::NotAnUpdateOf(format!(
            "node {m} moved into an inserted region"
        )));
    }
    script.add_child_with_id(parent, m, ELabel::ins(new.label(m)))?;
    for &c in new.children(m) {
        attach_inserted(old, new, c, m, script)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{apply, cost, input_tree, output_tree};
    use crate::term::parse_script;
    use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};

    fn t(alpha: &mut Alphabet, s: &str) -> DocTree {
        let mut gen = NodeIdGen::new();
        parse_term_with_ids(alpha, &mut gen, s).unwrap()
    }

    #[test]
    fn diff_reconstructs_the_paper_update() {
        let mut alpha = Alphabet::new();
        let old = t(&mut alpha, "r#0(a#1, d#3(c#8), a#4, d#6(c#10))");
        let new = t(
            &mut alpha,
            "r#0(a#4, d#11(c#13, c#14), a#12, d#6(c#10, c#15))",
        );
        let s = diff(&old, &new).unwrap();
        assert_eq!(input_tree(&s).unwrap(), old);
        assert_eq!(output_tree(&s).unwrap(), new);
        assert_eq!(apply(&s, &old).unwrap(), new);
        // exactly the paper's S0
        let expected = parse_script(
            &mut alpha,
            "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
             ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
        )
        .unwrap();
        assert_eq!(s, expected);
        assert_eq!(cost(&s), 8);
    }

    #[test]
    fn identical_trees_diff_to_identity() {
        let mut alpha = Alphabet::new();
        let a = t(&mut alpha, "r#0(a#1, b#2(c#3))");
        let s = diff(&a, &a).unwrap();
        assert_eq!(cost(&s), 0);
        assert_eq!(apply(&s, &a).unwrap(), a);
    }

    #[test]
    fn different_roots_are_rejected() {
        let mut alpha = Alphabet::new();
        let a = t(&mut alpha, "r#0(a#1)");
        let b = t(&mut alpha, "r#9(a#1)");
        assert!(diff(&a, &b).is_err());
        let c = t(&mut alpha, "x#0(a#1)");
        assert!(diff(&a, &c).is_err());
    }

    #[test]
    fn relabel_is_rejected() {
        let mut alpha = Alphabet::new();
        let a = t(&mut alpha, "r#0(a#1)");
        let b = t(&mut alpha, "r#0(b#1)");
        let err = diff(&a, &b).unwrap_err();
        assert!(matches!(err, EditError::NotAnUpdateOf(m) if m.contains("label")));
    }

    #[test]
    fn reorder_is_rejected() {
        let mut alpha = Alphabet::new();
        let a = t(&mut alpha, "r#0(a#1, b#2)");
        let b = t(&mut alpha, "r#0(b#2, a#1)");
        let err = diff(&a, &b).unwrap_err();
        assert!(matches!(err, EditError::NotAnUpdateOf(m) if m.contains("reordered")));
    }

    #[test]
    fn cross_parent_move_is_rejected() {
        let mut alpha = Alphabet::new();
        let a = t(&mut alpha, "r#0(a#1(c#5), b#2)");
        let b = t(&mut alpha, "r#0(a#1, b#2(c#5))");
        assert!(diff(&a, &b).is_err());
    }

    #[test]
    fn move_into_inserted_region_is_rejected() {
        let mut alpha = Alphabet::new();
        let a = t(&mut alpha, "r#0(c#5)");
        let b = t(&mut alpha, "r#0(d#9(c#5))");
        assert!(diff(&a, &b).is_err());
    }

    #[test]
    fn mixed_edits_round_trip() {
        let mut alpha = Alphabet::new();
        let old = t(&mut alpha, "r#0(a#1(x#7, y#8), b#2, c#3)");
        let new = t(&mut alpha, "r#0(a#1(y#8, z#20), n#21(m#22), c#3)");
        let s = diff(&old, &new).unwrap();
        crate::script::validate_script(&s).unwrap();
        assert_eq!(apply(&s, &old).unwrap(), new);
        // del x7, ins z20, del b2, ins n21, ins m22 = 5
        assert_eq!(cost(&s), 5);
    }
}
