//! The edit alphabet `E(Σ) = {Ins(a), Nop(a), Del(a) | a ∈ Σ}`.

use std::fmt;
use xvu_tree::Sym;

/// The three editing operations of the paper.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum EditOp {
    /// Insertion of a node (all descendants must insert too).
    Ins,
    /// Deletion of a node (all descendants must delete too).
    Del,
    /// The phantom operation — the node is untouched.
    Nop,
}

impl EditOp {
    /// Short lowercase name used by the script term syntax.
    pub fn name(self) -> &'static str {
        match self {
            EditOp::Ins => "ins",
            EditOp::Del => "del",
            EditOp::Nop => "nop",
        }
    }
}

impl fmt::Display for EditOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A letter of the edit alphabet: an operation applied to a `Σ`-label.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ELabel {
    /// The operation.
    pub op: EditOp,
    /// The underlying document label.
    pub label: Sym,
}

impl ELabel {
    /// `Ins(label)`.
    pub fn ins(label: Sym) -> ELabel {
        ELabel {
            op: EditOp::Ins,
            label,
        }
    }

    /// `Del(label)`.
    pub fn del(label: Sym) -> ELabel {
        ELabel {
            op: EditOp::Del,
            label,
        }
    }

    /// `Nop(label)`.
    pub fn nop(label: Sym) -> ELabel {
        ELabel {
            op: EditOp::Nop,
            label,
        }
    }

    /// Whether this letter survives into the output tree.
    #[inline]
    pub fn in_output(self) -> bool {
        self.op != EditOp::Del
    }

    /// Whether this letter comes from the input tree.
    #[inline]
    pub fn in_input(self) -> bool {
        self.op != EditOp::Ins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections() {
        let s = Sym::from_index(0);
        assert!(ELabel::ins(s).in_output());
        assert!(!ELabel::ins(s).in_input());
        assert!(!ELabel::del(s).in_output());
        assert!(ELabel::del(s).in_input());
        assert!(ELabel::nop(s).in_output());
        assert!(ELabel::nop(s).in_input());
    }

    #[test]
    fn display_names() {
        assert_eq!(EditOp::Ins.to_string(), "ins");
        assert_eq!(EditOp::Del.to_string(), "del");
        assert_eq!(EditOp::Nop.to_string(), "nop");
    }
}
