//! Errors for editing-script construction and application.

use std::fmt;
use xvu_tree::{NodeId, TreeError};

/// Errors raised by this crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// A descendant of an `Ins` node is not `Ins`.
    InsClosureViolated(NodeId),
    /// A descendant of a `Del` node is not `Del`.
    DelClosureViolated(NodeId),
    /// The script's input tree would be empty (root is `Ins`) where a
    /// non-empty input is required.
    EmptyInput,
    /// The script's output tree would be empty (root is `Del`) where a
    /// non-empty output is required.
    EmptyOutput,
    /// `apply` was given a tree different from the script's input tree.
    InputMismatch,
    /// An operation referred to a node not present in the script.
    UnknownNode(NodeId),
    /// The root of a view cannot be deleted (views are non-empty).
    CannotDeleteRoot,
    /// An insertion targeted a `Del`-marked node.
    InsertUnderDeleted(NodeId),
    /// A view update used a node identifier that exists in the source but
    /// is hidden by the view (forbidden by the paper's well-formedness
    /// requirement `N_S ∩ (N_t \ N_{A(t)}) = ∅`).
    HiddenIdUsed(NodeId),
    /// The script is not an update of the given view (`In(S) ≠ A(t)`).
    NotAnUpdateOf(String),
    /// Parse error in script term syntax.
    Parse {
        /// Byte offset of the error in the input.
        at: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Underlying tree-structure error.
    Tree(TreeError),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::InsClosureViolated(n) => {
                write!(f, "node {n}: descendants of an inserting node must insert")
            }
            EditError::DelClosureViolated(n) => {
                write!(f, "node {n}: descendants of a deleting node must delete")
            }
            EditError::EmptyInput => write!(f, "script has an empty input tree"),
            EditError::EmptyOutput => write!(f, "script has an empty output tree"),
            EditError::InputMismatch => {
                write!(f, "script applied to a tree different from its input tree")
            }
            EditError::UnknownNode(n) => write!(f, "unknown script node {n}"),
            EditError::CannotDeleteRoot => write!(f, "the view root cannot be deleted"),
            EditError::InsertUnderDeleted(n) => {
                write!(f, "cannot insert under deleted node {n}")
            }
            EditError::HiddenIdUsed(n) => write!(
                f,
                "update uses identifier {n} which is hidden in the source document"
            ),
            EditError::NotAnUpdateOf(msg) => write!(f, "not an update of the given view: {msg}"),
            EditError::Parse { at, msg } => write!(f, "script parse error at byte {at}: {msg}"),
            EditError::Tree(e) => write!(f, "tree error: {e}"),
        }
    }
}

impl std::error::Error for EditError {}

impl From<TreeError> for EditError {
    fn from(e: TreeError) -> EditError {
        EditError::Tree(e)
    }
}
