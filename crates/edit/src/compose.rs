//! Sequential composition of editing scripts.
//!
//! When an editing session produces `S1` (on `t`) followed by `S2` (on
//! `Out(S1)`), the composition `S2 ∘ S1` is a single script with
//! `In = In(S1)` and `Out = Out(S2)` whose per-node operations combine
//! pointwise:
//!
//! | in `S1` | in `S2` | composed |
//! |---------|---------|----------|
//! | `Nop`   | `Nop`   | `Nop` |
//! | `Nop`   | `Del`   | `Del` |
//! | `Del`   | —       | `Del` |
//! | `Ins`   | `Nop`   | `Ins` |
//! | `Ins`   | `Del`   | *dropped* (inserted then deleted — never existed) |
//! | —       | `Ins`   | `Ins` |
//!
//! Whole-subtree discipline is preserved automatically: descendants of a
//! dropped node are dropped, and the table is closed under the paper's
//! Ins/Del closure rules. Child order interleaves the `S1` order (for
//! nodes that exist in `Out(S1)`, which both scripts agree on) with `S2`'s
//! placement of its insertions.

use crate::error::EditError;
use crate::op::{ELabel, EditOp};
use crate::script::{output_tree, validate_script, Script};
use xvu_tree::{NodeId, Tree};

/// Composes two scripts: `s2` must be an update of `Out(s1)`.
///
/// Returns the composed script with `In = In(s1)`, `Out = Out(s2)`, and
/// cost at most `cost(s1) + cost(s2)` (cancellations only reduce it).
pub fn compose(s1: &Script, s2: &Script) -> Result<Script, EditError> {
    validate_script(s1)?;
    validate_script(s2)?;
    let mid = output_tree(s1).ok_or(EditError::EmptyOutput)?;
    let in2 = crate::script::input_tree(s2).ok_or(EditError::EmptyInput)?;
    if mid != in2 {
        return Err(EditError::NotAnUpdateOf(
            "In(S2) differs from Out(S1)".to_owned(),
        ));
    }

    let root = s1.root();
    debug_assert_eq!(root, s2.root(), "roots agree since Out(S1) = In(S2)");
    let root_label = s1.label(root).label;
    let mut out: Script = Tree::leaf_with_id(root, ELabel::nop(root_label));
    build(s1, s2, root, root, &mut out)?;
    Ok(out)
}

/// Fills in the composed children of node `n` (present in both scripts).
fn build(
    s1: &Script,
    s2: &Script,
    n: NodeId,
    out_parent: NodeId,
    out: &mut Script,
) -> Result<(), EditError> {
    // Children of n in S1 (all input-order material incl. deletions) and
    // in S2 (output-order material incl. its insertions). Nodes present
    // in both are exactly the children of n in Out(S1) = In(S2).
    let c1 = s1.children(n);
    let c2 = s2.children(n);
    let in_s1_out = |id: NodeId| s1.contains(id) && s1.label(id).op != EditOp::Del;

    // Merge: walk S2's order; before each S2-common node, flush the
    // S1-only (deleted-in-S1) nodes that precede it in S1's order.
    let mut i1 = 0usize;
    for &m2 in c2 {
        if in_s1_out(m2) {
            // flush S1 nodes strictly before m2
            while i1 < c1.len() && c1[i1] != m2 {
                let m1 = c1[i1];
                // m1 either was deleted by S1, or was Ins in S1 and
                // appears later in S2's order — the latter cannot happen
                // since common nodes keep relative order; so m1 is
                // Del-in-S1 (or Nop deleted?? no: if m1 in Out(S1) it is
                // in S2's children too and order is preserved).
                attach_s1_deleted(s1, m1, out_parent, out)?;
                i1 += 1;
            }
            debug_assert!(i1 < c1.len(), "common child must appear in S1");
            i1 += 1;
            // combine ops
            let op1 = s1.label(m2).op;
            let op2 = s2.label(m2).op;
            match (op1, op2) {
                (EditOp::Ins, EditOp::Del) => {
                    // inserted then deleted: vanishes entirely (drop the
                    // whole subtree; descendants of Ins are Ins and of
                    // Del are Del, so the cancellation is subtree-wide).
                }
                (EditOp::Ins, EditOp::Nop) => {
                    // stays an insertion, but S2 may have edited *inside*
                    // it (inserted deeper nodes): take S2's subtree as
                    // the final inserted content.
                    let sub = subtree_as(s2, m2, EditOp::Ins)?;
                    let pos = out.children(out_parent).len();
                    out.attach_subtree(out_parent, pos, sub)?;
                }
                (EditOp::Nop, EditOp::Del) | (EditOp::Del, _) => {
                    // deleted overall: delete the *S1-input* subtree.
                    attach_s1_deleted(s1, m2, out_parent, out)?;
                }
                (EditOp::Nop, EditOp::Nop) => {
                    let l = s1.label(m2).label;
                    let id = out
                        .add_child_with_id(out_parent, m2, ELabel::nop(l))
                        .map(|_| m2)?;
                    build(s1, s2, m2, id, out)?;
                }
                (_, EditOp::Ins) => unreachable!("common node cannot be Ins in S2"),
            }
        } else {
            // S2-only: a fresh insertion by S2.
            let sub = subtree_as(s2, m2, EditOp::Ins)?;
            let pos = out.children(out_parent).len();
            out.attach_subtree(out_parent, pos, sub)?;
        }
    }
    // trailing S1-deleted children
    while i1 < c1.len() {
        attach_s1_deleted(s1, c1[i1], out_parent, out)?;
        i1 += 1;
    }
    Ok(())
}

/// Attaches the S1-input subtree at `m` as all-`Del` (skipping nodes S1
/// itself inserted — they are not part of `In(S1)` and, being deleted
/// overall, vanish).
fn attach_s1_deleted(
    s1: &Script,
    m: NodeId,
    out_parent: NodeId,
    out: &mut Script,
) -> Result<(), EditError> {
    if s1.label(m).op == EditOp::Ins {
        // Inserted by S1 and (transitively) deleted afterwards: vanishes.
        return Ok(());
    }
    let l = s1.label(m).label;
    out.add_child_with_id(out_parent, m, ELabel::del(l))?;
    for &c in s1.children(m) {
        attach_s1_deleted(s1, c, m, out)?;
    }
    Ok(())
}

/// Clones the subtree of `s` at `m`, forcing every node's op to `op`.
fn subtree_as(s: &Script, m: NodeId, op: EditOp) -> Result<Script, EditError> {
    let sub = s.subtree(m);
    Ok(sub.map_labels(|_, l| ELabel { op, label: l.label }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{apply, cost, input_tree};
    use crate::term::parse_script;
    use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};

    fn t(alpha: &mut Alphabet, s: &str) -> xvu_tree::DocTree {
        let mut gen = NodeIdGen::new();
        parse_term_with_ids(alpha, &mut gen, s).unwrap()
    }

    #[test]
    fn compose_insert_then_delete_other() {
        let mut alpha = Alphabet::new();
        // S1: insert b#5 after a#1;  S2: delete a#1.
        let s1 = parse_script(&mut alpha, "nop:r#0(nop:a#1, ins:b#5)").unwrap();
        let s2 = parse_script(&mut alpha, "nop:r#0(del:a#1, nop:b#5)").unwrap();
        let c = compose(&s1, &s2).unwrap();
        validate_script(&c).unwrap();
        let src = t(&mut alpha, "r#0(a#1)");
        let out = apply(&c, &src).unwrap();
        assert_eq!(out, t(&mut alpha, "r#0(b#5)"));
        assert_eq!(cost(&c), 2); // del a1 + ins b5
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut alpha = Alphabet::new();
        let s1 = parse_script(&mut alpha, "nop:r#0(nop:a#1, ins:b#5(ins:c#6))").unwrap();
        let s2 = parse_script(&mut alpha, "nop:r#0(nop:a#1, del:b#5(del:c#6))").unwrap();
        let c = compose(&s1, &s2).unwrap();
        assert_eq!(cost(&c), 0, "insert∘delete must cancel");
        let src = t(&mut alpha, "r#0(a#1)");
        assert_eq!(apply(&c, &src).unwrap(), src);
        assert!(!c.contains(NodeId(5)));
    }

    #[test]
    fn delete_then_insert_is_both() {
        let mut alpha = Alphabet::new();
        let s1 = parse_script(&mut alpha, "nop:r#0(del:a#1)").unwrap();
        let s2 = parse_script(&mut alpha, "nop:r#0(ins:a#9)").unwrap();
        let c = compose(&s1, &s2).unwrap();
        validate_script(&c).unwrap();
        assert_eq!(cost(&c), 2);
        let src = t(&mut alpha, "r#0(a#1)");
        let out = apply(&c, &src).unwrap();
        assert_eq!(out, t(&mut alpha, "r#0(a#9)"));
    }

    #[test]
    fn s2_edits_inside_s1_insertion() {
        let mut alpha = Alphabet::new();
        // S1 inserts d#5; S2 inserts c#6 under it.
        let s1 = parse_script(&mut alpha, "nop:r#0(ins:d#5)").unwrap();
        let s2 = parse_script(&mut alpha, "nop:r#0(nop:d#5(ins:c#6))").unwrap();
        let c = compose(&s1, &s2).unwrap();
        validate_script(&c).unwrap();
        let src = t(&mut alpha, "r#0");
        let out = apply(&c, &src).unwrap();
        assert_eq!(out, t(&mut alpha, "r#0(d#5(c#6))"));
        assert_eq!(cost(&c), 2);
    }

    #[test]
    fn mismatched_scripts_are_rejected() {
        let mut alpha = Alphabet::new();
        let s1 = parse_script(&mut alpha, "nop:r#0(nop:a#1)").unwrap();
        let s2 = parse_script(&mut alpha, "nop:r#0(nop:a#2)").unwrap();
        assert!(matches!(
            compose(&s1, &s2),
            Err(EditError::NotAnUpdateOf(_))
        ));
    }

    #[test]
    fn composition_agrees_with_sequential_application() {
        let mut alpha = Alphabet::new();
        let src = t(&mut alpha, "r#0(a#1, b#2(c#3), a#4)");
        let s1 = parse_script(
            &mut alpha,
            "nop:r#0(del:a#1, nop:b#2(nop:c#3, ins:d#10), nop:a#4)",
        )
        .unwrap();
        let mid = apply(&s1, &src).unwrap();
        let s2 = parse_script(
            &mut alpha,
            "nop:r#0(nop:b#2(del:c#3, nop:d#10), del:a#4, ins:a#11)",
        )
        .unwrap();
        let end = apply(&s2, &mid).unwrap();
        let c = compose(&s1, &s2).unwrap();
        validate_script(&c).unwrap();
        assert_eq!(input_tree(&c).unwrap(), src);
        assert_eq!(apply(&c, &src).unwrap(), end);
        // cost: del a1, ins d10, del c3, del a4, ins a11 = 5
        assert_eq!(cost(&c), 5);
    }

    #[test]
    fn nested_cancellation_under_kept_nodes() {
        let mut alpha = Alphabet::new();
        let src = t(&mut alpha, "r#0(b#2(c#3))");
        let s1 = parse_script(&mut alpha, "nop:r#0(nop:b#2(nop:c#3, ins:d#10))").unwrap();
        let s2 = parse_script(&mut alpha, "nop:r#0(nop:b#2(nop:c#3, del:d#10))").unwrap();
        let c = compose(&s1, &s2).unwrap();
        assert_eq!(cost(&c), 0);
        assert_eq!(apply(&c, &src).unwrap(), src);
    }

    use xvu_tree::NodeId;
}
