//! High-level construction of view updates.
//!
//! [`UpdateBuilder`] turns a sequence of positional operations — *delete
//! this subtree*, *insert this tree here* — into a well-formed editing
//! script, the representation the propagation machinery consumes. This is
//! the API an application (or an interactive editor) would use; raw scripts
//! remain available for full control.

use crate::error::EditError;
use crate::op::{ELabel, EditOp};
use crate::script::{ins_script, nop_script, Script};
use xvu_tree::{DocTree, NodeId};

/// Builds an editing script for a view by accumulating operations.
///
/// Starts from the identity script `Nop(view)`; operations are applied in
/// call order:
///
/// * [`UpdateBuilder::delete`] marks a whole existing subtree deleted. If
///   the subtree contains nodes inserted earlier in the same builder, those
///   insertions are cancelled (removed from the script) rather than marked.
/// * [`UpdateBuilder::insert`] grafts a new subtree (all `Ins`) at a
///   position in the *current* child list of a node, counting both
///   surviving and deleted children.
#[derive(Debug)]
pub struct UpdateBuilder {
    script: Script,
}

impl UpdateBuilder {
    /// Starts building an update of `view`.
    pub fn new(view: &DocTree) -> UpdateBuilder {
        UpdateBuilder {
            script: nop_script(view),
        }
    }

    /// Marks the subtree rooted at `n` for deletion.
    pub fn delete(&mut self, n: NodeId) -> Result<&mut Self, EditError> {
        if !self.script.contains(n) {
            return Err(EditError::UnknownNode(n));
        }
        if n == self.script.root() {
            return Err(EditError::CannotDeleteRoot);
        }
        // Partition the subtree: Ins nodes are cancelled, others marked Del.
        let nodes: Vec<NodeId> = self.script.preorder_from(n).collect();
        let mut to_cancel: Vec<NodeId> = Vec::new();
        for &m in &nodes {
            if self.script.label(m).op == EditOp::Ins {
                // cancel the topmost inserted ancestor only
                let parent_is_ins = self
                    .script
                    .parent(m)
                    .is_some_and(|p| self.script.label(p).op == EditOp::Ins);
                if !parent_is_ins || m == n {
                    to_cancel.push(m);
                }
            }
        }
        if to_cancel.first() == Some(&n) {
            // Deleting a freshly inserted subtree = removing it outright.
            self.script.detach_subtree(n)?;
            return Ok(self);
        }
        for m in to_cancel {
            self.script.detach_subtree(m)?;
        }
        for m in self.script.preorder_from(n).collect::<Vec<_>>() {
            let l = self.script.label(m);
            debug_assert_ne!(l.op, EditOp::Ins);
            self.set_op(m, EditOp::Del);
        }
        let _ = self.script.label(n).label;
        Ok(self)
    }

    /// Inserts `sub` (a document tree with fresh identifiers) as the
    /// `position`-th child of `parent` in the current script.
    pub fn insert(
        &mut self,
        parent: NodeId,
        position: usize,
        sub: DocTree,
    ) -> Result<&mut Self, EditError> {
        if !self.script.contains(parent) {
            return Err(EditError::UnknownNode(parent));
        }
        if self.script.label(parent).op == EditOp::Del {
            return Err(EditError::InsertUnderDeleted(parent));
        }
        self.script
            .attach_subtree(parent, position, ins_script(&sub))?;
        Ok(self)
    }

    /// The script under construction.
    pub fn script(&self) -> &Script {
        &self.script
    }

    /// Finishes and returns the script.
    pub fn finish(self) -> Script {
        self.script
    }

    fn set_op(&mut self, n: NodeId, op: EditOp) {
        // Tree has no label-mutation API by design (labels are part of the
        // persistent structure); rebuild via map. For builder-sized scripts
        // this is fine; the propagation engine never calls this path.
        let target = n;
        self.script = self.script.map_labels(|id, &l| {
            if id == target {
                ELabel { op, label: l.label }
            } else {
                l
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{cost, input_tree, output_tree, validate_script};
    use crate::term::script_to_term;
    use xvu_tree::{parse_term_with_ids, to_term_with_ids, Alphabet, NodeIdGen};

    fn view(alpha: &mut Alphabet) -> DocTree {
        let mut gen = NodeIdGen::new();
        parse_term_with_ids(alpha, &mut gen, "r#0(a#1, d#3(c#8), a#4, d#6(c#10))").unwrap()
    }

    #[test]
    fn rebuild_paper_s0_via_builder() {
        let mut alpha = Alphabet::new();
        let v = view(&mut alpha);
        let mut gen = NodeIdGen::starting_at(11);
        let d_new = parse_term_with_ids(&mut alpha, &mut gen, "d#11(c#13, c#14)").unwrap();
        let a_new = parse_term_with_ids(&mut alpha, &mut gen, "a#12").unwrap();
        let c_new = parse_term_with_ids(&mut alpha, &mut gen, "c#15").unwrap();

        let mut b = UpdateBuilder::new(&v);
        b.delete(xvu_tree::NodeId(1)).unwrap();
        b.delete(xvu_tree::NodeId(3)).unwrap();
        // after the deletions the root's child list is a1,d3,a4,d6 (marked);
        // insert d11 and a12 between a4 and d6 (positions 3 and 4)
        b.insert(xvu_tree::NodeId(0), 3, d_new).unwrap();
        b.insert(xvu_tree::NodeId(0), 4, a_new).unwrap();
        b.insert(xvu_tree::NodeId(6), 1, c_new).unwrap();
        let s = b.finish();

        validate_script(&s).unwrap();
        assert_eq!(input_tree(&s).unwrap(), v);
        assert_eq!(
            to_term_with_ids(&output_tree(&s).unwrap(), &alpha),
            "r#0(a#4, d#11(c#13, c#14), a#12, d#6(c#10, c#15))"
        );
        assert_eq!(cost(&s), 8);
        assert_eq!(
            script_to_term(&s, &alpha),
            "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
             ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))"
        );
    }

    #[test]
    fn delete_root_is_rejected() {
        let mut alpha = Alphabet::new();
        let v = view(&mut alpha);
        let mut b = UpdateBuilder::new(&v);
        assert_eq!(b.delete(v.root()).unwrap_err(), EditError::CannotDeleteRoot);
    }

    #[test]
    fn delete_unknown_node_is_rejected() {
        let mut alpha = Alphabet::new();
        let v = view(&mut alpha);
        let mut b = UpdateBuilder::new(&v);
        assert_eq!(
            b.delete(NodeId(999)).unwrap_err(),
            EditError::UnknownNode(NodeId(999))
        );
    }

    #[test]
    fn deleting_own_insertion_cancels_it() {
        let mut alpha = Alphabet::new();
        let v = view(&mut alpha);
        let mut gen = NodeIdGen::starting_at(50);
        let sub = parse_term_with_ids(&mut alpha, &mut gen, "a#50").unwrap();
        let mut b = UpdateBuilder::new(&v);
        b.insert(NodeId(0), 0, sub).unwrap();
        assert!(b.script().contains(NodeId(50)));
        b.delete(NodeId(50)).unwrap();
        assert!(!b.script().contains(NodeId(50)));
        let s = b.finish();
        assert_eq!(cost(&s), 0);
        assert_eq!(input_tree(&s).unwrap(), v);
        assert_eq!(output_tree(&s).unwrap(), v);
    }

    #[test]
    fn deleting_subtree_with_insertions_cancels_them() {
        let mut alpha = Alphabet::new();
        let v = view(&mut alpha);
        let mut gen = NodeIdGen::starting_at(60);
        let sub = parse_term_with_ids(&mut alpha, &mut gen, "c#60").unwrap();
        let mut b = UpdateBuilder::new(&v);
        b.insert(NodeId(3), 1, sub).unwrap(); // insert under d#3
        b.delete(NodeId(3)).unwrap(); // then delete d#3 entirely
        let s = b.finish();
        validate_script(&s).unwrap();
        assert!(!s.contains(NodeId(60)));
        // d#3 and its original child c#8 are Del
        assert_eq!(s.label(NodeId(3)).op, EditOp::Del);
        assert_eq!(s.label(NodeId(8)).op, EditOp::Del);
        assert_eq!(input_tree(&s).unwrap(), v);
    }

    #[test]
    fn insert_under_deleted_is_rejected() {
        let mut alpha = Alphabet::new();
        let v = view(&mut alpha);
        let mut gen = NodeIdGen::starting_at(70);
        let sub = parse_term_with_ids(&mut alpha, &mut gen, "c#70").unwrap();
        let mut b = UpdateBuilder::new(&v);
        b.delete(NodeId(3)).unwrap();
        assert_eq!(
            b.insert(NodeId(3), 0, sub).unwrap_err(),
            EditError::InsertUnderDeleted(NodeId(3))
        );
    }

    #[test]
    fn insert_positions_count_deleted_children() {
        let mut alpha = Alphabet::new();
        let v = view(&mut alpha);
        let mut gen = NodeIdGen::starting_at(80);
        let sub = parse_term_with_ids(&mut alpha, &mut gen, "a#80").unwrap();
        let mut b = UpdateBuilder::new(&v);
        b.delete(NodeId(1)).unwrap();
        // position 1 = right after the deleted a#1
        b.insert(NodeId(0), 1, sub).unwrap();
        let s = b.finish();
        let out = output_tree(&s).unwrap();
        let kids: Vec<u64> = out.children(out.root()).iter().map(|n| n.0).collect();
        assert_eq!(kids, vec![80, 3, 4, 6]);
    }

    #[test]
    fn double_delete_is_idempotent() {
        let mut alpha = Alphabet::new();
        let v = view(&mut alpha);
        let mut b = UpdateBuilder::new(&v);
        b.delete(NodeId(3)).unwrap();
        b.delete(NodeId(3)).unwrap();
        let s = b.finish();
        validate_script(&s).unwrap();
        assert_eq!(s.label(NodeId(3)).op, EditOp::Del);
    }
}
