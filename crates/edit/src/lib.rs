//! Editing scripts over `E(Σ)` (paper §2, "Editing scripts").
//!
//! Updates insert and delete whole subtrees — the backbone operations of
//! the XQuery Update facility. Following the paper, an update is
//! represented as an *editing script*: a tree over the edit alphabet
//! `E(Σ) = {Ins(a), Del(a), Nop(a)}` that simultaneously encodes the
//! update, its input tree [`input_tree`], its output tree [`output_tree`],
//! and the node-identifier correspondence between them (the alignment
//! formalism of Jiang–Wang–Zhang). The **cost** of a script is its number
//! of non-phantom nodes.
//!
//! Entry points:
//!
//! * [`Script`] = `Tree<ELabel>` with [`validate_script`] enforcing the
//!   whole-subtree discipline (descendants of `Ins` insert, of `Del`
//!   delete);
//! * [`apply`] / [`apply_in_place`] — run a script against its input tree
//!   (building the output fresh, or mutating the input in place so only
//!   the edited regions are touched);
//! * [`script_footprint`] — the shared "what did this script touch"
//!   analysis: the changed child-word region (for incremental
//!   revalidation) and the entirely-`Nop` clean region (for propagation
//!   caching);
//! * [`ins_script`] / [`del_script`] / [`nop_script`] — the paper's
//!   `Ins(t)`, `Del(t)`, `Nop(t)` lifts;
//! * [`UpdateBuilder`] — positional *delete-subtree* / *insert-subtree*
//!   operations compiled to a script (the API an editor would use);
//! * [`parse_script`] / [`script_to_term`] — term syntax
//!   (`nop:r#0(del:a#1, ins:d#11(ins:c#13))`) used by fixtures and
//!   diagnostics;
//! * [`check_is_update_of`] / [`check_no_hidden_ids`] — the paper's
//!   well-formedness requirements on view updates.
//!
//! # Paper cross-reference
//!
//! | paper (§2, Editing scripts) | here |
//! |-----------------------------|------|
//! | edit alphabet `E(Σ) = {Ins(a), Del(a), Nop(a)}` | [`EditOp`], [`ELabel`] |
//! | editing scripts and their discipline | [`Script`], [`validate_script`] |
//! | `In(S)` / `Out(S)` | [`input_tree`] / [`output_tree`] |
//! | the lifts `Ins(t)`, `Del(t)`, `Nop(t)` | [`ins_script`], [`del_script`], [`nop_script`] |
//! | script application and cost `cost(S)` | [`apply`], [`cost`] |
//! | well-formed view updates (`In(S) = A(t)`, no hidden identifiers) | [`check_is_update_of`], [`check_no_hidden_ids`] |
//! | script syntax of the Fig. 4/7 fixtures | [`parse_script`], [`script_to_term`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod compose;
mod diff;
mod error;
mod footprint;
mod op;
mod script;
mod term;
mod update;

pub use builder::UpdateBuilder;
pub use compose::compose;
pub use diff::diff;
pub use error::EditError;
pub use footprint::{script_footprint, ScriptFootprint};
pub use op::{ELabel, EditOp};
pub use script::{
    apply, apply_in_place, cost, del_script, input_tree, ins_script, nop_script, output_tree,
    validate_script, Script,
};
pub use term::{parse_script, parse_script_with_gen, script_to_term};
pub use update::{check_is_update_of, check_no_hidden_ids};
