//! Script footprints: the region of a document an editing script touches.
//!
//! Incremental machinery on both sides of the pipeline needs the same
//! analysis of an editing script `S`:
//!
//! * **revalidation** (`xvu_propagate::revalidate_output`) re-checks
//!   exactly the nodes whose child word can have changed — parents of
//!   non-`Nop` children plus every node of an inserted subtree, with
//!   deleted subtrees skipped whole;
//! * **propagation caching** reuses per-node dynamic-programming state for
//!   every node *outside* the update's footprint — the nodes whose whole
//!   subtree is `Nop`.
//!
//! [`ScriptFootprint`] computes both views of the footprint in one pass
//! and is the single source of truth for "what did this script touch".

use crate::op::EditOp;
use crate::script::Script;
use xvu_tree::{NodeId, Slot, SlotSet};

/// The footprint of one editing script: which nodes it touches and which
/// subtrees it provably leaves alone.
///
/// Both tables are keyed by the script they were computed from; the
/// [`Slot`]-based queries are only meaningful for that same (unmutated)
/// script value.
#[derive(Clone, Debug)]
pub struct ScriptFootprint {
    /// Nodes whose child word changes in `Out(S)` plus all inserted
    /// nodes, in document order, with deleted subtrees skipped whole.
    /// These are exactly the nodes an incremental schema check must
    /// revisit.
    changed: Vec<NodeId>,
    /// Script slots whose subtree is entirely `Nop` — the untouched
    /// region, outside of which per-subtree state can be reused.
    clean: SlotSet,
}

impl ScriptFootprint {
    /// The nodes an incremental output validation must re-check: every
    /// inserted node and every surviving node with at least one non-`Nop`
    /// child, in document order. Nodes inside deleted subtrees are never
    /// listed (they do not exist in the output).
    pub fn changed(&self) -> &[NodeId] {
        &self.changed
    }

    /// Whether the subtree rooted at the script node occupying `slot` is
    /// entirely `Nop` — i.e. the script provably does not touch it.
    pub fn is_clean(&self, slot: Slot) -> bool {
        self.clean.contains(slot)
    }

    /// Number of clean (entirely-`Nop`) subtree roots.
    pub fn clean_len(&self) -> usize {
        self.clean.len()
    }
}

/// Computes the [`ScriptFootprint`] of `s` in two linear passes (one
/// post-order for the clean region, one pre-order for the changed set).
///
/// The analysis is purely structural and does not require `s` to satisfy
/// the `Ins`/`Del` closure discipline ([`crate::validate_script`] checks
/// that separately); deleted subtrees are skipped whole regardless of
/// their contents.
pub fn script_footprint(s: &Script) -> ScriptFootprint {
    let resolve = |id: NodeId| s.slot(id).expect("script child in script");

    // Post-order: clean(n) ⇔ op(n) = Nop and every child is clean.
    let mut clean = SlotSet::with_capacity(s.size());
    for n in s.postorder() {
        if s.label(n).op == EditOp::Nop && s.children(n).iter().all(|&c| clean.contains(resolve(c)))
        {
            clean.insert(resolve(n));
        }
    }

    // Pre-order with deleted subtrees skipped whole: the changed set, in
    // document order (children pushed reversed so the stack pops
    // left-to-right).
    let mut changed = Vec::new();
    let mut stack = vec![resolve(s.root())];
    while let Some(slot) = stack.pop() {
        let node = s.node_at(slot);
        if node.label.op == EditOp::Del {
            continue;
        }
        let must_check = node.label.op == EditOp::Ins
            || node.children.iter().any(|&c| s.label(c).op != EditOp::Nop);
        if must_check {
            changed.push(node.id);
        }
        stack.extend(node.children.iter().rev().map(|&c| resolve(c)));
    }

    ScriptFootprint { changed, clean }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_script;
    use xvu_tree::Alphabet;

    fn slot_of(s: &Script, id: u64) -> Slot {
        s.slot(NodeId(id)).unwrap()
    }

    #[test]
    fn identity_script_is_all_clean() {
        let mut alpha = Alphabet::new();
        let s = parse_script(&mut alpha, "nop:r#0(nop:a#1(nop:b#2), nop:c#3)").unwrap();
        let fp = script_footprint(&s);
        assert!(fp.changed().is_empty());
        assert_eq!(fp.clean_len(), 4);
        for id in [0, 1, 2, 3] {
            assert!(fp.is_clean(slot_of(&s, id)));
        }
    }

    #[test]
    fn edits_dirty_exactly_the_path_to_root() {
        // r(a(b, ins:x), c): the insert dirties a and r; b and c stay clean.
        let mut alpha = Alphabet::new();
        let s = parse_script(&mut alpha, "nop:r#0(nop:a#1(nop:b#2, ins:x#4), nop:c#3)").unwrap();
        let fp = script_footprint(&s);
        assert_eq!(fp.changed(), &[NodeId(1), NodeId(4)]);
        assert!(!fp.is_clean(slot_of(&s, 0)));
        assert!(!fp.is_clean(slot_of(&s, 1)));
        assert!(!fp.is_clean(slot_of(&s, 4)));
        assert!(fp.is_clean(slot_of(&s, 2)));
        assert!(fp.is_clean(slot_of(&s, 3)));
    }

    #[test]
    fn deleted_subtrees_are_skipped_whole() {
        // Nested non-Del inside a Del subtree (malformed w.r.t. the
        // closure discipline) must still be skipped whole: those nodes are
        // not part of the output.
        let mut alpha = Alphabet::new();
        let s = parse_script(&mut alpha, "nop:r#0(del:a#1(ins:x#2, nop:b#3), nop:c#4)").unwrap();
        let fp = script_footprint(&s);
        assert_eq!(fp.changed(), &[NodeId(0)]); // only the cut-point parent
        assert!(!fp.is_clean(slot_of(&s, 1)));
        assert!(!fp.is_clean(slot_of(&s, 2)));
    }

    #[test]
    fn inserted_subtrees_are_changed_throughout() {
        let mut alpha = Alphabet::new();
        let s = parse_script(&mut alpha, "nop:r#0(ins:a#1(ins:b#2(ins:c#3)))").unwrap();
        let fp = script_footprint(&s);
        assert_eq!(fp.changed(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(fp.clean_len(), 0);
    }

    #[test]
    fn changed_set_is_in_document_order() {
        let mut alpha = Alphabet::new();
        let s = parse_script(
            &mut alpha,
            "nop:r#0(nop:a#1(del:x#5), nop:b#2(ins:y#6), nop:c#3)",
        )
        .unwrap();
        let fp = script_footprint(&s);
        assert_eq!(fp.changed(), &[NodeId(1), NodeId(2), NodeId(6)]);
    }
}
