//! Editing scripts: trees over `E(Σ)` and their projections.
//!
//! An editing script `S` is a tree over `E(Σ)` where descendants of
//! inserting nodes insert and descendants of deleting nodes delete (only
//! whole subtrees are inserted/deleted — the XQuery Update style). A script
//! simultaneously represents the update, its input tree `In(S)` (the
//! non-`Ins` nodes), its output tree `Out(S)` (the non-`Del` nodes), and
//! the identifier correspondence between them.

use crate::error::EditError;
use crate::op::{ELabel, EditOp};
use xvu_tree::{DocTree, NodeId, Tree};

/// An editing script: a tree labeled with editing operations.
pub type Script = Tree<ELabel>;

/// Checks the paper's well-formedness requirements: all descendants of an
/// `Ins` node are `Ins`, all descendants of a `Del` node are `Del`.
pub fn validate_script(s: &Script) -> Result<(), EditError> {
    for n in s.preorder() {
        let op = s.label(n).op;
        for &c in s.children(n) {
            let cop = s.label(c).op;
            match op {
                EditOp::Ins if cop != EditOp::Ins => return Err(EditError::InsClosureViolated(c)),
                EditOp::Del if cop != EditOp::Del => return Err(EditError::DelClosureViolated(c)),
                _ => {}
            }
        }
    }
    Ok(())
}

/// The cost of a script: the number of non-phantom (non-`Nop`) nodes.
pub fn cost(s: &Script) -> usize {
    s.preorder()
        .filter(|&n| s.label(n).op != EditOp::Nop)
        .count()
}

/// The input tree `In(S)` — the restriction of `S` to non-`Ins` nodes,
/// with `Del(a)`/`Nop(a)` projected to `a`. `None` iff the root inserts
/// (empty input).
pub fn input_tree(s: &Script) -> Option<DocTree> {
    project(s, ELabel::in_input)
}

/// The output tree `Out(S)` — the restriction of `S` to non-`Del` nodes.
/// `None` iff the root deletes (empty output).
pub fn output_tree(s: &Script) -> Option<DocTree> {
    project(s, ELabel::in_output)
}

fn project(s: &Script, keep: impl Fn(ELabel) -> bool) -> Option<DocTree> {
    let root = s.root();
    if !keep(s.label(root)) {
        return None;
    }
    let mut out = Tree::leaf_with_id(root, s.label(root).label);
    fn rec(s: &Script, n: NodeId, out: &mut DocTree, keep: &impl Fn(ELabel) -> bool) {
        for &c in s.children(n) {
            let l = s.label(c);
            if keep(l) {
                out.add_child_with_id(n, c, l.label)
                    .expect("script node ids are unique");
                rec(s, c, out, keep);
            }
        }
    }
    rec(s, root, &mut out, &keep);
    Some(out)
}

/// Applies a script to a tree: checks `t = In(S)` (identifier-sensitive)
/// and returns `Out(S)`.
pub fn apply(s: &Script, t: &DocTree) -> Result<DocTree, EditError> {
    validate_script(s)?;
    let input = input_tree(s).ok_or(EditError::EmptyInput)?;
    if &input != t {
        return Err(EditError::InputMismatch);
    }
    output_tree(s).ok_or(EditError::EmptyOutput)
}

/// Applies a script to a tree **in place**: checks `t = In(S)` exactly
/// (identifiers, labels, structure — including the contents of deleted
/// subtrees) and then mutates `t` into `Out(S)` by detaching every
/// deleted subtree and attaching every inserted one, leaving the
/// untouched regions of `t` alone.
///
/// Semantically equivalent to [`apply`] (`*t == apply(s, &t_before)?`
/// afterwards), but it never materialises the input or output tree, and —
/// because only the edited regions are mutated — `t`'s change journal
/// ([`xvu_tree::Tree::set_change_tracking`]) records exactly the nodes
/// whose child word the script changed. Validation runs entirely before
/// the first mutation: on any `Err`, `t` is unchanged.
pub fn apply_in_place(t: &mut DocTree, s: &Script) -> Result<(), EditError> {
    validate_script(s)?;
    let root_label = s.label(s.root());
    match root_label.op {
        EditOp::Ins => return Err(EditError::EmptyInput),
        EditOp::Del => return Err(EditError::EmptyOutput),
        EditOp::Nop => {}
    }
    if s.root() != t.root() || root_label.label != t.label(t.root()) {
        return Err(EditError::InputMismatch);
    }

    // Phase 1 (read-only): verify In(S) = t in lockstep, without building
    // the input projection. Every non-Ins script node must occupy the
    // corresponding position of `t` with the same identifier and label;
    // since whole child lists are matched and recursed into from the
    // shared root, this covers all of `t` exactly.
    let mut stack = vec![s.root()];
    while let Some(n) = stack.pop() {
        let t_children = t.children(n);
        let mut i = 0usize;
        for &c in s.children(n) {
            let cl = s.label(c);
            if cl.op == EditOp::Ins {
                continue;
            }
            match t_children.get(i) {
                Some(&tc) if tc == c && t.label(tc) == cl.label => {}
                _ => return Err(EditError::InputMismatch),
            }
            i += 1;
            stack.push(c);
        }
        if i != t_children.len() {
            return Err(EditError::InputMismatch);
        }
    }

    // Phase 2: mutate. Walk the Nop skeleton; at each node the invariant
    // holds that `t`'s children processed so far are exactly the output
    // children emitted so far, so `pos` tracks the attach position.
    let mut stack = vec![s.root()];
    while let Some(n) = stack.pop() {
        let mut pos = 0usize;
        for ci in 0..s.children(n).len() {
            let c = s.children(n)[ci];
            match s.label(c).op {
                EditOp::Nop => {
                    stack.push(c);
                    pos += 1;
                }
                EditOp::Del => {
                    t.detach_subtree(c)?;
                }
                EditOp::Ins => {
                    let frag = s.subtree(c).map_labels(|_, l| l.label);
                    t.attach_subtree(n, pos, frag)?;
                    pos += 1;
                }
            }
        }
    }
    Ok(())
}

/// `Ins(t)`: the unique script with empty input and output `t` — all nodes
/// insert, identifiers preserved.
pub fn ins_script(t: &DocTree) -> Script {
    t.map_labels(|_, &l| ELabel::ins(l))
}

/// `Del(t)`: the script deleting all of `t`.
pub fn del_script(t: &DocTree) -> Script {
    t.map_labels(|_, &l| ELabel::del(l))
}

/// `Nop(t)`: the identity script on `t`.
pub fn nop_script(t: &DocTree) -> Script {
    t.map_labels(|_, &l| ELabel::nop(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_script;
    use xvu_tree::{parse_term_with_ids, to_term_with_ids, Alphabet, NodeIdGen};

    /// The paper's view update S0 (Fig. 4).
    pub(crate) fn s0(alpha: &mut Alphabet) -> Script {
        parse_script(
            alpha,
            "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
             ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
        )
        .unwrap()
    }

    #[test]
    fn s0_is_well_formed() {
        let mut alpha = Alphabet::new();
        let s = s0(&mut alpha);
        validate_script(&s).unwrap();
        assert_eq!(s.size(), 12);
    }

    #[test]
    fn s0_input_is_fig3_view() {
        let mut alpha = Alphabet::new();
        let s = s0(&mut alpha);
        let input = input_tree(&s).unwrap();
        assert_eq!(
            to_term_with_ids(&input, &alpha),
            "r#0(a#1, d#3(c#8), a#4, d#6(c#10))"
        );
    }

    #[test]
    fn s0_output_is_fig5() {
        let mut alpha = Alphabet::new();
        let s = s0(&mut alpha);
        let output = output_tree(&s).unwrap();
        assert_eq!(
            to_term_with_ids(&output, &alpha),
            "r#0(a#4, d#11(c#13, c#14), a#12, d#6(c#10, c#15))"
        );
    }

    #[test]
    fn s0_cost_counts_non_phantom_nodes() {
        let mut alpha = Alphabet::new();
        let s = s0(&mut alpha);
        // Del a1, Del d3, Del c8, Ins d11, Ins c13, Ins c14, Ins a12, Ins c15
        assert_eq!(cost(&s), 8);
    }

    #[test]
    fn apply_round_trips() {
        let mut alpha = Alphabet::new();
        let s = s0(&mut alpha);
        let mut gen = NodeIdGen::new();
        let view = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, d#3(c#8), a#4, d#6(c#10))")
            .unwrap();
        let out = apply(&s, &view).unwrap();
        assert_eq!(out, output_tree(&s).unwrap());
    }

    #[test]
    fn apply_rejects_wrong_input() {
        let mut alpha = Alphabet::new();
        let s = s0(&mut alpha);
        let mut gen = NodeIdGen::starting_at(900);
        // isomorphic to the view but different identifiers
        let wrong = parse_term_with_ids(
            &mut alpha,
            &mut gen,
            "r#900(a#901, d#902(c#903), a#904, d#905(c#906))",
        )
        .unwrap();
        assert_eq!(apply(&s, &wrong).unwrap_err(), EditError::InputMismatch);
    }

    #[test]
    fn closure_violations_are_caught() {
        let mut alpha = Alphabet::new();
        let bad = parse_script(&mut alpha, "nop:r#0(ins:a#1(nop:b#2))").unwrap();
        assert_eq!(
            validate_script(&bad).unwrap_err(),
            EditError::InsClosureViolated(NodeId(2))
        );
        let bad = parse_script(&mut alpha, "nop:r#0(del:a#1(ins:b#2))").unwrap();
        assert_eq!(
            validate_script(&bad).unwrap_err(),
            EditError::DelClosureViolated(NodeId(2))
        );
    }

    #[test]
    fn lifts() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, b#2)").unwrap();

        let ins = ins_script(&t);
        assert!(input_tree(&ins).is_none());
        assert_eq!(output_tree(&ins).unwrap(), t);
        assert_eq!(cost(&ins), 3);

        let del = del_script(&t);
        assert_eq!(input_tree(&del).unwrap(), t);
        assert!(output_tree(&del).is_none());
        assert_eq!(cost(&del), 3);

        let nop = nop_script(&t);
        assert_eq!(input_tree(&nop).unwrap(), t);
        assert_eq!(output_tree(&nop).unwrap(), t);
        assert_eq!(cost(&nop), 0);
        assert_eq!(apply(&nop, &t).unwrap(), t);
    }

    #[test]
    fn apply_in_place_matches_apply() {
        let mut alpha = Alphabet::new();
        let s = s0(&mut alpha);
        let mut gen = NodeIdGen::new();
        let view = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, d#3(c#8), a#4, d#6(c#10))")
            .unwrap();
        let expect = apply(&s, &view).unwrap();
        let mut t = view.clone();
        apply_in_place(&mut t, &s).unwrap();
        assert_eq!(t, expect);
        t.validate().unwrap();
    }

    #[test]
    fn apply_in_place_rejects_without_mutating() {
        let mut alpha = Alphabet::new();
        let s = s0(&mut alpha);
        let mut gen = NodeIdGen::starting_at(900);
        let wrong = parse_term_with_ids(
            &mut alpha,
            &mut gen,
            "r#900(a#901, d#902(c#903), a#904, d#905(c#906))",
        )
        .unwrap();
        let before = wrong.clone();
        let mut t = wrong;
        assert_eq!(
            apply_in_place(&mut t, &s).unwrap_err(),
            EditError::InputMismatch
        );
        assert_eq!(t, before, "failed application must leave t untouched");
        // a subtree mismatch hidden inside a deleted region is caught too
        let mut gen = NodeIdGen::new();
        let missing_del_leaf =
            parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, d#3, a#4, d#6(c#10))").unwrap();
        let mut t = missing_del_leaf.clone();
        assert_eq!(
            apply_in_place(&mut t, &s).unwrap_err(),
            EditError::InputMismatch
        );
        assert_eq!(t, missing_del_leaf);
    }

    #[test]
    fn apply_in_place_journals_exactly_the_edited_parents() {
        let mut alpha = Alphabet::new();
        let s = s0(&mut alpha);
        let mut gen = NodeIdGen::new();
        let mut t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, d#3(c#8), a#4, d#6(c#10))")
            .unwrap();
        t.set_change_tracking(true);
        apply_in_place(&mut t, &s).unwrap();
        let mut changed = t.take_changed_parents();
        changed.sort();
        // S0 edits the child lists of r#0 (dels + inserts) and d#6 (ins
        // c#15); d#3 is deleted whole so it no longer journals.
        assert_eq!(changed, vec![NodeId(0), NodeId(6)]);
    }

    #[test]
    fn apply_in_place_root_ops_are_rejected() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1)").unwrap();
        let del_root = parse_script(&mut alpha, "del:r#0(del:a#1)").unwrap();
        let mut u = t.clone();
        assert_eq!(
            apply_in_place(&mut u, &del_root).unwrap_err(),
            EditError::EmptyOutput
        );
        let ins_root = parse_script(&mut alpha, "ins:r#50(ins:a#51)").unwrap();
        assert_eq!(
            apply_in_place(&mut u, &ins_root).unwrap_err(),
            EditError::EmptyInput
        );
        assert_eq!(u, t);
    }

    #[test]
    fn projections_preserve_order() {
        let mut alpha = Alphabet::new();
        let s = parse_script(
            &mut alpha,
            "nop:r#0(ins:a#10, nop:b#1, del:c#2, nop:d#3, ins:e#11)",
        )
        .unwrap();
        let input = input_tree(&s).unwrap();
        let in_kids: Vec<u64> = input.children(input.root()).iter().map(|n| n.0).collect();
        assert_eq!(in_kids, vec![1, 2, 3]);
        let output = output_tree(&s).unwrap();
        let out_kids: Vec<u64> = output.children(output.root()).iter().map(|n| n.0).collect();
        assert_eq!(out_kids, vec![10, 1, 3, 11]);
    }
}
