//! Validity of a script *as a view update* (paper §4).
//!
//! A view update of `A(t)` is a script `S` with `In(S) = A(t)` whose output
//! is a legal view, and which does not reuse identifiers that exist in the
//! source document but are hidden by the view:
//! `N_S ∩ (N_t \ N_{A(t)}) = ∅`. (Checking `Out(S) ∈ A(L(D))` additionally
//! needs the view DTD and lives in `xvu_propagate`, which owns the full
//! problem instance.)

use crate::error::EditError;
use crate::script::{input_tree, validate_script, Script};
use std::collections::HashSet;
use xvu_tree::{DocTree, NodeId};

/// Checks that `s` is well-formed and `In(s)` equals `view`
/// (identifier-sensitive).
pub fn check_is_update_of(s: &Script, view: &DocTree) -> Result<(), EditError> {
    validate_script(s)?;
    let input = input_tree(s).ok_or(EditError::EmptyInput)?;
    if &input != view {
        return Err(EditError::NotAnUpdateOf(
            "In(S) differs from the view".to_owned(),
        ));
    }
    Ok(())
}

/// Checks the hidden-identifier requirement: no node of the script may use
/// an identifier of a source node hidden by the view.
///
/// `source_ids` are all identifiers of `t`; `visible` those of `A(t)`.
/// The paper: *"This requirement prevents situations where the user
/// attempts to add a node with identifier already used by an existing node
/// in the source document and not visible to the user."*
pub fn check_no_hidden_ids(
    s: &Script,
    source_ids: &HashSet<NodeId>,
    visible: &HashSet<NodeId>,
) -> Result<(), EditError> {
    for n in s.node_ids() {
        if source_ids.contains(&n) && !visible.contains(&n) {
            return Err(EditError::HiddenIdUsed(n));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_script;
    use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};

    #[test]
    fn accepts_proper_update() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let view = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, d#3(c#8), a#4, d#6(c#10))")
            .unwrap();
        let s = parse_script(
            &mut alpha,
            "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
             ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
        )
        .unwrap();
        check_is_update_of(&s, &view).unwrap();
    }

    #[test]
    fn rejects_update_of_different_view() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let view = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1)").unwrap();
        let s = parse_script(&mut alpha, "nop:r#0(nop:a#2)").unwrap();
        assert!(matches!(
            check_is_update_of(&s, &view),
            Err(EditError::NotAnUpdateOf(_))
        ));
    }

    #[test]
    fn rejects_hidden_identifier_reuse() {
        let mut alpha = Alphabet::new();
        // Source has hidden node #2; user inserts a node reusing id 2.
        let s = parse_script(&mut alpha, "nop:r#0(nop:a#1, ins:c#2)").unwrap();
        let source_ids: HashSet<NodeId> = [0u64, 1, 2].map(NodeId).into_iter().collect();
        let visible: HashSet<NodeId> = [0u64, 1].map(NodeId).into_iter().collect();
        assert_eq!(
            check_no_hidden_ids(&s, &source_ids, &visible).unwrap_err(),
            EditError::HiddenIdUsed(NodeId(2))
        );
    }

    #[test]
    fn fresh_identifiers_are_fine() {
        let mut alpha = Alphabet::new();
        let s = parse_script(&mut alpha, "nop:r#0(nop:a#1, ins:c#99)").unwrap();
        let source_ids: HashSet<NodeId> = [0u64, 1, 2].map(NodeId).into_iter().collect();
        let visible: HashSet<NodeId> = [0u64, 1].map(NodeId).into_iter().collect();
        check_no_hidden_ids(&s, &source_ids, &visible).unwrap();
    }
}
