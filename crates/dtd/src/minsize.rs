//! Minimal tree sizes and minimal witness trees.
//!
//! `minsize(a)` is the size of the smallest tree satisfying the DTD whose
//! root is labeled `a`. The paper uses this quantity as the weight of every
//! "invisible insert" edge, remarks that it "can be easily precomputed from
//! `D` in polynomial time", and separately stresses (§5) that the *tree
//! itself* can be exponential in `|D|`:
//!
//! ```text
//! a → a_n · a_n      a_i → a_{i-1} · a_{i-1}      a_0 → ε
//! ```
//!
//! gives `minsize(a_i) = 2^{i+1} − 1` and `minsize(a) = 2^{n+2} − 1`.
//! Accordingly, sizes are computed with saturating `u64` arithmetic (cheap,
//! always safe) while witness *materialisation* takes an explicit budget.

use crate::dtd::Dtd;
use crate::error::DtdError;
use xvu_automata::{min_cost_word, INFINITE};
use xvu_tree::{DocTree, NodeIdGen, Sym, Tree};

pub use xvu_automata::INFINITE as INFINITE_SIZE;

/// Minimal tree sizes per label, `u64::MAX` (= [`INFINITE_SIZE`]) for
/// unsatisfiable labels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinSizes {
    sizes: Vec<u64>,
}

impl MinSizes {
    /// The minimal size for `label`, or [`INFINITE_SIZE`] when no tree
    /// exists.
    #[inline]
    pub fn get(&self, label: Sym) -> u64 {
        self.sizes[label.index()]
    }

    /// Whether `label` admits a finite tree (the DTD is satisfiable for
    /// this label).
    #[inline]
    pub fn is_satisfiable(&self, label: Sym) -> bool {
        self.get(label) != INFINITE
    }

    /// Labels with no finite tree.
    pub fn unsatisfiable_labels(&self) -> impl Iterator<Item = Sym> + '_ {
        self.sizes
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == INFINITE)
            .map(|(i, _)| Sym::from_index(i))
    }

    /// Raw per-symbol cost table, indexable by `Sym::index()` — the format
    /// [`min_cost_word`] consumes.
    pub fn as_cost_table(&self) -> &[u64] {
        &self.sizes
    }
}

/// Builds the paper's exponential-minimal-tree DTD family (§5) for a given
/// depth `n`:
///
/// ```text
/// a → a_n · a_n      a_i → a_{i-1} · a_{i-1}      a_0 → ε
/// ```
///
/// `minsize(a_i) = 2^{i+1} − 1` and `minsize(a) = 2^{n+2} − 1`, while the
/// DTD itself has `O(n)` rules — the family witnessing that "propagation of
/// a simple view update may require insertion of a subtree exponential in
/// the size of the DTD". Used by experiment E8.
pub fn exponential_dtd(alpha: &mut xvu_tree::Alphabet, n: usize) -> Dtd {
    let mut src = String::new();
    src.push_str(&format!("a -> a{n}.a{n}\n"));
    for i in (1..=n).rev() {
        src.push_str(&format!("a{i} -> a{}.a{}\n", i - 1, i - 1));
    }
    // a0 → ε by default
    crate::parser::parse_dtd(alpha, &src).expect("generated DTD is well-formed")
}

/// Computes minimal tree sizes for every symbol `0..alphabet_len`.
///
/// Fixpoint iteration: `minsize(a) = 1 + cost of the cheapest word of
/// D(a)` where letter `y` costs `minsize(y)`. Sizes start at `∞` and only
/// decrease; each full round either reaches the fixpoint or finalises at
/// least one more label, so at most `alphabet_len + 1` rounds run —
/// `O(|Σ| · |Σ| · |D| log |D|)` overall, polynomial as the paper requires.
pub fn min_sizes(dtd: &Dtd, alphabet_len: usize) -> MinSizes {
    let mut sizes = vec![INFINITE; alphabet_len];
    loop {
        let mut changed = false;
        for i in 0..alphabet_len {
            let label = Sym::from_index(i);
            let model = dtd.content_model(label);
            if let Some(best) = min_cost_word(model, &sizes) {
                let candidate = best.cost.saturating_add(1);
                if candidate < sizes[i] {
                    sizes[i] = candidate;
                    changed = true;
                }
            }
        }
        if !changed {
            return MinSizes { sizes };
        }
    }
}

/// Materialises a size-minimal tree satisfying `dtd` with root `label`,
/// using fresh identifiers from `gen`.
///
/// Fails with [`DtdError::Unsatisfiable`] when no tree exists and with
/// [`DtdError::WitnessBudgetExceeded`] when the minimal tree has more than
/// `budget` nodes (the paper's exponential family makes an unbounded
/// default dangerous; use insertlets for such DTDs).
pub fn minimal_witness(
    dtd: &Dtd,
    sizes: &MinSizes,
    label: Sym,
    gen: &mut NodeIdGen,
    budget: u64,
) -> Result<DocTree, DtdError> {
    let need = sizes.get(label);
    if need == INFINITE {
        return Err(DtdError::Unsatisfiable(label));
    }
    if need > budget {
        return Err(DtdError::WitnessBudgetExceeded {
            label,
            budget,
            needed: need,
        });
    }
    let mut tree = Tree::leaf(gen, label);
    let root = tree.root();
    fill_children(dtd, sizes, &mut tree, root, gen)?;
    debug_assert_eq!(tree.size() as u64, need);
    Ok(tree)
}

fn fill_children(
    dtd: &Dtd,
    sizes: &MinSizes,
    tree: &mut DocTree,
    node: xvu_tree::NodeId,
    gen: &mut NodeIdGen,
) -> Result<(), DtdError> {
    let label = tree.label(node);
    let model = dtd.content_model(label);
    let best =
        min_cost_word(model, sizes.as_cost_table()).expect("satisfiable label has a cheapest word");
    for y in best.word {
        let child = tree.add_child(node, gen, y);
        fill_children(dtd, sizes, tree, child, gen)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;
    use xvu_tree::Alphabet;

    #[test]
    fn minsize_for_paper_d0() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        // a, b, c are leaves: size 1. d → ε allowed: size 1. r → ε allowed.
        for l in ["r", "a", "b", "c", "d"] {
            assert_eq!(sizes.get(alpha.get(l).unwrap()), 1, "label {l}");
        }
    }

    #[test]
    fn minsize_with_required_children() {
        let mut alpha = Alphabet::new();
        // r needs a·(b+c)·d at least once; d needs (a+b)·c at least once.
        let dtd = parse_dtd(&mut alpha, "r -> a.(b+c).d\nd -> (a+b).c").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        let (r, d) = (alpha.get("r").unwrap(), alpha.get("d").unwrap());
        assert_eq!(sizes.get(d), 3); // d(a, c)
        assert_eq!(sizes.get(r), 1 + 1 + 1 + 3); // r(a, b, d(a,c))
    }

    #[test]
    fn unsatisfiable_label_is_infinite() {
        let mut alpha = Alphabet::new();
        // x requires itself forever.
        let dtd = parse_dtd(&mut alpha, "x -> x\nr -> x?").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        let (x, r) = (alpha.get("x").unwrap(), alpha.get("r").unwrap());
        assert!(!sizes.is_satisfiable(x));
        assert_eq!(sizes.get(r), 1); // can take the ε branch
        assert_eq!(sizes.unsatisfiable_labels().collect::<Vec<_>>(), vec![x]);
    }

    #[test]
    fn mutual_recursion_with_escape() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "p -> q\nq -> p + eps").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        let (p, q) = (alpha.get("p").unwrap(), alpha.get("q").unwrap());
        assert_eq!(sizes.get(q), 1);
        assert_eq!(sizes.get(p), 2);
    }

    use super::exponential_dtd;

    #[test]
    fn exponential_family_sizes() {
        // minsize(a_i) = 2^{i+1} − 1, minsize(a) = 2^{n+2} − 1.
        let n = 10;
        let mut alpha = Alphabet::new();
        let dtd = exponential_dtd(&mut alpha, n);
        let sizes = min_sizes(&dtd, alpha.len());
        for i in 0..=n {
            let ai = alpha.get(&format!("a{i}")).unwrap();
            assert_eq!(sizes.get(ai), (1u64 << (i + 1)) - 1, "a{i}");
        }
        let a = alpha.get("a").unwrap();
        assert_eq!(sizes.get(a), (1u64 << (n + 2)) - 1);
    }

    #[test]
    fn exponential_family_saturates_not_overflows() {
        let n = 80; // 2^82 ≫ u64::MAX
        let mut alpha = Alphabet::new();
        let dtd = exponential_dtd(&mut alpha, n);
        let sizes = min_sizes(&dtd, alpha.len());
        let a = alpha.get("a").unwrap();
        // Saturated to infinity-like magnitude but flagged satisfiable is
        // unacceptable — the label *is* satisfiable, just astronomically
        // large. We saturate to INFINITE and conservatively report it
        // unsatisfiable-at-scale; materialisation is impossible anyway.
        assert!(sizes.get(a) >= u64::MAX / 2);
    }

    #[test]
    fn witness_is_minimal_and_valid() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> a.(b+c).d\nd -> (a+b).c").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        let r = alpha.get("r").unwrap();
        let mut gen = NodeIdGen::new();
        let w = minimal_witness(&dtd, &sizes, r, &mut gen, 1_000).unwrap();
        assert_eq!(w.size() as u64, sizes.get(r));
        assert!(dtd.is_valid(&w));
        assert_eq!(w.label(w.root()), r);
    }

    #[test]
    fn witness_budget_is_enforced() {
        let mut alpha = Alphabet::new();
        let dtd = exponential_dtd(&mut alpha, 10);
        let sizes = min_sizes(&dtd, alpha.len());
        let a = alpha.get("a").unwrap();
        let mut gen = NodeIdGen::new();
        let err = minimal_witness(&dtd, &sizes, a, &mut gen, 100).unwrap_err();
        assert!(matches!(err, DtdError::WitnessBudgetExceeded { .. }));
        // With a generous budget it works and has the predicted size.
        let w = minimal_witness(&dtd, &sizes, a, &mut gen, 1 << 13).unwrap();
        assert_eq!(w.size() as u64, (1u64 << 12) - 1);
        assert!(dtd.is_valid(&w));
    }

    #[test]
    fn witness_for_unsatisfiable_label_errors() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "x -> x").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        let x = alpha.get("x").unwrap();
        let mut gen = NodeIdGen::new();
        assert_eq!(
            minimal_witness(&dtd, &sizes, x, &mut gen, 10).unwrap_err(),
            DtdError::Unsatisfiable(x)
        );
    }

    #[test]
    fn brute_force_agreement_on_small_dtds() {
        // Exhaustively verify minsize on a small DTD by enumerating all
        // trees up to size 6.
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> a.b?\na -> b.b + eps").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());

        // enumerate trees of each root label up to `max` nodes, smallest
        // valid size per label
        fn smallest(dtd: &Dtd, alpha: &Alphabet, label: Sym, max: usize) -> Option<usize> {
            // breadth-first over tree shapes: recursive generator
            fn gen_trees(dtd: &Dtd, alpha: &Alphabet, label: Sym, max: usize) -> Vec<usize> {
                if max == 0 {
                    return vec![];
                }
                // sizes of valid trees with this root, ≤ max
                let mut result = Vec::new();
                // enumerate words over alphabet up to length 2 with child
                // trees sizes — small-scale exhaustive search
                let syms: Vec<Sym> = alpha.syms().collect();
                // words of length 0..=2
                let mut words: Vec<Vec<Sym>> = vec![vec![]];
                for len in 1..=2 {
                    let mut next = Vec::new();
                    fn extend(syms: &[Sym], cur: Vec<Sym>, len: usize, out: &mut Vec<Vec<Sym>>) {
                        if cur.len() == len {
                            out.push(cur);
                            return;
                        }
                        for &s in syms {
                            let mut c = cur.clone();
                            c.push(s);
                            extend(syms, c, len, out);
                        }
                    }
                    extend(&syms, vec![], len, &mut next);
                    words.extend(next);
                }
                for w in words {
                    if !dtd.content_model(label).accepts(&w) {
                        continue;
                    }
                    // min sizes of children recursively
                    let mut total = 1usize;
                    let mut ok = true;
                    for &c in &w {
                        match gen_trees(dtd, alpha, c, max - 1).into_iter().min() {
                            Some(s) => total += s,
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok && total <= max {
                        result.push(total);
                    }
                }
                result
            }
            gen_trees(dtd, alpha, label, max).into_iter().min()
        }

        for l in ["r", "a", "b"] {
            let s = alpha.get(l).unwrap();
            let brute = smallest(&dtd, &alpha, s, 6).unwrap() as u64;
            assert_eq!(sizes.get(s), brute, "label {l}");
        }
    }
}
