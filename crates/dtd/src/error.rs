//! Errors for DTD parsing, validation, and witness construction.

use std::fmt;
use xvu_tree::{NodeId, Sym};

/// Errors raised by this crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DtdError {
    /// Parse error in DTD rule syntax.
    Parse {
        /// 1-based line of the error.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A label has two rules.
    DuplicateRule(String),
    /// The label admits no finite tree (unsatisfiable content model chain).
    Unsatisfiable(Sym),
    /// A minimal witness tree would exceed the node budget.
    ///
    /// The paper notes minimal trees can be exponential in `|D|`; callers
    /// are expected to fall back to insertlets.
    WitnessBudgetExceeded {
        /// The label whose witness was requested.
        label: Sym,
        /// The requested budget.
        budget: u64,
        /// The true minimal size (saturating).
        needed: u64,
    },
    /// An insertlet tree is invalid for its label.
    BadInsertlet {
        /// The label the insertlet was registered for.
        label: Sym,
        /// Why it was rejected.
        reason: String,
    },
    /// A tree failed validation.
    Invalid {
        /// The first offending node.
        node: NodeId,
        /// Its label.
        label: Sym,
    },
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdError::Parse { line, msg } => write!(f, "DTD parse error on line {line}: {msg}"),
            DtdError::DuplicateRule(l) => write!(f, "duplicate DTD rule for label {l:?}"),
            DtdError::Unsatisfiable(s) => {
                write!(f, "label {s:?} admits no finite tree under this DTD")
            }
            DtdError::WitnessBudgetExceeded {
                label,
                budget,
                needed,
            } => write!(
                f,
                "minimal witness for {label:?} needs {needed} nodes, budget is {budget}"
            ),
            DtdError::BadInsertlet { label, reason } => {
                write!(f, "invalid insertlet for {label:?}: {reason}")
            }
            DtdError::Invalid { node, label } => write!(
                f,
                "tree violates the DTD at node {node} (label {label:?}): child word not in content model"
            ),
        }
    }
}

impl std::error::Error for DtdError {}
