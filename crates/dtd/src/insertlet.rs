//! Insertlet packages (paper §5).
//!
//! > "An insertlet package for `D` is a collection `W = (W_a)_{a∈Σ}`
//! > containing for every `a ∈ Σ` an insertlet `W_a`, i.e. a minimal tree
//! > satisfying `D` with root label `a`. We remark that in practice it will
//! > not be necessary to specify an insertlet for every symbol."
//!
//! Insertlets decouple propagation from witness materialisation: the
//! algorithm looks fragments up instead of constructing them, which bounds
//! the output size by `|W|` and keeps the whole pipeline polynomial even
//! for DTDs whose minimal trees are exponential.

use crate::dtd::Dtd;
use crate::error::DtdError;
use crate::minsize::{minimal_witness, MinSizes};
use std::collections::HashMap;
use xvu_tree::{DocTree, NodeIdGen, Sym};

/// A collection of default document fragments, one per label, each a tree
/// satisfying the DTD with the matching root label.
///
/// Registration validates fragments; by default they must also be
/// *size-minimal* (the paper's definition). [`InsertletPackage::insert_non_minimal`]
/// relaxes minimality for administrators who prefer richer defaults — the
/// propagation cost model then charges the actual fragment size, so
/// "optimal" means optimal w.r.t. the chosen fragments.
#[derive(Clone, Debug, Default)]
pub struct InsertletPackage {
    templates: HashMap<Sym, DocTree>,
}

impl InsertletPackage {
    /// An empty package.
    pub fn new() -> InsertletPackage {
        InsertletPackage::default()
    }

    /// Registers a size-minimal insertlet for `label`.
    ///
    /// Rejects fragments whose root label differs, that violate the DTD, or
    /// that are larger than the minimal size.
    pub fn insert(
        &mut self,
        dtd: &Dtd,
        sizes: &MinSizes,
        label: Sym,
        tree: DocTree,
    ) -> Result<(), DtdError> {
        self.check(dtd, label, &tree)?;
        if tree.size() as u64 > sizes.get(label) {
            return Err(DtdError::BadInsertlet {
                label,
                reason: format!(
                    "insertlet has {} nodes but the minimal tree has {}",
                    tree.size(),
                    sizes.get(label)
                ),
            });
        }
        self.templates.insert(label, tree);
        Ok(())
    }

    /// Registers an insertlet that is valid but possibly larger than
    /// minimal.
    pub fn insert_non_minimal(
        &mut self,
        dtd: &Dtd,
        label: Sym,
        tree: DocTree,
    ) -> Result<(), DtdError> {
        self.check(dtd, label, &tree)?;
        self.templates.insert(label, tree);
        Ok(())
    }

    fn check(&self, dtd: &Dtd, label: Sym, tree: &DocTree) -> Result<(), DtdError> {
        if tree.label(tree.root()) != label {
            return Err(DtdError::BadInsertlet {
                label,
                reason: "root label does not match".to_owned(),
            });
        }
        if let Err(e) = dtd.validate(tree) {
            return Err(DtdError::BadInsertlet {
                label,
                reason: format!("fragment violates the DTD: {e}"),
            });
        }
        Ok(())
    }

    /// Whether a fragment is registered for `label`.
    pub fn contains(&self, label: Sym) -> bool {
        self.templates.contains_key(&label)
    }

    /// The registered template for `label` (identifiers are the template's
    /// own; use [`InsertletPackage::instantiate`] to obtain fresh copies).
    pub fn template(&self, label: Sym) -> Option<&DocTree> {
        self.templates.get(&label)
    }

    /// The size charged for inserting a `label` fragment: the insertlet
    /// size when registered, the minimal size otherwise.
    pub fn charge(&self, sizes: &MinSizes, label: Sym) -> u64 {
        match self.templates.get(&label) {
            Some(t) => t.size() as u64,
            None => sizes.get(label),
        }
    }

    /// Instantiates a fresh-identifier copy of the fragment for `label`,
    /// falling back to on-the-fly minimal-witness construction (bounded by
    /// `witness_budget`) when no insertlet is registered.
    pub fn instantiate(
        &self,
        dtd: &Dtd,
        sizes: &MinSizes,
        label: Sym,
        gen: &mut NodeIdGen,
        witness_budget: u64,
    ) -> Result<DocTree, DtdError> {
        match self.templates.get(&label) {
            Some(t) => Ok(t.with_fresh_ids(gen)),
            None => minimal_witness(dtd, sizes, label, gen, witness_budget),
        }
    }

    /// Builds a complete package of computed minimal witnesses for every
    /// satisfiable label in `0..alphabet_len`, bounded per label by
    /// `witness_budget`. Labels whose minimal tree exceeds the budget are
    /// skipped (propagation will error only if it actually needs them).
    pub fn minimal_package(
        dtd: &Dtd,
        sizes: &MinSizes,
        alphabet_len: usize,
        gen: &mut NodeIdGen,
        witness_budget: u64,
    ) -> InsertletPackage {
        let mut pkg = InsertletPackage::new();
        for i in 0..alphabet_len {
            let label = Sym::from_index(i);
            if !sizes.is_satisfiable(label) || sizes.get(label) > witness_budget {
                continue;
            }
            if let Ok(w) = minimal_witness(dtd, sizes, label, gen, witness_budget) {
                pkg.templates.insert(label, w);
            }
        }
        pkg
    }

    /// Number of registered fragments.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the package is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Total node count across fragments — the `|W|` of Theorem 6.
    pub fn total_size(&self) -> usize {
        self.templates.values().map(DocTree::size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minsize::min_sizes;
    use crate::parser::parse_dtd;
    use xvu_tree::{parse_term, Alphabet};

    fn setup() -> (Alphabet, Dtd, MinSizes) {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> a.(b+c).d\nd -> (a+b).c").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        (alpha, dtd, sizes)
    }

    #[test]
    fn insert_valid_minimal_fragment() {
        let (mut alpha, dtd, sizes) = setup();
        let mut gen = NodeIdGen::starting_at(100);
        let frag = parse_term(&mut alpha, &mut gen, "d(b, c)").unwrap();
        let d = alpha.get("d").unwrap();
        let mut pkg = InsertletPackage::new();
        pkg.insert(&dtd, &sizes, d, frag).unwrap();
        assert!(pkg.contains(d));
        assert_eq!(pkg.charge(&sizes, d), 3);
    }

    #[test]
    fn reject_wrong_root_label() {
        let (mut alpha, dtd, sizes) = setup();
        let mut gen = NodeIdGen::starting_at(100);
        let frag = parse_term(&mut alpha, &mut gen, "a").unwrap();
        let d = alpha.get("d").unwrap();
        let err = InsertletPackage::new()
            .insert(&dtd, &sizes, d, frag)
            .unwrap_err();
        assert!(matches!(err, DtdError::BadInsertlet { .. }));
    }

    #[test]
    fn reject_invalid_fragment() {
        let (mut alpha, dtd, sizes) = setup();
        let mut gen = NodeIdGen::starting_at(100);
        let frag = parse_term(&mut alpha, &mut gen, "d(c)").unwrap();
        let d = alpha.get("d").unwrap();
        let err = InsertletPackage::new()
            .insert(&dtd, &sizes, d, frag)
            .unwrap_err();
        assert!(matches!(err, DtdError::BadInsertlet { .. }));
    }

    #[test]
    fn reject_oversized_when_minimal_required() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> a*").unwrap();
        let sizes = min_sizes(&dtd, alpha.len());
        let mut gen = NodeIdGen::new();
        let frag = parse_term(&mut alpha, &mut gen, "r(a, a)").unwrap();
        let r = alpha.get("r").unwrap();
        let mut pkg = InsertletPackage::new();
        let err = pkg.insert(&dtd, &sizes, r, frag.clone()).unwrap_err();
        assert!(matches!(err, DtdError::BadInsertlet { .. }));
        // but the relaxed entry point accepts it, and charges its size
        pkg.insert_non_minimal(&dtd, r, frag).unwrap();
        assert_eq!(pkg.charge(&sizes, r), 3);
    }

    #[test]
    fn instantiate_uses_fresh_ids() {
        let (mut alpha, dtd, sizes) = setup();
        let mut gen = NodeIdGen::starting_at(100);
        let frag = parse_term(&mut alpha, &mut gen, "d(b, c)").unwrap();
        let d = alpha.get("d").unwrap();
        let mut pkg = InsertletPackage::new();
        pkg.insert(&dtd, &sizes, d, frag).unwrap();
        let t1 = pkg.instantiate(&dtd, &sizes, d, &mut gen, 100).unwrap();
        let t2 = pkg.instantiate(&dtd, &sizes, d, &mut gen, 100).unwrap();
        assert!(t1.isomorphic(&t2));
        for id in t1.node_ids() {
            assert!(!t2.contains(id));
        }
    }

    #[test]
    fn instantiate_falls_back_to_witness() {
        let (alpha, dtd, sizes) = setup();
        let d = alpha.get("d").unwrap();
        let pkg = InsertletPackage::new();
        let mut gen = NodeIdGen::starting_at(500);
        let t = pkg.instantiate(&dtd, &sizes, d, &mut gen, 100).unwrap();
        assert_eq!(t.size() as u64, sizes.get(d));
        assert!(dtd.is_valid(&t));
    }

    #[test]
    fn minimal_package_covers_satisfiable_labels() {
        let (alpha, dtd, sizes) = setup();
        let mut gen = NodeIdGen::starting_at(1000);
        let pkg = InsertletPackage::minimal_package(&dtd, &sizes, alpha.len(), &mut gen, 1_000);
        assert_eq!(pkg.len(), alpha.len());
        assert!(pkg.total_size() > 0);
        for s in alpha.syms() {
            assert_eq!(pkg.charge(&sizes, s), sizes.get(s));
        }
    }

    #[test]
    fn minimal_package_skips_over_budget_labels() {
        let mut alpha = Alphabet::new();
        let dtd = crate::minsize::exponential_dtd(&mut alpha, 10);
        let sizes = min_sizes(&dtd, alpha.len());
        let mut gen = NodeIdGen::new();
        let pkg = InsertletPackage::minimal_package(&dtd, &sizes, alpha.len(), &mut gen, 50);
        let a = alpha.get("a").unwrap();
        assert!(!pkg.contains(a));
        // small members are still covered: a0..a4 have sizes ≤ 31 ≤ 50
        let a4 = alpha.get("a4").unwrap();
        assert!(pkg.contains(a4));
    }
}
