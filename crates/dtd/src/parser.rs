//! Textual DTD rule syntax.
//!
//! One rule per line, in the paper's notation with ASCII arrows:
//!
//! ```text
//! # comment lines and blank lines are ignored
//! r -> (a.(b+c).d)*
//! d -> ((a+b).c)*
//! ```
//!
//! Labels mentioned only on right-hand sides get the default `ε` rule.

use crate::dtd::Dtd;
use crate::error::DtdError;
use xvu_automata::parse_regex;
use xvu_tree::Alphabet;

/// Parses a multi-line DTD description. Labels are interned into `alpha`.
pub fn parse_dtd(alpha: &mut Alphabet, src: &str) -> Result<Dtd, DtdError> {
    let mut dtd = Dtd::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (lhs, rhs) = line.split_once("->").ok_or_else(|| DtdError::Parse {
            line: lineno + 1,
            msg: "expected 'label -> regex'".to_owned(),
        })?;
        let lhs = lhs.trim();
        if lhs.is_empty()
            || !lhs
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
        {
            return Err(DtdError::Parse {
                line: lineno + 1,
                msg: format!("bad label {lhs:?}"),
            });
        }
        let label = alpha.intern(lhs);
        if dtd.has_rule(label) {
            return Err(DtdError::DuplicateRule(lhs.to_owned()));
        }
        let re = parse_regex(alpha, rhs.trim()).map_err(|e| DtdError::Parse {
            line: lineno + 1,
            msg: e.to_string(),
        })?;
        dtd.set_rule(label, &re);
    }
    Ok(dtd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_dtd() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(
            &mut alpha,
            "# paper D0\n\
             r -> (a.(b+c).d)*\n\
             \n\
             d -> ((a+b).c)*\n",
        )
        .unwrap();
        let r = alpha.get("r").unwrap();
        let d = alpha.get("d").unwrap();
        let a = alpha.get("a").unwrap();
        assert!(dtd.has_rule(r));
        assert!(dtd.has_rule(d));
        assert!(!dtd.has_rule(a));
    }

    #[test]
    fn rejects_missing_arrow() {
        let mut alpha = Alphabet::new();
        let err = parse_dtd(&mut alpha, "r (a)*").unwrap_err();
        assert!(matches!(err, DtdError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_duplicate_rules() {
        let mut alpha = Alphabet::new();
        let err = parse_dtd(&mut alpha, "r -> a\nr -> b").unwrap_err();
        assert_eq!(err, DtdError::DuplicateRule("r".to_owned()));
    }

    #[test]
    fn rejects_bad_regex_with_line_number() {
        let mut alpha = Alphabet::new();
        let err = parse_dtd(&mut alpha, "r -> a\nd -> (a").unwrap_err();
        assert!(matches!(err, DtdError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_bad_label() {
        let mut alpha = Alphabet::new();
        let err = parse_dtd(&mut alpha, "r r -> a").unwrap_err();
        assert!(matches!(err, DtdError::Parse { .. }));
    }
}
