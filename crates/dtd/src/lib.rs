//! Document Type Definitions for the element-only tree model.
//!
//! A DTD (paper §2) is a function `D : Σ → NFA` mapping each label to an
//! automaton over `Σ` constraining the sequences of children of nodes with
//! that label. A tree `t` satisfies `D` iff at every node the word of child
//! labels belongs to the content model of the node's label. Deliberately
//! per the paper, no root label is required — tree *fragments* validate
//! too — and labels without an explicit rule default to `ε` (leaf-only).
//!
//! On top of validation this crate provides the quantities the paper's
//! constructions consume:
//!
//! * [`MinSizes`] — the minimal size of a tree satisfying `D` with a given
//!   root label, computed as a fixpoint over cheapest content words
//!   ([`min_sizes`]). This is the weight of every "invisible insert" edge,
//!   and its finiteness is exactly DTD label satisfiability.
//! * [`minimal_witness`] — materialises a size-minimal tree for a label.
//!   Minimal trees can be **exponential** in `|D|` (paper §5), so
//!   materialisation takes an explicit node budget.
//! * [`InsertletPackage`] — the paper's *insertlets*: administrator-chosen
//!   default fragments used instead of computed witnesses, making the
//!   end-to-end algorithm polynomial in `|D| + |t| + |S| + |W|`.
//!
//! # Paper cross-reference
//!
//! | paper | here |
//! |-------|------|
//! | DTDs `D : Σ → NFA`, validity `t ∈ L(D)` (§2) | [`Dtd`], [`Dtd::is_valid`], [`Dtd::validate`] |
//! | rule syntax `r -> (a.(b+c).d)*` (Fig. 2) | [`parse_dtd`] |
//! | minimal satisfying trees and their exponential blow-up (§5) | [`min_sizes`], [`minimal_witness`], [`exponential_dtd`] |
//! | insertlet packages `W` making Theorem 6 polynomial | [`InsertletPackage`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtd;
mod error;
mod insertlet;
mod minsize;
mod parser;

pub use dtd::{Dtd, Violation};
pub use error::DtdError;
pub use insertlet::InsertletPackage;
pub use minsize::INFINITE_SIZE;
pub use minsize::{exponential_dtd, min_sizes, minimal_witness, MinSizes};
pub use parser::parse_dtd;
