//! The DTD type and tree validation.

use crate::error::DtdError;
use std::collections::HashMap;
use xvu_automata::{glushkov, Nfa, Regex, StateId};
use xvu_tree::{DocTree, NodeId, Sym};

/// A Document Type Definition: `D : Σ → NFA`.
///
/// Labels without an explicit rule have the default content model `ε`
/// (leaves only) — the paper's convention "if for a symbol `a` no rule is
/// given, then `a → ε` is assumed". No root label is imposed, so arbitrary
/// tree fragments can be validated.
#[derive(Clone, Debug)]
pub struct Dtd {
    rules: HashMap<Sym, Nfa>,
    /// Shared default automaton accepting exactly the empty word.
    eps: Nfa,
}

/// A single validation violation: the node whose child word is not in its
/// label's content model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The offending node.
    pub node: NodeId,
    /// Its label.
    pub label: Sym,
    /// Its child-label word.
    pub child_word: Vec<Sym>,
}

impl Default for Dtd {
    fn default() -> Dtd {
        Dtd::new()
    }
}

impl Dtd {
    /// An empty DTD: every label is a leaf (`a → ε` for all `a`).
    pub fn new() -> Dtd {
        let mut eps = Nfa::new(1, StateId(0));
        eps.set_accepting(StateId(0), true);
        Dtd {
            rules: HashMap::new(),
            eps,
        }
    }

    /// Sets the content model of `label` from a regular expression
    /// (Glushkov construction).
    pub fn set_rule(&mut self, label: Sym, content: &Regex) {
        self.set_rule_nfa(label, glushkov(content));
    }

    /// Sets the content model of `label` directly as an automaton.
    pub fn set_rule_nfa(&mut self, label: Sym, nfa: Nfa) {
        self.rules.insert(label, nfa);
    }

    /// Whether `label` has an explicit rule.
    pub fn has_rule(&self, label: Sym) -> bool {
        self.rules.contains_key(&label)
    }

    /// The content model of `label` — the automaton `D(a)`. Labels without
    /// an explicit rule yield the `ε` automaton.
    pub fn content_model(&self, label: Sym) -> &Nfa {
        self.rules.get(&label).unwrap_or(&self.eps)
    }

    /// Iterates over labels with explicit rules.
    pub fn ruled_labels(&self) -> impl Iterator<Item = Sym> + '_ {
        self.rules.keys().copied()
    }

    /// The paper's size measure: sum of the sizes of all automata used.
    pub fn size(&self) -> usize {
        self.rules.values().map(Nfa::size).sum()
    }

    /// Labels whose content-model automaton is nondeterministic.
    ///
    /// W3C DTDs require 1-unambiguous content models (whose Glushkov
    /// automata are deterministic); the paper's typing-based selection
    /// (§5) also assumes determinism. This reports violations for
    /// diagnostics — the propagation machinery itself works for arbitrary
    /// NFAs.
    pub fn nondeterministic_labels(&self) -> Vec<Sym> {
        let mut labels: Vec<Sym> = self
            .rules
            .iter()
            .filter(|(_, nfa)| !nfa.is_deterministic())
            .map(|(&l, _)| l)
            .collect();
        labels.sort();
        labels
    }

    /// Checks whether a single node's children satisfy its content model.
    pub fn node_is_valid(&self, t: &DocTree, n: NodeId) -> bool {
        let word = t.child_word(n);
        self.content_model(t.label(n)).accepts(&word)
    }

    /// Whether `t ∈ L(D)` (every node's child word is in its content
    /// model). `L(D)` contains only non-empty trees, which the tree type
    /// guarantees structurally.
    pub fn is_valid(&self, t: &DocTree) -> bool {
        t.preorder().all(|n| self.node_is_valid(t, n))
    }

    /// Validates `t`, returning the first violation in document order.
    pub fn validate(&self, t: &DocTree) -> Result<(), DtdError> {
        match self.first_violation(t) {
            None => Ok(()),
            Some(v) => Err(DtdError::Invalid {
                node: v.node,
                label: v.label,
            }),
        }
    }

    /// The first violation in document order, if any.
    pub fn first_violation(&self, t: &DocTree) -> Option<Violation> {
        t.preorder().find_map(|n| {
            let word = t.child_word(n);
            if self.content_model(t.label(n)).accepts(&word) {
                None
            } else {
                Some(Violation {
                    node: n,
                    label: t.label(n),
                    child_word: word,
                })
            }
        })
    }

    /// All violations in document order (diagnostics).
    pub fn violations(&self, t: &DocTree) -> Vec<Violation> {
        t.preorder()
            .filter_map(|n| {
                let word = t.child_word(n);
                if self.content_model(t.label(n)).accepts(&word) {
                    None
                } else {
                    Some(Violation {
                        node: n,
                        label: t.label(n),
                        child_word: word,
                    })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;
    use xvu_tree::{parse_term, Alphabet, NodeIdGen};

    /// The paper's DTD `D0`: `r → (a·(b+c)·d)*`, `d → ((a+b)·c)*`.
    fn d0(alpha: &mut Alphabet) -> Dtd {
        parse_dtd(
            alpha,
            "r -> (a.(b+c).d)*\n\
             d -> ((a+b).c)*",
        )
        .unwrap()
    }

    #[test]
    fn t0_satisfies_d0() {
        // Paper Fig. 1: t0 = r(a, b, d(a, c), a, c, d(b, c))
        let mut alpha = Alphabet::new();
        let dtd = d0(&mut alpha);
        let mut gen = NodeIdGen::new();
        let t0 = parse_term(&mut alpha, &mut gen, "r(a, b, d(a, c), a, c, d(b, c))").unwrap();
        assert!(dtd.is_valid(&t0));
        dtd.validate(&t0).unwrap();
    }

    #[test]
    fn invalid_tree_is_rejected_with_location() {
        let mut alpha = Alphabet::new();
        let dtd = d0(&mut alpha);
        let mut gen = NodeIdGen::new();
        // r(a, b) is missing the closing d.
        let t = parse_term(&mut alpha, &mut gen, "r(a, b)").unwrap();
        let v = dtd.first_violation(&t).unwrap();
        assert_eq!(v.node, t.root());
        assert!(!dtd.is_valid(&t));
    }

    #[test]
    fn default_rule_is_epsilon() {
        let mut alpha = Alphabet::new();
        let dtd = d0(&mut alpha);
        let mut gen = NodeIdGen::new();
        // 'a' has no rule, so a(c) is invalid while a alone is fine.
        let bad = parse_term(&mut alpha, &mut gen, "r(a(c), b, d)").unwrap();
        assert!(!dtd.is_valid(&bad));
        let a_leaf = parse_term(&mut alpha, &mut gen, "a").unwrap();
        assert!(dtd.is_valid(&a_leaf));
    }

    #[test]
    fn fragments_validate_without_root_constraint() {
        // Paper: "We omit this requirement as this will allow us to easily
        // consider tree fragments that satisfy the DTD."
        let mut alpha = Alphabet::new();
        let dtd = d0(&mut alpha);
        let mut gen = NodeIdGen::new();
        let frag = parse_term(&mut alpha, &mut gen, "d(a, c, b, c)").unwrap();
        assert!(dtd.is_valid(&frag));
    }

    #[test]
    fn violations_lists_every_bad_node() {
        let mut alpha = Alphabet::new();
        let dtd = d0(&mut alpha);
        let mut gen = NodeIdGen::new();
        let t = parse_term(&mut alpha, &mut gen, "r(d(a), d(b))").unwrap();
        // root bad (word d d), both d children bad (words a and b).
        assert_eq!(dtd.violations(&t).len(), 3);
    }

    #[test]
    fn nondeterminism_is_reported() {
        let mut alpha = Alphabet::new();
        let dtd = parse_dtd(&mut alpha, "r -> a.b + a.c\nd -> (a.b)*").unwrap();
        let r = alpha.get("r").unwrap();
        assert_eq!(dtd.nondeterministic_labels(), vec![r]);
        let clean = d0(&mut alpha);
        assert!(clean.nondeterministic_labels().is_empty());
    }

    #[test]
    fn size_sums_automata() {
        let mut alpha = Alphabet::new();
        let dtd = d0(&mut alpha);
        assert!(dtd.size() > 0);
        assert_eq!(Dtd::new().size(), 0);
    }
}
