//! Shared helpers for the benchmark harness and the `experiments` binary.
//!
//! Everything here is deterministic: scaled hospital instances, generated
//! random instances, and the D2/D3/exponential fixtures, packaged so both
//! Criterion benches and the table-printing binary drive identical
//! workloads.
//!
//! # Paper cross-reference
//!
//! | paper | here |
//! |-------|------|
//! | polynomial complexity of Theorem 6, measured | `benches/scaling.rs` (E9) over [`hospital_instance`] / [`random_instance`] |
//! | Fig. 7 propagation and the `D3` repair contrast (§6.2) | `benches/baseline.rs` |
//! | per-phase costs of the §4–§5 machinery | `benches/paper_micro.rs`, `benches/ablation.rs` |
//! | the experiment tables E1–E13 | `src/bin/experiments.rs` |

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};
use xvu_dtd::{Dtd, InsertletPackage};
use xvu_edit::Script;
use xvu_propagate::{propagate, Config, Engine, Instance, Propagation};
use xvu_tree::{Alphabet, DocTree, NodeIdGen, Sym};
use xvu_view::Annotation;
use xvu_workload::scenario::{admit_patient, hospital, hospital_doc, Hospital};
use xvu_workload::{
    generate_annotation, generate_doc, generate_dtd, generate_update, ChurnConfig, ChurnStream,
    DocGenConfig, DtdGenConfig, UpdateGenConfig,
};

/// A fully assembled, owned problem instance (the borrow-free bundle the
/// benches iterate over).
pub struct OwnedInstance {
    /// The alphabet.
    pub alpha: Alphabet,
    /// The schema.
    pub dtd: Dtd,
    /// The view definition.
    pub ann: Annotation,
    /// The source document.
    pub doc: DocTree,
    /// The view update.
    pub update: Script,
}

impl OwnedInstance {
    /// Runs the full propagation pipeline once.
    pub fn propagate(&self) -> Propagation {
        let inst = Instance::new(
            &self.dtd,
            &self.ann,
            &self.doc,
            &self.update,
            self.alpha.len(),
        )
        .expect("valid instance");
        propagate(&inst, &InsertletPackage::new(), &Config::default()).expect("Theorem 5")
    }

    /// Builds the validated [`Instance`] view of this bundle.
    pub fn instance(&self) -> Instance<'_> {
        Instance::new(
            &self.dtd,
            &self.ann,
            &self.doc,
            &self.update,
            self.alpha.len(),
        )
        .expect("valid instance")
    }

    /// Compiles an [`Engine`] for this bundle's `(Σ, D, A)` triple — the
    /// amortizable, update-independent half of the pipeline.
    pub fn engine(&self) -> Engine {
        Engine::builder()
            .alphabet(self.alpha.clone())
            .dtd(self.dtd.clone())
            .annotation(self.ann.clone())
            .build()
            .expect("complete engine")
    }

    /// Like [`OwnedInstance::engine`] but with the fleet-wide shared
    /// memo tier switched off — the session-cache-only baseline the
    /// cross-document rows compare against.
    pub fn engine_private(&self) -> Engine {
        Engine::builder()
            .alphabet(self.alpha.clone())
            .dtd(self.dtd.clone())
            .annotation(self.ann.clone())
            .shared_cache(false)
            .build()
            .expect("complete engine")
    }
}

/// A hospital document plus `k` distinct single-admission updates, all
/// against the same source — the repeated-update (what-if) workload for
/// the one-shot vs engine-amortized comparison.
///
/// `departments` and `k` must be ≥ 1.
pub fn hospital_update_batch(
    departments: usize,
    patients_per_dept: usize,
    k: usize,
) -> (OwnedInstance, Vec<Script>) {
    assert!(
        departments > 0,
        "hospital_update_batch: departments must be ≥ 1"
    );
    assert!(k > 0, "hospital_update_batch: k must be ≥ 1");
    let Hospital { alpha, dtd, ann } = hospital();
    let h = Hospital {
        alpha: alpha.clone(),
        dtd: dtd.clone(),
        ann: ann.clone(),
    };
    let mut gen = NodeIdGen::new();
    let doc = hospital_doc(&h, departments, patients_per_dept, &mut gen);
    let updates: Vec<Script> = (0..k)
        .map(|i| admit_patient(&h, &doc, i % departments, &mut gen))
        .collect();
    let update = updates[0].clone();
    (
        OwnedInstance {
            alpha,
            dtd,
            ann,
            doc,
            update,
        },
        updates,
    )
}

/// A hospital admission at the given scale (`departments ×
/// patients_per_dept`, 8 source nodes per patient).
pub fn hospital_instance(departments: usize, patients_per_dept: usize) -> OwnedInstance {
    let Hospital { alpha, dtd, ann } = hospital();
    let h = Hospital {
        alpha: alpha.clone(),
        dtd: dtd.clone(),
        ann: ann.clone(),
    };
    let mut gen = NodeIdGen::new();
    let doc = hospital_doc(&h, departments, patients_per_dept, &mut gen);
    let update = admit_patient(&h, &doc, departments / 2, &mut gen);
    OwnedInstance {
        alpha,
        dtd,
        ann,
        doc,
        update,
    }
}

/// A random generated instance: `labels`-symbol DTD, document of roughly
/// `max_nodes`, `ops`-operation update. Deterministic in `seed`.
pub fn random_instance(labels: usize, max_nodes: usize, ops: usize, seed: u64) -> OwnedInstance {
    let mut alpha = Alphabet::new();
    let dtd = generate_dtd(
        &mut alpha,
        &DtdGenConfig {
            labels,
            ..DtdGenConfig::default()
        },
        seed,
    );
    let ann = generate_annotation(&alpha, 0.3, seed ^ 101, &[]);
    let root = alpha.get("l0").expect("root");
    let mut gen = NodeIdGen::new();
    let doc = generate_doc(
        &dtd,
        alpha.len(),
        root,
        &DocGenConfig {
            max_nodes,
            max_depth: 8,
            max_children: 10,
            stop_bias: 0.05,
        },
        seed ^ 202,
        &mut gen,
    );
    let update = generate_update(
        &dtd,
        &ann,
        alpha.len(),
        &doc,
        &UpdateGenConfig {
            ops,
            ..UpdateGenConfig::default()
        },
        seed ^ 303,
        &mut gen,
    );
    OwnedInstance {
        alpha,
        dtd,
        ann,
        doc,
        update,
    }
}

/// A random document plus `k` distinct generated updates, all against the
/// same source (seeded, deterministic) — the schema-heavy repeated-update
/// workload where engine amortization dominates.
///
/// `k` must be ≥ 1.
pub fn random_update_batch(
    labels: usize,
    max_nodes: usize,
    ops: usize,
    k: usize,
    seed: u64,
) -> (OwnedInstance, Vec<Script>) {
    assert!(k > 0, "random_update_batch: k must be ≥ 1");
    let mut alpha = Alphabet::new();
    let dtd = generate_dtd(
        &mut alpha,
        &DtdGenConfig {
            labels,
            ..DtdGenConfig::default()
        },
        seed,
    );
    let ann = generate_annotation(&alpha, 0.3, seed ^ 101, &[]);
    let root = alpha.get("l0").expect("root");
    let mut gen = NodeIdGen::new();
    let doc = generate_doc(
        &dtd,
        alpha.len(),
        root,
        &DocGenConfig {
            max_nodes,
            max_depth: 8,
            max_children: 10,
            stop_bias: 0.05,
        },
        seed ^ 202,
        &mut gen,
    );
    let updates: Vec<Script> = (0..k as u64)
        .map(|i| {
            generate_update(
                &dtd,
                &ann,
                alpha.len(),
                &doc,
                &UpdateGenConfig {
                    ops,
                    ..UpdateGenConfig::default()
                },
                seed ^ (303 + i),
                &mut gen,
            )
        })
        .collect();
    let update = updates[0].clone();
    (
        OwnedInstance {
            alpha,
            dtd,
            ann,
            doc,
            update,
        },
        updates,
    )
}

/// A hospital document plus a pregenerated `k`-step **churn** stream:
/// localized small random edits where update `i+1` applies to the view of
/// the document *after* update `i` was propagated and committed (the
/// session serving regime, unlike [`hospital_update_batch`] where every
/// update targets the same document).
///
/// The stream is produced by simulating one session; because propagation
/// is deterministic and cache-invariant, replaying the same scripts
/// through any session opened on the same document (cache on or off)
/// reproduces the same evolution, so the batch can be timed repeatedly
/// via [`run_churn_session`].
pub fn hospital_churn_batch(
    departments: usize,
    patients_per_dept: usize,
    k: usize,
    seed: u64,
) -> (OwnedInstance, Vec<Script>) {
    assert!(k > 0, "hospital_churn_batch: k must be ≥ 1");
    let Hospital { alpha, dtd, ann } = hospital();
    let h = Hospital {
        alpha: alpha.clone(),
        dtd: dtd.clone(),
        ann: ann.clone(),
    };
    let mut gen = NodeIdGen::new();
    let doc = hospital_doc(&h, departments, patients_per_dept, &mut gen);
    let oi = OwnedInstance {
        alpha,
        dtd,
        ann,
        doc,
        update: Script::leaf_with_id(
            xvu_tree::NodeId(0),
            xvu_edit::ELabel::nop(Sym::from_index(0)),
        ),
    };
    let engine = oi.engine();
    let mut session = engine.open(&oi.doc).expect("hospital doc is valid");
    let mut stream = ChurnStream::new(
        &oi.dtd,
        &oi.ann,
        oi.alpha.len(),
        ChurnConfig::default(),
        seed,
    );
    let mut updates = Vec::with_capacity(k);
    for _ in 0..k {
        let mut g = session.id_gen();
        let u = stream.next_update(session.document(), &mut g);
        let prop = session.propagate(&u).expect("churn update propagates");
        session.commit(&prop).expect("churn propagation commits");
        updates.push(u);
    }
    let update = updates[0].clone();
    (OwnedInstance { update, ..oi }, updates)
}

/// Replays a churn stream through one session: per update, propagate then
/// commit, with the session's propagation cache forced on or off. Returns
/// the summed propagation cost (a cache-invariance checksum: both settings
/// must agree).
pub fn run_churn_session(
    engine: &Engine,
    doc: &DocTree,
    updates: &[Script],
    cache_enabled: bool,
) -> u64 {
    let mut session = engine.open(doc).expect("valid document");
    session.set_cache_enabled(cache_enabled);
    let mut total = 0u64;
    for u in updates {
        let prop = session.propagate(u).expect("churn update propagates");
        total += prop.cost;
        session.commit(&prop).expect("churn propagation commits");
    }
    total
}

/// Per-regime coverage summary over the enumerated grammar space (see
/// `xvu_workload::enumo`): how many instances the regime contributes, how
/// expensive their propagations are, and the **cost amplification** — the
/// ratio of total optimal source-edit cost to total view-edit cost. A
/// ratio far above 1 marks a blowup regime: hidden mandatory material is
/// minted (or discarded) for every visible edit.
pub struct RegimeRow {
    /// Regime label (`plain`, `wide-alternation`, `heavy-hiding`,
    /// `deep-recursion`).
    pub regime: &'static str,
    /// Enumerated instances in this regime.
    pub instances: usize,
    /// Summed `cost(update)` over the regime's view updates.
    pub update_cost: u64,
    /// Summed optimal propagation cost over the regime.
    pub propagation_cost: u64,
    /// `propagation_cost / update_cost` (0 when no update cost).
    pub amplification: f64,
    /// Median wall time of one-shot-propagating the whole regime, ns.
    pub median_ns: u128,
    /// Largest optimal-propagation count seen in the regime.
    pub max_count: u128,
}

/// Measures one-shot propagation over every instance the default
/// enumeration budget generates, grouped by regime. Deterministic in the
/// budget; `runs` controls the median.
pub fn enumerated_regime_rows(runs: usize) -> Vec<RegimeRow> {
    use xvu_workload::enumo::{enumerate_instances, EnumBudget};

    let instances = enumerate_instances(&EnumBudget::default());
    let mut rows: Vec<RegimeRow> = Vec::new();
    for regime in [
        "plain",
        "wide-alternation",
        "heavy-hiding",
        "deep-recursion",
    ] {
        let group: Vec<_> = instances.iter().filter(|i| i.regime() == regime).collect();
        if group.is_empty() {
            continue;
        }
        let mut update_cost = 0u64;
        let mut propagation_cost = 0u64;
        let mut max_count = 0u128;
        for inst in &group {
            let i = Instance::new(
                &inst.dtd,
                &inst.ann,
                &inst.doc,
                &inst.update,
                inst.alpha.len(),
            )
            .expect("enumerated instance is valid");
            let p = propagate(&i, &InsertletPackage::new(), &Config::default()).expect("Theorem 5");
            update_cost += xvu_edit::cost(&inst.update) as u64;
            propagation_cost += p.cost;
            if let Some(c) = xvu_propagate::count_optimal_propagations(&p.forest) {
                max_count = max_count.max(c);
            }
        }
        let median_ns = median_time(runs, || {
            let mut total = 0u64;
            for inst in &group {
                let i = Instance::new(
                    &inst.dtd,
                    &inst.ann,
                    &inst.doc,
                    &inst.update,
                    inst.alpha.len(),
                )
                .expect("enumerated instance is valid");
                total += propagate(&i, &InsertletPackage::new(), &Config::default())
                    .expect("Theorem 5")
                    .cost;
            }
            std::hint::black_box(total);
        })
        .as_nanos();
        rows.push(RegimeRow {
            regime,
            instances: group.len(),
            update_cost,
            propagation_cost,
            amplification: if update_cost == 0 {
                0.0
            } else {
                propagation_cost as f64 / update_cost as f64
            },
            median_ns,
            max_count,
        });
    }
    rows
}

/// Head-to-head kernel-layout arms: the CSR [`xvu_propagate::pathgraph`]
/// kernel (fresh-scratch and pooled-scratch) against a faithful mirror of
/// the jagged `Vec<Vec<_>>` adjacency layout it replaced. The benches in
/// `benches/kernel_layouts.rs` and the `kernel` section of
/// `BENCH_propagate.json` both drive these on graphs harvested from real
/// propagation forests, so the comparison measures the layouts on the
/// exact vertex/edge distributions the algorithm produces — not on
/// synthetic graphs.
pub mod kernel {
    use super::OwnedInstance;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    use xvu_dtd::{min_sizes, InsertletPackage};
    use xvu_edit::Script;
    use xvu_propagate::{CostModel, GraphScratch, Instance, PropGraph, PropagationForest};
    use xvu_tree::DocTree;
    use xvu_view::Annotation;

    /// Clones every per-node propagation graph out of one instance's
    /// forest — the query set the kernel arms race over.
    pub fn harvest_graphs(oi: &OwnedInstance) -> Vec<PropGraph> {
        harvest_from(&oi.dtd, &oi.ann, &oi.doc, &oi.update, oi.alpha.len())
    }

    /// [`harvest_graphs`] over unbundled parts (the enumerated-instance
    /// shape).
    pub fn harvest_from(
        dtd: &xvu_dtd::Dtd,
        ann: &Annotation,
        doc: &DocTree,
        update: &Script,
        alpha_len: usize,
    ) -> Vec<PropGraph> {
        let inst = Instance::new(dtd, ann, doc, update, alpha_len).expect("valid instance");
        let sizes = min_sizes(dtd, alpha_len);
        let pkg = InsertletPackage::new();
        let cm = CostModel {
            sizes: &sizes,
            insertlets: &pkg,
        };
        let forest = PropagationForest::build(&inst, &cm).expect("Theorem 5");
        forest.graphs().map(|(_, g)| g.clone()).collect()
    }

    /// A faithful mirror of the pre-CSR adjacency layout: one
    /// heap-allocated `Vec` per vertex. Its [`JaggedMirror::best_cost`]
    /// runs the same Dijkstra as the kernel but allocates its distance
    /// array and heap per call — the fresh-allocation baseline both
    /// layout questions (contiguity, pooling) are measured against.
    pub struct JaggedMirror {
        out: Vec<Vec<(u32, u64)>>,
        goal: Vec<bool>,
        start: u32,
    }

    impl JaggedMirror {
        /// Mirrors a harvested graph, preserving per-row edge order.
        pub fn of(g: &PropGraph) -> JaggedMirror {
            let mut out = vec![Vec::new(); g.n_vertices()];
            for (_, e) in g.edges() {
                out[e.from as usize].push((e.to, e.weight));
            }
            JaggedMirror {
                out,
                goal: (0..g.n_vertices() as u32).map(|v| g.is_goal(v)).collect(),
                start: g.start(),
            }
        }

        /// Cheapest start→goal cost with per-call allocation (the old
        /// kernel's behaviour).
        pub fn best_cost(&self) -> Option<u64> {
            let mut dist = vec![u64::MAX; self.out.len()];
            let mut heap = BinaryHeap::new();
            dist[self.start as usize] = 0;
            heap.push(Reverse((0u64, self.start)));
            while let Some(Reverse((d, v))) = heap.pop() {
                if d > dist[v as usize] {
                    continue;
                }
                for &(to, w) in &self.out[v as usize] {
                    let nd = d.saturating_add(w);
                    if nd < dist[to as usize] && nd != u64::MAX {
                        dist[to as usize] = nd;
                        heap.push(Reverse((nd, to)));
                    }
                }
            }
            (0..self.out.len())
                .filter(|&v| self.goal[v])
                .map(|v| dist[v])
                .min()
                .filter(|&c| c != u64::MAX)
        }
    }

    /// Σ best-cost over the mirrored set — the jagged, fresh-allocation
    /// arm.
    pub fn sum_jagged(mirrors: &[JaggedMirror]) -> u64 {
        mirrors.iter().filter_map(JaggedMirror::best_cost).sum()
    }

    /// Σ best-cost over the CSR set with a fresh scratch per query.
    pub fn sum_csr_fresh(graphs: &[PropGraph]) -> u64 {
        graphs.iter().filter_map(PropGraph::best_cost).sum()
    }

    /// Σ best-cost over the CSR set through one pooled scratch — the
    /// shipped configuration.
    pub fn sum_csr_pooled(graphs: &[PropGraph], s: &mut GraphScratch) -> u64 {
        graphs.iter().filter_map(|g| g.best_cost_with(s)).sum()
    }
}

/// Pairs one source document with each update — the independent-request
/// batch shape [`xvu_propagate::serve`]'s `Engine::propagate_batch`
/// serves (requests are self-contained, so the same document may appear
/// under many updates).
pub fn batch_requests(oi: &OwnedInstance, updates: &[Script]) -> Vec<(DocTree, Script)> {
    updates
        .iter()
        .map(|u| (oi.doc.clone(), u.clone()))
        .collect()
}

/// Median wall-clock time of `runs` executions of `f`.
pub fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hospital_instance_propagates() {
        let inst = hospital_instance(2, 3);
        let p = inst.propagate();
        assert_eq!(p.cost, 3);
    }

    #[test]
    fn random_instance_propagates() {
        let inst = random_instance(8, 300, 3, 7);
        let p = inst.propagate();
        assert!(p.cost < 10_000);
    }

    #[test]
    fn churn_batch_replays_identically_with_and_without_cache() {
        let (oi, updates) = hospital_churn_batch(2, 6, 6, 42);
        assert_eq!(updates.len(), 6);
        let engine = oi.engine();
        let cached = run_churn_session(&engine, &oi.doc, &updates, true);
        let uncached = run_churn_session(&engine, &oi.doc, &updates, false);
        assert_eq!(cached, uncached, "cache must not change results");
        assert!(
            updates.iter().any(|u| xvu_edit::cost(u) > 0),
            "churn stream produced only identity updates"
        );
    }

    #[test]
    fn enumerated_rows_cover_every_regime_and_flag_a_blowup() {
        let rows = enumerated_regime_rows(1);
        assert_eq!(rows.len(), 4, "all four regimes must be populated");
        assert!(rows.iter().map(|r| r.instances).sum::<usize>() >= 200);
        assert!(
            rows.iter().any(|r| r.amplification > 1.0),
            "at least one regime must amplify view-edit cost"
        );
    }

    #[test]
    fn kernel_arms_agree_on_harvested_graphs() {
        let oi = hospital_instance(2, 4);
        let graphs = kernel::harvest_graphs(&oi);
        assert!(!graphs.is_empty());
        assert!(graphs.iter().any(|g| g.n_edges() > 0));
        let mirrors: Vec<_> = graphs.iter().map(kernel::JaggedMirror::of).collect();
        let mut s = xvu_propagate::GraphScratch::default();
        let jagged = kernel::sum_jagged(&mirrors);
        assert_eq!(jagged, kernel::sum_csr_fresh(&graphs));
        assert_eq!(jagged, kernel::sum_csr_pooled(&graphs, &mut s));
    }

    #[test]
    fn update_batch_serves_through_one_session() {
        let (oi, updates) = hospital_update_batch(2, 3, 5);
        assert_eq!(updates.len(), 5);
        let engine = oi.engine();
        let session = engine.open(&oi.doc).unwrap();
        for u in &updates {
            // every admission inserts 3 visible nodes against this doc
            assert_eq!(session.propagate(u).unwrap().cost, 3);
        }
    }
}
