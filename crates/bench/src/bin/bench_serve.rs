//! Machine-readable serving benchmark: emits `BENCH_serve.json`.
//!
//! Generates one fleet workload (≥ 1000 requests over ≥ 32 documents
//! with Zipf popularity and open/churn/idle/close lifecycles), then
//! replays it through the daemon — real TCP, worker pool, admission
//! queue — at several session-pool sizes. Each row reports sustained
//! throughput, write/read latency quantiles from the daemon's own
//! histograms, the session-local propagation-cache hit rate, and the
//! fleet-wide shared memo tier's hit rate (eviction retires a session's
//! private memos but not what it published to the shared tier, so the
//! starved pools are where the shared rate earns its keep), so the
//! serving-stack perf trajectory is tracked by a checked-in artifact.
//!
//! Every replay is also a correctness gate: the daemon's replies are
//! diffed against the fingerprints the generator recorded from direct
//! library sessions, and any mismatch aborts the benchmark.
//!
//! ```text
//! cargo run --release -p xvu_bench --bin bench_serve [-- OUT_PATH]
//! cargo run --release -p xvu_bench --bin bench_serve -- --test   # CI smoke
//! ```
//!
//! Fleet clients keep one document open at a time, so the pool sizes
//! straddle the client count: a pool below it forces steady LRU eviction
//! (sessions lose their propagation-cache memos and are reopened with
//! their identifier floor restored), a pool above it never evicts.

use std::time::{Duration, Instant};
use xvu_propagate::Engine;
use xvu_server::{run_fleet, Client, FleetReport, Server, ServerConfig};
use xvu_tree::{to_term_with_ids, SnapshotFile};
use xvu_workload::fleet::{generate_fleet, FleetConfig, FleetPlan};

fn plan(updates: usize, docs: usize, clients: usize) -> FleetPlan {
    generate_fleet(&FleetConfig {
        docs,
        families: 6.min(docs),
        clients,
        updates,
        seed: 0x5EE7_B47C,
        ..FleetConfig::default()
    })
}

fn row_json(pool: usize, plan: &FleetPlan, r: &FleetReport) -> String {
    let secs = r.wall.as_secs_f64().max(1e-9);
    format!(
        "    \"{pool}\": {{ \"requests\": {}, \"wall_ms\": {:.1}, \
         \"updates_per_sec\": {:.1}, \"requests_per_sec\": {:.1}, \
         \"write_p50_ms\": {:.3}, \"write_p99_ms\": {:.3}, \
         \"read_p50_ms\": {:.3}, \"read_p99_ms\": {:.3}, \
         \"cache_hit_rate\": {:.4}, \"shared_hit_rate\": {:.4}, \
         \"shared_hits\": {}, \"shared_entries\": {}, \
         \"evictions\": {}, \"retries\": {}, \
         \"rejected_writes\": {}, \"queue_max\": {} }}",
        r.requests,
        r.wall.as_secs_f64() * 1e3,
        plan.updates as f64 / secs,
        r.requests as f64 / secs,
        r.stats.write_latency.quantile_ms(0.50),
        r.stats.write_latency.quantile_ms(0.99),
        r.stats.read_latency.quantile_ms(0.50),
        r.stats.read_latency.quantile_ms(0.99),
        r.stats.cache_hit_rate(),
        r.stats.shared_hit_rate(),
        r.stats.shared_hits,
        r.stats.shared_entries,
        r.stats.evictions,
        r.retries,
        r.stats.rejected_writes,
        r.stats.queue_max,
    )
}

/// One cold start: the clock runs from daemon construction, through
/// corpus installation — term `load` verbs over the wire versus a
/// packed-snapshot preload — to the first served reply (an `open` of
/// the hottest document). Engine compilation is outside the clock: it
/// is identical in both modes. Returns the elapsed time and the first
/// reply (the two modes must agree byte-for-byte).
fn cold_start_once(
    plan: &FleetPlan,
    engines: &[Engine],
    corpus: &[u8],
    snapshot: bool,
) -> (Duration, String) {
    let cfg = ServerConfig {
        workers: 2,
        queue_capacity: 32,
        pool_capacity: 4,
        retry_after_ms: 1,
    };
    let start = Instant::now();
    let server = Server::new(engines, cfg);
    if snapshot {
        let file = SnapshotFile::from_bytes(corpus.to_vec()).expect("corpus parses");
        server.preload_corpus(&file).expect("corpus preloads");
    }
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let mut first = None;
    let mut elapsed = Duration::ZERO;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_listener(listener));
        let mut client = Client::connect(&addr).expect("connect");
        if !snapshot {
            for fd in &plan.docs {
                let term = to_term_with_ids(&fd.doc, &plan.families[fd.family].alpha);
                client.load(fd.id, fd.family, &term).expect("load");
            }
        }
        let doc = plan.docs[0].id;
        let view = client.open(doc).expect("first reply");
        elapsed = start.elapsed();
        first = Some(view);
        let _ = client.close_doc(doc);
        let _ = client.shutdown();
        handle.join().expect("server thread").expect("serve ok");
    });
    (elapsed, first.expect("first reply captured"))
}

/// Best-of-`reps` cold start per mode, checking that the first reply is
/// byte-identical between them.
fn cold_start(plan: &FleetPlan, reps: usize) -> (Duration, Duration) {
    let engines: Vec<Engine> = plan.families.iter().map(|f| f.engine()).collect();
    let corpus = plan.corpus_snapshot_bytes();
    let mut term_best = Duration::MAX;
    let mut snap_best = Duration::MAX;
    let mut term_reply = None;
    let mut snap_reply = None;
    for _ in 0..reps {
        let (t, reply) = cold_start_once(plan, &engines, &corpus, false);
        term_best = term_best.min(t);
        term_reply.get_or_insert(reply);
        let (t, reply) = cold_start_once(plan, &engines, &corpus, true);
        snap_best = snap_best.min(t);
        snap_reply.get_or_insert(reply);
    }
    assert_eq!(
        term_reply, snap_reply,
        "first reply differs between term and snapshot boot"
    );
    (term_best, snap_best)
}

fn main() {
    let arg = std::env::args().nth(1);
    let smoke = arg.as_deref() == Some("--test");
    // CI smoke: a tiny plan, one starved pool, correctness gate only.
    let (plan, clients, pools) = if smoke {
        (plan(24, 8, 3), 3, vec![2usize])
    } else {
        (plan(340, 36, 6), 6, vec![2usize, 4, 12])
    };
    let requests = plan.request_count() + plan.docs.len();
    eprintln!(
        "bench_serve: {} docs, {} families, {} committed updates, {} requests",
        plan.docs.len(),
        plan.families.len(),
        plan.updates,
        requests
    );

    let mut rows = Vec::new();
    for &pool in &pools {
        let report = run_fleet(
            &plan,
            ServerConfig {
                workers: 2,
                queue_capacity: 32,
                pool_capacity: pool,
                retry_after_ms: 1,
            },
        )
        .expect("daemon runs");
        assert!(
            report.mismatches.is_empty(),
            "pool={pool}: daemon diverged from direct sessions:\n{}",
            report.mismatches.join("\n")
        );
        assert_eq!(report.protocol_errors, 0, "pool={pool}: protocol errors");
        assert!(report.drained_clean, "pool={pool}: dirty drain");
        eprintln!(
            "  pool {pool:>3}: {:.1} updates/s, write p99 {:.2} ms, hit rate {:.3}, \
             shared hit rate {:.3}, {} evictions",
            plan.updates as f64 / report.wall.as_secs_f64().max(1e-9),
            report.stats.write_latency.quantile_ms(0.99),
            report.stats.cache_hit_rate(),
            report.stats.shared_hit_rate(),
            report.stats.evictions
        );
        rows.push((pool, report));
    }

    // cold start: daemon construction → first served reply, with the
    // corpus installed by term `load` verbs vs a packed-snapshot preload
    let (term_cold, snap_cold) = cold_start(&plan, if smoke { 1 } else { 5 });
    eprintln!(
        "  cold start: term-corpus {:.1} ms, snapshot-corpus {:.1} ms ({:.1}× faster)",
        term_cold.as_secs_f64() * 1e3,
        snap_cold.as_secs_f64() * 1e3,
        term_cold.as_secs_f64() / snap_cold.as_secs_f64().max(1e-9),
    );

    if smoke {
        println!("bench_serve self-test PASS ({requests} requests, 0 mismatches)");
        return;
    }

    let out_path = arg.unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"xvu-bench-serve/3\",\n");
    json.push_str(
        "  \"timed_region\": \"TCP replay of the full fleet plan: corpus load + every client op + drain\",\n",
    );
    json.push_str(&format!(
        "  \"plan\": {{ \"docs\": {}, \"families\": {}, \"clients\": {clients}, \"committed_updates\": {}, \"requests\": {} }},\n",
        plan.docs.len(),
        plan.families.len(),
        plan.updates,
        requests
    ));
    json.push_str(&format!(
        "  \"cold_start\": {{ \"timed_region\": \"daemon construction + corpus install to first open reply\", \
         \"term_corpus_ms\": {:.2}, \"snapshot_corpus_ms\": {:.2}, \"speedup\": {:.1} }},\n",
        term_cold.as_secs_f64() * 1e3,
        snap_cold.as_secs_f64() * 1e3,
        term_cold.as_secs_f64() / snap_cold.as_secs_f64().max(1e-9),
    ));
    json.push_str("  \"pools\": {\n");
    for (i, (pool, report)) in rows.iter().enumerate() {
        json.push_str(&row_json(*pool, &plan, report));
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
