//! Machine-readable load-path benchmark: emits `BENCH_load.json`.
//!
//! Measures document **cold start** — the wall time from serialized
//! bytes to a servable in-memory arena — across the four formats the
//! repo can load:
//!
//! * `flat` — the versioned arena snapshot ([`xvu_tree::snapshot`]):
//!   one checksum pass plus a bulk bounds-checked decode straight into
//!   the slab, no per-node hashing or re-indexing;
//! * `legacy_json` — the historical serde-style JSON wire format
//!   ([`xvu_tree::legacy`]): per-node objects through a recursive
//!   parser and per-node arena inserts;
//! * `term` — the identifier-annotated term syntax
//!   ([`xvu_tree::parse_term_with_ids`]), the daemon's `load`-verb
//!   format;
//! * `xml` — `xvu:id`-annotated XML ([`xvu_xml::read_xml`]).
//!
//! Single documents at 1k/10k/100k nodes, plus a 36-document fleet
//! corpus loaded whole (packed snapshot vs per-document term parse).
//! Every timed load is also an oracle: the loaded tree must equal the
//! original identifier-for-identifier. The run itself enforces the PR's
//! acceptance gate — flat load ≥ 10× faster than term parse at 10k
//! nodes.
//!
//! ```text
//! cargo run --release -p xvu_bench --bin bench_load [-- OUT_PATH]
//! cargo run --release -p xvu_bench --bin bench_load -- --test   # CI smoke
//! ```

use std::time::Instant;
use xvu_tree::{
    from_legacy_json, parse_term_with_ids, to_legacy_json, to_term_with_ids, Alphabet, DocTree,
    NodeIdGen, SnapshotFile, Tree,
};
use xvu_workload::fleet::{generate_fleet, FleetConfig};
use xvu_xml::{read_xml, write_xml, WriteOptions};

/// Builds a deterministic document with exactly `nodes` nodes: a
/// breadth-first tree of fan-out 8 over labels `a..e`.
fn synth_doc(nodes: usize) -> (Alphabet, DocTree) {
    assert!(nodes >= 1);
    let mut alpha = Alphabet::new();
    let labels: Vec<_> = ["r", "a", "b", "c", "d", "e"]
        .iter()
        .map(|l| alpha.intern(l))
        .collect();
    let mut gen = NodeIdGen::new();
    let mut t = Tree::leaf(&mut gen, labels[0]);
    let mut frontier = vec![t.root()];
    let mut next = Vec::new();
    let mut count = 1usize;
    'grow: loop {
        for &parent in &frontier {
            for k in 0..8usize {
                if count == nodes {
                    break 'grow;
                }
                let label = labels[1 + (count + k) % 5];
                next.push(t.add_child(parent, &mut gen, label));
                count += 1;
            }
        }
        frontier = std::mem::take(&mut next);
    }
    debug_assert_eq!(t.size(), nodes);
    (alpha, t)
}

/// Best-of-`reps` wall time for `load`, in seconds. Each reseeded run
/// must produce a tree equal to `expect` (the load-path oracle).
fn time_load(reps: usize, expect: &DocTree, mut load: impl FnMut() -> DocTree) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let got = load();
        let dt = start.elapsed().as_secs_f64();
        assert_eq!(&got, expect, "loaded tree diverged from the original");
        best = best.min(dt);
    }
    best
}

struct SizeRow {
    nodes: usize,
    flat_bytes: usize,
    legacy_bytes: usize,
    term_bytes: usize,
    xml_bytes: usize,
    flat_s: f64,
    legacy_s: f64,
    term_s: f64,
    xml_s: f64,
}

fn measure_size(nodes: usize, reps: usize) -> SizeRow {
    let (alpha, doc) = synth_doc(nodes);
    let flat = doc.to_snapshot_bytes(&alpha).expect("encodable");
    let legacy = to_legacy_json(&doc);
    let term = to_term_with_ids(&doc, &alpha);
    let xml = write_xml(
        &doc,
        &alpha,
        &WriteOptions {
            pretty: false,
            with_ids: true,
        },
    );
    // every format loads against a clone of the family alphabet, like
    // the daemon does (labels resolve to the engine's existing symbols)
    let flat_s = time_load(reps, &doc, || {
        let mut a = alpha.clone();
        DocTree::from_snapshot_bytes(&flat, &mut a).expect("flat decodes")
    });
    let legacy_s = time_load(reps, &doc, || {
        from_legacy_json(&legacy).expect("json decodes")
    });
    let term_s = time_load(reps, &doc, || {
        let mut a = alpha.clone();
        let mut g = NodeIdGen::new();
        parse_term_with_ids(&mut a, &mut g, &term).expect("term parses")
    });
    let xml_s = time_load(reps, &doc, || {
        let mut a = alpha.clone();
        let mut g = NodeIdGen::new();
        read_xml(&mut a, &mut g, &xml).expect("xml parses")
    });
    eprintln!(
        "  {nodes:>6} nodes: flat {:>9.1} µs ({} B), legacy_json {:>9.1} µs ({} B), \
         term {:>9.1} µs ({} B), xml {:>9.1} µs ({} B) — flat is {:.1}× faster than term",
        flat_s * 1e6,
        flat.len(),
        legacy_s * 1e6,
        legacy.len(),
        term_s * 1e6,
        term.len(),
        xml_s * 1e6,
        xml.len(),
        term_s / flat_s.max(1e-12),
    );
    SizeRow {
        nodes,
        flat_bytes: flat.len(),
        legacy_bytes: legacy.len(),
        term_bytes: term.len(),
        xml_bytes: xml.len(),
        flat_s,
        legacy_s,
        term_s,
        xml_s,
    }
}

struct FleetRow {
    docs: usize,
    total_nodes: usize,
    flat_bytes: usize,
    term_bytes: usize,
    flat_s: f64,
    term_s: f64,
}

/// The 36-document fleet corpus, loaded whole: packed snapshot file
/// (directory parse + per-document bulk decode) versus per-document
/// term parse — the two boot paths `xvu serve` offers.
fn measure_fleet(docs: usize, reps: usize) -> FleetRow {
    let plan = generate_fleet(&FleetConfig {
        docs,
        families: 6.min(docs),
        clients: 6,
        updates: 0,
        seed: 0x10AD_CAFE,
        ..FleetConfig::default()
    });
    let corpus = plan.corpus_snapshot_bytes();
    let terms: Vec<(usize, String)> = plan
        .docs
        .iter()
        .map(|fd| {
            (
                fd.family,
                to_term_with_ids(&fd.doc, &plan.families[fd.family].alpha),
            )
        })
        .collect();
    let term_bytes: usize = terms.iter().map(|(_, t)| t.len()).sum();
    let expect: Vec<&DocTree> = plan.docs.iter().map(|fd| &fd.doc).collect();
    let total_nodes: usize = expect.iter().map(|d| d.size()).sum();

    let mut flat_s = f64::INFINITY;
    let mut term_s = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let file = SnapshotFile::from_bytes(corpus.clone()).expect("corpus parses");
        let loaded: Vec<DocTree> = (0..file.len())
            .map(|i| {
                let mut a = plan.families[file.entries()[i].family as usize]
                    .alpha
                    .clone();
                file.decode(i, &mut a).expect("doc decodes")
            })
            .collect();
        let dt = start.elapsed().as_secs_f64();
        for (got, want) in loaded.iter().zip(&expect) {
            assert_eq!(&got, want, "corpus-loaded tree diverged");
        }
        flat_s = flat_s.min(dt);

        let start = Instant::now();
        let parsed: Vec<DocTree> = terms
            .iter()
            .map(|(family, term)| {
                let mut a = plan.families[*family].alpha.clone();
                let mut g = NodeIdGen::new();
                parse_term_with_ids(&mut a, &mut g, term).expect("term parses")
            })
            .collect();
        let dt = start.elapsed().as_secs_f64();
        for (got, want) in parsed.iter().zip(&expect) {
            assert_eq!(&got, want, "term-parsed tree diverged");
        }
        term_s = term_s.min(dt);
    }
    eprintln!(
        "  fleet corpus ({docs} docs, {total_nodes} nodes): flat {:.1} µs ({} B), \
         term {:.1} µs ({} B) — flat is {:.1}× faster",
        flat_s * 1e6,
        corpus.len(),
        term_s * 1e6,
        term_bytes,
        term_s / flat_s.max(1e-12),
    );
    FleetRow {
        docs,
        total_nodes,
        flat_bytes: corpus.len(),
        term_bytes,
        flat_s,
        term_s,
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let smoke = arg.as_deref() == Some("--test");
    // CI smoke keeps the 10k gate (it is the acceptance criterion) but
    // skips the 100k document and trims repetitions.
    let (sizes, reps, fleet_docs) = if smoke {
        (vec![1_000usize, 10_000], 5, 8)
    } else {
        (vec![1_000usize, 10_000, 100_000], 15, 36)
    };

    eprintln!("bench_load: cold-start wall time per format (best of {reps})");
    let rows: Vec<SizeRow> = sizes.iter().map(|&n| measure_size(n, reps)).collect();
    let fleet = measure_fleet(fleet_docs, reps);

    // the acceptance gate: flat load ≥ 10× faster than term parse at
    // 10k nodes
    let gate = rows
        .iter()
        .find(|r| r.nodes == 10_000)
        .expect("10k row present");
    let speedup = gate.term_s / gate.flat_s.max(1e-12);
    assert!(
        speedup >= 10.0,
        "flat load must be ≥ 10× faster than term parse at 10k nodes, got {speedup:.1}×"
    );

    if smoke {
        println!("bench_load self-test PASS (flat {speedup:.1}× faster than term at 10k nodes)");
        return;
    }

    let out_path = arg.unwrap_or_else(|| "BENCH_load.json".to_owned());
    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"xvu-bench-load/1\",\n");
    json.push_str(
        "  \"timed_region\": \"serialized bytes to a verified in-memory arena (best of N)\",\n",
    );
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"sizes\": {\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"flat_us\": {:.1}, \"legacy_json_us\": {:.1}, \
             \"term_us\": {:.1}, \"xml_us\": {:.1}, \
             \"flat_bytes\": {}, \"legacy_json_bytes\": {}, \"term_bytes\": {}, \
             \"xml_bytes\": {}, \"flat_vs_term_speedup\": {:.1} }}",
            r.nodes,
            r.flat_s * 1e6,
            r.legacy_s * 1e6,
            r.term_s * 1e6,
            r.xml_s * 1e6,
            r.flat_bytes,
            r.legacy_bytes,
            r.term_bytes,
            r.xml_bytes,
            r.term_s / r.flat_s.max(1e-12),
        ));
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"fleet_corpus\": {{ \"docs\": {}, \"total_nodes\": {}, \
         \"flat_us\": {:.1}, \"term_us\": {:.1}, \
         \"flat_bytes\": {}, \"term_bytes\": {}, \"flat_vs_term_speedup\": {:.1} }}\n",
        fleet.docs,
        fleet.total_nodes,
        fleet.flat_s * 1e6,
        fleet.term_s * 1e6,
        fleet.flat_bytes,
        fleet.term_bytes,
        fleet.term_s / fleet.flat_s.max(1e-12),
    ));
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_load.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
