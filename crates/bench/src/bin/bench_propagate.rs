//! Machine-readable propagation benchmark: emits `BENCH_propagate.json`.
//!
//! Measures the engine-amortized repeated-update medians for the two
//! canonical workloads of `benches/repeated_updates.rs` — the
//! document-heavy hospital batch and the schema-heavy 32-label random
//! batch — plus the **churn** workload (K small localized edits against
//! the hospital document through one long-lived session, propagate +
//! commit each, measured with the session's propagation cache on and off
//! in the same run), and the **enumerated coverage arm** (one-shot
//! propagation over every instance of `xvu_workload::enumo`'s default
//! budget, grouped by regime, with each regime's view-edit → source-edit
//! cost amplification — the blowup map), and writes them as JSON so the
//! perf trajectory across PRs is tracked by a checked-in artifact instead
//! of scraped bench logs. Since schema /5 every workload also carries a
//! per-phase breakdown (`phases`: instance validation, graph build,
//! typing, assembly, commit — via `Session::propagate_phased`) and a
//! `kernel` section races the memory-layout arms of
//! `benches/kernel_layouts.rs` over each workload's harvested graph set.
//!
//! ```text
//! cargo run --release -p xvu_bench --bin bench_propagate [-- OUT_PATH]
//! ```
//!
//! The timed region of the batch rows matches the bench's
//! `engine_amortized` arm exactly: engine compilation + session open +
//! one propagation per update. The churn rows pre-compile the engine and
//! time session open + K × (propagate + commit).

use std::hint::black_box;
use std::time::Instant;
use xvu_bench::kernel::{harvest_graphs, sum_csr_fresh, sum_csr_pooled, sum_jagged, JaggedMirror};
use xvu_bench::{
    enumerated_regime_rows, hospital_churn_batch, hospital_update_batch, median_time,
    random_update_batch, run_churn_session, OwnedInstance,
};
use xvu_edit::Script;
use xvu_propagate::GraphScratch;

/// Median engine-amortized wall time for one workload, in nanoseconds.
fn engine_amortized_median_ns(oi: &OwnedInstance, updates: &[Script], runs: usize) -> u128 {
    median_time(runs, || {
        let engine = oi.engine();
        let session = engine.open(&oi.doc).expect("valid document");
        let mut total = 0u64;
        for u in updates {
            total += session.propagate(u).expect("Theorem 5").cost;
        }
        black_box(total);
    })
    .as_nanos()
}

/// Per-phase nanoseconds summed over one workload pass (K updates).
#[derive(Clone, Copy, Default)]
struct PhaseSums {
    instance_ns: u64,
    graph_build_ns: u64,
    typing_ns: u64,
    assemble_ns: u64,
    commit_ns: u64,
}

fn median_u64(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Runs `pass` `runs` times and takes the per-phase median across runs.
fn phase_medians(runs: usize, mut pass: impl FnMut() -> PhaseSums) -> PhaseSums {
    let samples: Vec<PhaseSums> = (0..runs.max(1)).map(|_| pass()).collect();
    PhaseSums {
        instance_ns: median_u64(samples.iter().map(|s| s.instance_ns).collect()),
        graph_build_ns: median_u64(samples.iter().map(|s| s.graph_build_ns).collect()),
        typing_ns: median_u64(samples.iter().map(|s| s.typing_ns).collect()),
        assemble_ns: median_u64(samples.iter().map(|s| s.assemble_ns).collect()),
        commit_ns: median_u64(samples.iter().map(|s| s.commit_ns).collect()),
    }
}

/// One phased pass over a workload: `Session::propagate_phased` per
/// update, plus an externally timed `commit` when `commit` is set (the
/// churn regime). Sums are per pass; medians are taken across passes.
fn phased_pass(oi: &OwnedInstance, updates: &[Script], commit: bool) -> PhaseSums {
    let engine = oi.engine();
    let mut session = engine.open(&oi.doc).expect("valid document");
    let mut sums = PhaseSums::default();
    for u in updates {
        let (prop, phases) = session.propagate_phased(u).expect("Theorem 5");
        sums.instance_ns += phases.instance_ns;
        sums.graph_build_ns += phases.graph_build_ns;
        sums.typing_ns += phases.typing_ns;
        sums.assemble_ns += phases.assemble_ns;
        if commit {
            let t0 = Instant::now();
            session.commit(&prop).expect("propagation commits");
            sums.commit_ns += t0.elapsed().as_nanos() as u64;
        }
        black_box(prop.cost);
    }
    sums
}

fn phases_json(p: &PhaseSums) -> String {
    format!(
        "\"phases\": {{ \"instance_ns\": {}, \"graph_build_ns\": {}, \"typing_ns\": {}, \
         \"assemble_ns\": {}, \"commit_ns\": {} }}",
        p.instance_ns, p.graph_build_ns, p.typing_ns, p.assemble_ns, p.commit_ns,
    )
}

struct Row {
    name: &'static str,
    updates: usize,
    doc_nodes: usize,
    median_ns: u128,
    phases: PhaseSums,
}

/// One workload's kernel head-to-head: median ns for one best-cost sweep
/// over the harvested graph set, per layout arm.
struct KernelRow {
    name: &'static str,
    graphs: usize,
    jagged_fresh_ns: u128,
    csr_fresh_ns: u128,
    csr_pooled_ns: u128,
}

fn kernel_row(name: &'static str, oi: &OwnedInstance, runs: usize) -> KernelRow {
    let graphs = harvest_graphs(oi);
    let mirrors: Vec<JaggedMirror> = graphs.iter().map(JaggedMirror::of).collect();
    // Every arm must agree — the head-to-head is only meaningful over
    // observationally identical kernels.
    let mut scratch = GraphScratch::default();
    let expect = sum_jagged(&mirrors);
    assert_eq!(expect, sum_csr_fresh(&graphs), "kernel arms disagree");
    assert_eq!(
        expect,
        sum_csr_pooled(&graphs, &mut scratch),
        "kernel arms disagree"
    );
    KernelRow {
        name,
        graphs: graphs.len(),
        jagged_fresh_ns: median_time(runs, || {
            black_box(sum_jagged(&mirrors));
        })
        .as_nanos(),
        csr_fresh_ns: median_time(runs, || {
            black_box(sum_csr_fresh(&graphs));
        })
        .as_nanos(),
        csr_pooled_ns: median_time(runs, || {
            black_box(sum_csr_pooled(&graphs, &mut scratch));
        })
        .as_nanos(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_propagate.json".to_owned());
    const K: usize = 10;
    const RUNS: usize = 15;

    let (hospital, hospital_updates) = hospital_update_batch(4, 30, K);
    let (random32, random32_updates) = random_update_batch(32, 400, 3, K, 1234);

    let rows = [
        Row {
            name: "hospital",
            updates: K,
            doc_nodes: hospital.doc.size(),
            median_ns: engine_amortized_median_ns(&hospital, &hospital_updates, RUNS),
            phases: phase_medians(RUNS, || phased_pass(&hospital, &hospital_updates, false)),
        },
        Row {
            name: "random32",
            updates: K,
            doc_nodes: random32.doc.size(),
            median_ns: engine_amortized_median_ns(&random32, &random32_updates, RUNS),
            phases: phase_medians(RUNS, || phased_pass(&random32, &random32_updates, false)),
        },
    ];

    // Churn: K small localized edits through one session, cache on vs off
    // in the same run (engine precompiled; timed region = session open +
    // K × (propagate + commit)). Costs must agree — the cache is a pure
    // memo.
    let (churn, churn_updates) = hospital_churn_batch(4, 30, K, 0xc0ffee);
    // Private engine: the row isolates the *session* cache's effect, so
    // the fleet-wide shared tier stays off here (it gets its own row
    // below).
    let churn_engine = churn.engine_private();
    let check_cached = run_churn_session(&churn_engine, &churn.doc, &churn_updates, true);
    let check_uncached = run_churn_session(&churn_engine, &churn.doc, &churn_updates, false);
    assert_eq!(
        check_cached, check_uncached,
        "cache changed propagation results"
    );
    let churn_cached_ns = median_time(RUNS, || {
        black_box(run_churn_session(
            &churn_engine,
            &churn.doc,
            &churn_updates,
            true,
        ));
    })
    .as_nanos();
    let churn_uncached_ns = median_time(RUNS, || {
        black_box(run_churn_session(
            &churn_engine,
            &churn.doc,
            &churn_updates,
            false,
        ));
    })
    .as_nanos();
    let improvement_pct = 100.0 * (1.0 - churn_cached_ns as f64 / churn_uncached_ns.max(1) as f64);
    let churn_phases = phase_medians(RUNS, || phased_pass(&churn, &churn_updates, true));

    // Cross-document sharing: warm a sharing engine's fleet tier with one
    // untimed churn replay, then measure the identical replay through
    // *fresh* sessions (run_churn_session opens a new session per call, so
    // the session-local cache starts empty every run — the only carry-over
    // is the InternId-keyed shared tier). Baseline = the same fresh-session
    // replay on the private engine above (churn_cached_ns).
    let sharing_engine = churn.engine();
    let check_shared = run_churn_session(&sharing_engine, &churn.doc, &churn_updates, true);
    assert_eq!(
        check_shared, check_uncached,
        "shared tier changed propagation results"
    );
    let cross_shared_ns = median_time(RUNS, || {
        black_box(run_churn_session(
            &sharing_engine,
            &churn.doc,
            &churn_updates,
            true,
        ));
    })
    .as_nanos();
    let shared_stats = sharing_engine.shared_cache_stats();
    assert!(
        shared_stats.hits > 0,
        "fresh sessions never hit the shared tier: {shared_stats:?}"
    );
    let shared_hit_rate =
        shared_stats.hits as f64 / (shared_stats.hits + shared_stats.misses).max(1) as f64;
    let cross_improvement_pct =
        100.0 * (1.0 - cross_shared_ns as f64 / churn_cached_ns.max(1) as f64);

    // Enumerated coverage arm: the whole default-budget grammar space,
    // one-shot, grouped by regime; amplification = propagation cost /
    // view-update cost, the per-regime blowup figure.
    let regime_rows = enumerated_regime_rows(RUNS);
    let blowup = regime_rows
        .iter()
        .max_by(|a, b| a.amplification.total_cmp(&b.amplification))
        .expect("enumeration is non-empty");
    let blowup_regime = blowup.regime;

    // Kernel head-to-head: the layout arms of `benches/kernel_layouts.rs`
    // raced over each workload's harvested graph set (median ns per full
    // best-cost sweep).
    let kernel_rows = [
        kernel_row("hospital", &hospital, RUNS),
        kernel_row("random32", &random32, RUNS),
        kernel_row("churn", &churn, RUNS),
    ];

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"xvu-bench-propagate/5\",\n");
    json.push_str("  \"timed_region\": \"engine compile + session open + K propagations\",\n");
    json.push_str(
        "  \"phases_note\": \"phases are per-phase ns summed over the K updates of one warm \
         pass (Session::propagate_phased + externally timed commit), medians across runs, \
         measured outside the median_ns region\",\n",
    );
    json.push_str(&format!("  \"runs_per_median\": {RUNS},\n"));
    json.push_str("  \"workloads\": {\n");
    for row in rows.iter() {
        json.push_str(&format!(
            "    \"{}\": {{ \"updates\": {}, \"doc_nodes\": {}, \"median_ns\": {}, \"median_us_per_update\": {:.3}, {} }},\n",
            row.name,
            row.updates,
            row.doc_nodes,
            row.median_ns,
            row.median_ns as f64 / 1e3 / row.updates as f64,
            phases_json(&row.phases),
        ));
    }
    json.push_str(&format!(
        "    \"churn\": {{ \"updates\": {}, \"doc_nodes\": {}, \
         \"timed_region\": \"session open + K x (propagate + commit), engine precompiled\", \
         \"cached_median_ns\": {}, \"uncached_median_ns\": {}, \
         \"cached_us_per_update\": {:.3}, \"uncached_us_per_update\": {:.3}, \
         \"cache_improvement_pct\": {:.1}, {} }},\n",
        K,
        churn.doc.size(),
        churn_cached_ns,
        churn_uncached_ns,
        churn_cached_ns as f64 / 1e3 / K as f64,
        churn_uncached_ns as f64 / 1e3 / K as f64,
        improvement_pct,
        phases_json(&churn_phases),
    ));
    json.push_str(&format!(
        "    \"churn_cross_document\": {{ \"updates\": {}, \"doc_nodes\": {}, \
         \"timed_region\": \"fresh session per run over a warm shared memo tier; baseline = churn cached_median_ns on a private engine\", \
         \"shared_median_ns\": {}, \"shared_us_per_update\": {:.3}, \
         \"shared_improvement_pct\": {:.1}, \"shared_hit_rate\": {:.4}, \
         \"shared_entries\": {} }}\n",
        K,
        churn.doc.size(),
        cross_shared_ns,
        cross_shared_ns as f64 / 1e3 / K as f64,
        cross_improvement_pct,
        shared_hit_rate,
        shared_stats.entries,
    ));
    json.push_str("  },\n");
    json.push_str(
        "  \"kernel\": {\n    \"timed_region\": \"median ns per best-cost sweep over every \
         per-node propagation graph harvested from the workload's forest; arms as in \
         benches/kernel_layouts.rs\",\n    \"winner\": \"csr_pooled\",\n    \"workloads\": {\n",
    );
    for (i, k) in kernel_rows.iter().enumerate() {
        json.push_str(&format!(
            "      \"{}\": {{ \"graphs\": {}, \"jagged_fresh_ns\": {}, \"csr_fresh_ns\": {}, \
             \"csr_pooled_ns\": {}, \"pooled_speedup_vs_jagged\": {:.2} }}{}\n",
            k.name,
            k.graphs,
            k.jagged_fresh_ns,
            k.csr_fresh_ns,
            k.csr_pooled_ns,
            k.jagged_fresh_ns as f64 / k.csr_pooled_ns.max(1) as f64,
            if i + 1 == kernel_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("    }\n  },\n");
    json.push_str(&format!(
        "  \"enumerated\": {{\n    \"timed_region\": \"one-shot propagate over every default-budget enumo instance, per regime\",\n    \"cost_blowup_regime\": \"{blowup_regime}\",\n"
    ));
    json.push_str("    \"regimes\": {\n");
    for (i, r) in regime_rows.iter().enumerate() {
        json.push_str(&format!(
            "      \"{}\": {{ \"instances\": {}, \"update_cost\": {}, \"propagation_cost\": {}, \
             \"cost_amplification\": {:.2}, \"median_ns\": {}, \"median_us_per_instance\": {:.3}, \
             \"max_optimal_count\": {} }}{}\n",
            r.regime,
            r.instances,
            r.update_cost,
            r.propagation_cost,
            r.amplification,
            r.median_ns,
            r.median_ns as f64 / 1e3 / r.instances.max(1) as f64,
            r.max_count,
            if i + 1 == regime_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("    }\n  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_propagate.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
