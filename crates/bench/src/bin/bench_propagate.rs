//! Machine-readable propagation benchmark: emits `BENCH_propagate.json`.
//!
//! Measures the engine-amortized repeated-update medians for the two
//! canonical workloads of `benches/repeated_updates.rs` — the
//! document-heavy hospital batch and the schema-heavy 32-label random
//! batch — and writes them as JSON so the perf trajectory across PRs is
//! tracked by a checked-in artifact instead of scraped bench logs.
//!
//! ```text
//! cargo run --release -p xvu_bench --bin bench_propagate [-- OUT_PATH]
//! ```
//!
//! The timed region matches the bench's `engine_amortized` arm exactly:
//! engine compilation + session open + one propagation per update.

use std::hint::black_box;
use xvu_bench::{hospital_update_batch, median_time, random_update_batch, OwnedInstance};
use xvu_edit::Script;

/// Median engine-amortized wall time for one workload, in nanoseconds.
fn engine_amortized_median_ns(oi: &OwnedInstance, updates: &[Script], runs: usize) -> u128 {
    median_time(runs, || {
        let engine = oi.engine();
        let session = engine.open(&oi.doc).expect("valid document");
        let mut total = 0u64;
        for u in updates {
            total += session.propagate(u).expect("Theorem 5").cost;
        }
        black_box(total);
    })
    .as_nanos()
}

struct Row {
    name: &'static str,
    updates: usize,
    doc_nodes: usize,
    median_ns: u128,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_propagate.json".to_owned());
    const K: usize = 10;
    const RUNS: usize = 15;

    let (hospital, hospital_updates) = hospital_update_batch(4, 30, K);
    let (random32, random32_updates) = random_update_batch(32, 400, 3, K, 1234);

    let rows = [
        Row {
            name: "hospital",
            updates: K,
            doc_nodes: hospital.doc.size(),
            median_ns: engine_amortized_median_ns(&hospital, &hospital_updates, RUNS),
        },
        Row {
            name: "random32",
            updates: K,
            doc_nodes: random32.doc.size(),
            median_ns: engine_amortized_median_ns(&random32, &random32_updates, RUNS),
        },
    ];

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": \"xvu-bench-propagate/1\",\n");
    json.push_str("  \"timed_region\": \"engine compile + session open + K propagations\",\n");
    json.push_str(&format!("  \"runs_per_median\": {RUNS},\n"));
    json.push_str("  \"workloads\": {\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"updates\": {}, \"doc_nodes\": {}, \"median_ns\": {}, \"median_us_per_update\": {:.3} }}{}\n",
            row.name,
            row.updates,
            row.doc_nodes,
            row.median_ns,
            row.median_ns as f64 / 1e3 / row.updates as f64,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_propagate.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
