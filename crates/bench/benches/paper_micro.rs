//! Micro-benchmarks on the paper's own fixtures (experiments E3–E8).
//!
//! * `inversion/fig6` — building + solving the Fig. 6 inversion graph;
//! * `propagation/paper` — the full running-example pipeline (Fig. 7);
//! * `counting/d2_k` — counting the `2^k` optimal propagations of `D2`;
//! * `minsize/exponential_n` — the minimal-size fixpoint on the
//!   exponential DTD family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use xvu_dtd::{exponential_dtd, min_sizes, InsertletPackage};
use xvu_edit::parse_script;
use xvu_propagate::{
    count_optimal_propagations, propagate, Config, CostModel, Instance, InversionForest,
    PropagationForest,
};
use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};
use xvu_workload::paper::{self, running_example};

fn bench_inversion(c: &mut Criterion) {
    let fx = running_example();
    let mut alpha = fx.alpha.clone();
    let mut gen = fx.gen.clone();
    let frag = parse_term_with_ids(&mut alpha, &mut gen, "d#11(c#13, c#14)").unwrap();
    let sizes = min_sizes(&fx.dtd, alpha.len());
    let pkg = InsertletPackage::new();

    let mut group = c.benchmark_group("inversion");
    group.measurement_time(Duration::from_millis(800));
    group.bench_function("fig6_build_and_cost", |b| {
        b.iter(|| {
            let cm = CostModel {
                sizes: &sizes,
                insertlets: &pkg,
            };
            let forest = InversionForest::build(&fx.dtd, &fx.ann, &frag, &cm).unwrap();
            black_box(forest.min_inverse_size())
        })
    });
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let fx = running_example();
    let mut group = c.benchmark_group("propagation");
    group.measurement_time(Duration::from_millis(800));
    group.bench_function("paper_running_example", |b| {
        b.iter(|| {
            let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
            let prop = propagate(&inst, &InsertletPackage::new(), &Config::default()).unwrap();
            black_box(prop.cost)
        })
    });
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting");
    group.measurement_time(Duration::from_millis(800));
    for k in [4usize, 16, 64] {
        let fx = paper::d2_exponential_choices();
        let mut alpha = fx.alpha.clone();
        let mut gen = NodeIdGen::new();
        let source = parse_term_with_ids(&mut alpha, &mut gen, "r#0").unwrap();
        let mut s = String::from("nop:r#0(");
        for i in 0..k {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("ins:a#{}", i + 1));
        }
        s.push(')');
        let update = parse_script(&mut alpha, &s).unwrap();
        let dtd = fx.dtd.clone();
        let ann = fx.ann.clone();
        let alen = alpha.len();
        group.bench_with_input(BenchmarkId::new("d2_count", k), &k, |b, _| {
            b.iter(|| {
                let inst = Instance::new(&dtd, &ann, &source, &update, alen).unwrap();
                let sizes = min_sizes(&dtd, alen);
                let pkg = InsertletPackage::new();
                let cm = CostModel {
                    sizes: &sizes,
                    insertlets: &pkg,
                };
                let forest = PropagationForest::build(&inst, &cm).unwrap();
                black_box(count_optimal_propagations(&forest))
            })
        });
    }
    group.finish();
}

fn bench_minsize(c: &mut Criterion) {
    let mut group = c.benchmark_group("minsize");
    group.measurement_time(Duration::from_millis(800));
    for n in [8usize, 32, 60] {
        let mut alpha = Alphabet::new();
        let dtd = exponential_dtd(&mut alpha, n);
        let alen = alpha.len();
        group.bench_with_input(BenchmarkId::new("exponential_fixpoint", n), &n, |b, _| {
            b.iter(|| black_box(min_sizes(&dtd, alen)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inversion,
    bench_propagation,
    bench_counting,
    bench_minsize
);
criterion_main!(benches);
