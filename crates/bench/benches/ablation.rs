//! Ablation benchmarks for three implementation design choices:
//!
//! * `ablation_insertlets` — invisible-fragment materialisation via
//!   insertlet instantiation vs on-the-fly minimal-witness construction
//!   (the motivation for §5's insertlet packages);
//! * `ablation_selector` — cost of the three path-selection strategies;
//! * `ablation_dfa` — NFA-backed content models vs determinised+minimised
//!   ones in the full pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use xvu_automata::{Dfa, Nfa, StateId};
use xvu_bench::hospital_instance;
use xvu_dtd::{exponential_dtd, min_sizes, minimal_witness, Dtd, InsertletPackage};
use xvu_propagate::{propagate, Config, Instance, Selector};
use xvu_tree::{Alphabet, NodeIdGen};

fn bench_insertlets(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_insertlets");
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    for n in [10usize, 14] {
        let mut alpha = Alphabet::new();
        let dtd = exponential_dtd(&mut alpha, n);
        let sizes = min_sizes(&dtd, alpha.len());
        let a = alpha.get("a").unwrap();
        let mut gen = NodeIdGen::new();
        group.bench_with_input(BenchmarkId::new("witness", n), &n, |b, _| {
            b.iter(|| {
                let mut g = NodeIdGen::new();
                black_box(
                    minimal_witness(&dtd, &sizes, a, &mut g, 1 << 40)
                        .unwrap()
                        .size(),
                )
            })
        });
        let pkg = {
            let mut p = InsertletPackage::new();
            let w = minimal_witness(&dtd, &sizes, a, &mut gen, 1 << 40).unwrap();
            p.insert(&dtd, &sizes, a, w).unwrap();
            p
        };
        group.bench_with_input(BenchmarkId::new("insertlet", n), &n, |b, _| {
            b.iter(|| {
                let mut g = NodeIdGen::new();
                black_box(
                    pkg.instantiate(&dtd, &sizes, a, &mut g, 1 << 40)
                        .unwrap()
                        .size(),
                )
            })
        });
    }
    group.finish();
}

fn bench_selectors(c: &mut Criterion) {
    let oi = hospital_instance(6, 50);
    let mut group = c.benchmark_group("ablation_selector");
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    for sel in [
        Selector::First,
        Selector::PreferNop,
        Selector::PreferTypePreserving,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sel:?}")),
            &sel,
            |b, &sel| {
                b.iter(|| {
                    let inst = oi.instance();
                    let cfg = Config {
                        selector: sel,
                        ..Config::default()
                    };
                    black_box(
                        propagate(&inst, &InsertletPackage::new(), &cfg)
                            .unwrap()
                            .cost,
                    )
                })
            },
        );
    }
    group.finish();
}

/// Rebuilds a DTD with determinised + minimised content models.
fn determinized(dtd: &Dtd, alphabet_len: usize) -> Dtd {
    let mut out = Dtd::new();
    for label in dtd.ruled_labels() {
        let dfa = Dfa::determinize(dtd.content_model(label), alphabet_len).minimize();
        // convert the DFA back to an Nfa for the Dtd container
        let mut nfa = Nfa::new(dfa.num_states().max(1), StateId(0));
        for q in 0..dfa.num_states() {
            if dfa.is_accepting(StateId(q as u32)) {
                nfa.set_accepting(StateId(q as u32), true);
            }
            for a in 0..alphabet_len {
                let y = xvu_tree::Sym::from_index(a);
                if let Some(t) = dfa.step(StateId(q as u32), y) {
                    nfa.add_transition(StateId(q as u32), y, t);
                }
            }
        }
        out.set_rule_nfa(label, nfa);
    }
    out
}

fn bench_dfa(c: &mut Criterion) {
    let oi = hospital_instance(6, 50);
    let det = determinized(&oi.dtd, oi.alpha.len());
    let mut group = c.benchmark_group("ablation_dfa");
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
    group.bench_function("glushkov_nfa", |b| {
        b.iter(|| {
            let inst = oi.instance();
            black_box(
                propagate(&inst, &InsertletPackage::new(), &Config::default())
                    .unwrap()
                    .cost,
            )
        })
    });
    group.bench_function("minimized_dfa", |b| {
        b.iter(|| {
            let inst = Instance::new(&det, &oi.ann, &oi.doc, &oi.update, oi.alpha.len()).unwrap();
            black_box(
                propagate(&inst, &InsertletPackage::new(), &Config::default())
                    .unwrap()
                    .cost,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_insertlets, bench_selectors, bench_dfa);
criterion_main!(benches);
