//! Aggregate batch-serving throughput over 1/2/4/8 worker threads.
//!
//! One compiled [`xvu_propagate::Engine`] is shared (by reference — the
//! `Send + Sync` contract `Arc<Engine>` relies on) across a std-only
//! worker pool, serving a fixed batch of independent requests via
//! `Engine::propagate_batch`. The figure of merit is wall-clock time for
//! the *whole batch* at each thread count:
//!
//! * `throughput_random32` — the schema-heavy workload (32-label random
//!   DTD, small updates): per-request work is compute-bound graph
//!   construction, the embarrassingly parallel case.
//! * `throughput_hospital` — the document-heavy workload (4×30 hospital):
//!   larger documents per request, same sharing shape.
//! * `throughput_hospital_pool` — the repeated-update path: worker
//!   threads check distinct document keys out of a
//!   [`xvu_propagate::SessionPool`] and commit one admission each, so
//!   the pool's per-document isolation is exercised under contention-free
//!   parallelism.
//!
//! Scaling beyond the machine's core count cannot help (the work is pure
//! CPU); on a single-core host every thread count collapses to ~1× and
//! the bench then measures pool overhead instead of speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use xvu_bench::{batch_requests, hospital_update_batch, random_update_batch};
use xvu_propagate::{Engine, SessionPool, SharedCacheBackend};
use xvu_workload::scenario::{admit_patient, Hospital};

/// Requests per batch — large enough that the per-thread share at 8 jobs
/// is still several requests.
const BATCH: usize = 32;

/// Thread counts the ISSUE's scaling table asks for.
const JOBS: [usize; 4] = [1, 2, 4, 8];

fn run_scaling(
    group: &mut criterion::BenchmarkGroup<'_>,
    engine: &xvu_propagate::Engine,
    requests: &[(xvu_tree::DocTree, xvu_edit::Script)],
) {
    for jobs in JOBS {
        group.throughput(Throughput::Elements(requests.len() as u64));
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let results = engine.propagate_batch(requests, jobs);
                let total: u64 = results
                    .iter()
                    .map(|r| r.as_ref().expect("Theorem 5").cost)
                    .sum();
                black_box(total)
            })
        });
    }
}

fn bench_batch_random32(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_random32");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    let (oi, updates) = random_update_batch(32, 400, 3, BATCH, 1234);
    let engine = oi.engine();
    let requests = batch_requests(&oi, &updates);
    run_scaling(&mut group, &engine, &requests);
    group.finish();
}

fn bench_batch_hospital(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_hospital");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    let (oi, updates) = hospital_update_batch(4, 30, BATCH);
    let engine = oi.engine();
    let requests = batch_requests(&oi, &updates);
    run_scaling(&mut group, &engine, &requests);
    group.finish();
}

fn bench_session_pool_hospital(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_hospital_pool");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    let (oi, _) = hospital_update_batch(4, 30, 1);
    let engine = oi.engine();
    let h = Hospital {
        alpha: oi.alpha.clone(),
        dtd: oi.dtd.clone(),
        ann: oi.ann.clone(),
    };
    const DOCS: usize = 8;
    for jobs in JOBS {
        group.throughput(Throughput::Elements(DOCS as u64));
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                // Fresh pool per iteration: every worker strides over the
                // document keys, opening the session on first touch and
                // committing one admission through the lease.
                let pool: SessionPool<'_, usize> = SessionPool::new(&engine);
                std::thread::scope(|scope| {
                    for w in 0..jobs {
                        let (pool, h, doc) = (&pool, &h, &oi.doc);
                        scope.spawn(move || {
                            let mut key = w;
                            while key < DOCS {
                                let mut lease = pool.checkout(key, doc).expect("valid document");
                                let mut gen = lease.id_gen();
                                let u = admit_patient(h, lease.document(), key % 4, &mut gen);
                                lease.apply(&u).expect("Theorem 5");
                                key += jobs;
                            }
                        });
                    }
                });
                black_box(pool.len())
            })
        });
    }
    group.finish();
}

/// The shared-memo-tier backend head-to-head the module docs of
/// `xvu_propagate::shared` point at: `Sharded` (16-way sharded
/// `RwLock<HashMap>`) vs `Snapshot` (epoch-swapped frozen `Arc<HashMap>`,
/// lock-free probes). The tier is warmed by one sequential pass, then the
/// figure of merit is **warm read throughput** of the same batch at each
/// worker count — the contention-free steady state where sessions consult
/// the tier on every request and publish nothing. A backend whose read
/// path serializes would flatten instead of scaling with jobs.
fn bench_shared_cache_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_cache_backends");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    let (oi, updates) = random_update_batch(32, 400, 3, BATCH, 1234);
    let requests = batch_requests(&oi, &updates);
    for backend in [SharedCacheBackend::Sharded, SharedCacheBackend::Snapshot] {
        let engine = Engine::builder()
            .alphabet(oi.alpha.clone())
            .dtd(oi.dtd.clone())
            .annotation(oi.ann.clone())
            .shared_cache_backend(backend)
            .build()
            .expect("complete engine");
        // Warm pass: publish every structure-keyed memo once, so the
        // measured iterations exercise only the backend's read path.
        engine.propagate_batch(&requests, 1);
        for jobs in JOBS {
            group.throughput(Throughput::Elements(requests.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{backend:?}").to_lowercase(), jobs),
                &jobs,
                |b, &jobs| {
                    b.iter(|| {
                        let results = engine.propagate_batch(&requests, jobs);
                        let total: u64 = results
                            .iter()
                            .map(|r| r.as_ref().expect("Theorem 5").cost)
                            .sum();
                        black_box(total)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_random32,
    bench_batch_hospital,
    bench_session_pool_hospital,
    bench_shared_cache_backends
);
criterion_main!(benches);
