//! Head-to-head memory-layout benches for the propagation kernel.
//!
//! The Synchrobench methodology applied to layout candidates: harvest the
//! per-node propagation graphs real forests produce for each workload,
//! then race three kernel arms over the identical query set —
//!
//! * `jagged_fresh` — the pre-CSR layout (one `Vec` per vertex) with a
//!   fresh-allocation Dijkstra per query, mirrored faithfully in
//!   [`xvu_bench::kernel::JaggedMirror`];
//! * `csr_fresh` — the shipped CSR layout queried with a throwaway
//!   scratch per call;
//! * `csr_pooled` — CSR through one warm [`xvu_propagate::GraphScratch`],
//!   the configuration `Session` and `propagate_batch` actually run.
//!
//! The `enumerated_kernel` group adds one-shot end-to-end rows per
//! enumerated grammar regime (the PR 6 follow-on): the whole
//! default-budget regime propagates inside the timed region, so a kernel
//! regression on any grammar shape shows up in `cargo bench`, not just in
//! the `BENCH_propagate.json` snapshot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use xvu_bench::kernel::{
    harvest_from, harvest_graphs, sum_csr_fresh, sum_csr_pooled, sum_jagged, JaggedMirror,
};
use xvu_bench::{hospital_churn_batch, random_update_batch};
use xvu_dtd::InsertletPackage;
use xvu_propagate::{propagate, Config, GraphScratch, Instance, PropGraph};
use xvu_workload::enumo::{enumerate_instances, EnumBudget};

/// The harvested graph sets: hospital churn, the schema-heavy random32
/// batch, and every default-budget instance of each enumerated regime.
fn workload_graph_sets() -> Vec<(String, Vec<PropGraph>)> {
    let mut sets = Vec::new();
    let (churn, _) = hospital_churn_batch(4, 30, 1, 0xc0ffee);
    sets.push(("hospital_churn".to_owned(), harvest_graphs(&churn)));
    let (random32, _) = random_update_batch(32, 400, 3, 1, 1234);
    sets.push(("random32".to_owned(), harvest_graphs(&random32)));
    let instances = enumerate_instances(&EnumBudget::default());
    for regime in [
        "plain",
        "wide-alternation",
        "heavy-hiding",
        "deep-recursion",
    ] {
        let graphs: Vec<PropGraph> = instances
            .iter()
            .filter(|i| i.regime() == regime)
            .flat_map(|i| harvest_from(&i.dtd, &i.ann, &i.doc, &i.update, i.alpha.len()))
            .collect();
        if !graphs.is_empty() {
            sets.push((regime.to_owned(), graphs));
        }
    }
    sets
}

fn bench_kernel_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_layouts");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for (name, graphs) in workload_graph_sets() {
        let mirrors: Vec<JaggedMirror> = graphs.iter().map(JaggedMirror::of).collect();
        // Pre-warm the memoised CSRs so every arm times queries, not
        // one-time construction.
        let _ = sum_csr_fresh(&graphs);
        group.throughput(Throughput::Elements(graphs.len() as u64));
        group.bench_with_input(BenchmarkId::new("jagged_fresh", &name), &(), |b, _| {
            b.iter(|| black_box(sum_jagged(&mirrors)))
        });
        group.bench_with_input(BenchmarkId::new("csr_fresh", &name), &(), |b, _| {
            b.iter(|| black_box(sum_csr_fresh(&graphs)))
        });
        group.bench_with_input(BenchmarkId::new("csr_pooled", &name), &(), |b, _| {
            let mut s = GraphScratch::default();
            b.iter(|| black_box(sum_csr_pooled(&graphs, &mut s)))
        });
    }
    group.finish();
}

fn bench_enumerated_kernel(c: &mut Criterion) {
    // One-shot rows per regime: the full pipeline (Instance validation +
    // forest + assembly) over every default-budget instance of the
    // regime, so the per-regime cost trajectory lives in `cargo bench`.
    let mut group = c.benchmark_group("enumerated_kernel");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    let instances = enumerate_instances(&EnumBudget::default());
    for regime in [
        "plain",
        "wide-alternation",
        "heavy-hiding",
        "deep-recursion",
    ] {
        let regime_instances: Vec<_> = instances.iter().filter(|i| i.regime() == regime).collect();
        if regime_instances.is_empty() {
            continue;
        }
        group.throughput(Throughput::Elements(regime_instances.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("one_shot", regime),
            &regime_instances,
            |b, insts| {
                b.iter(|| {
                    let mut total = 0u64;
                    for i in insts.iter() {
                        let inst = Instance::new(&i.dtd, &i.ann, &i.doc, &i.update, i.alpha.len())
                            .expect("enumerated instance is valid");
                        total += propagate(&inst, &InsertletPackage::new(), &Config::default())
                            .expect("Theorem 5")
                            .cost;
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_layouts, bench_enumerated_kernel);
criterion_main!(benches);
