//! One-shot vs engine-amortized propagation on repeated-update workloads.
//!
//! The one-shot path (`Instance::new` + `propagate`) re-derives every
//! update-independent artefact per call: source validation, view
//! extraction, the derived view DTD, and the min-size tables. The engine
//! path pays that once (`Engine` build + `Session` open) and then serves
//! each update with only update-dependent work. This bench measures both
//! paths end-to-end — engine compilation and session open are *inside*
//! the timed region — across 1/10/100 distinct updates against one
//! scaling-workload document, so the reported per-element time is the
//! honest amortized per-update cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use xvu_bench::{hospital_update_batch, random_update_batch, OwnedInstance};
use xvu_dtd::InsertletPackage;
use xvu_edit::Script;
use xvu_propagate::{propagate, Config, Instance};

fn run_pair(
    group: &mut criterion::BenchmarkGroup<'_>,
    k: usize,
    oi: &OwnedInstance,
    updates: &[Script],
) {
    group.throughput(Throughput::Elements(k as u64));
    group.bench_with_input(BenchmarkId::new("one_shot", k), &k, |b, _| {
        b.iter(|| {
            let mut total = 0u64;
            for u in updates {
                let inst = Instance::new(&oi.dtd, &oi.ann, &oi.doc, u, oi.alpha.len())
                    .expect("valid instance");
                total += propagate(&inst, &InsertletPackage::new(), &Config::default())
                    .expect("Theorem 5")
                    .cost;
            }
            black_box(total)
        })
    });
    group.bench_with_input(BenchmarkId::new("engine_amortized", k), &k, |b, _| {
        b.iter(|| {
            let engine = oi.engine();
            let session = engine.open(&oi.doc).expect("valid document");
            let mut total = 0u64;
            for u in updates {
                total += session.propagate(u).expect("Theorem 5").cost;
            }
            black_box(total)
        })
    });
}

fn bench_repeated_hospital(c: &mut Criterion) {
    // Document-heavy: per-update graph building dominates, so the engine
    // win is the (modest) schema-compile fraction.
    let mut group = c.benchmark_group("repeated_updates_hospital");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for k in [1usize, 10, 100] {
        let (oi, updates) = hospital_update_batch(4, 30, k);
        run_pair(&mut group, k, &oi, &updates);
    }
    group.finish();
}

fn bench_repeated_random(c: &mut Criterion) {
    // Schema-heavy (32-label DTD, small updates): the one-shot path's
    // per-call re-derivation dominates and amortization is dramatic.
    let mut group = c.benchmark_group("repeated_updates_random32");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for k in [1usize, 10, 100] {
        let (oi, updates) = random_update_batch(32, 400, 3, k, 1234);
        run_pair(&mut group, k, &oi, &updates);
    }
    group.finish();
}

fn bench_committed_sequence(c: &mut Criterion) {
    // Absolute cost of a *committed* update sequence: each `apply`
    // advances the session document with incremental revalidation. Not a
    // paired comparison — updates must target the evolving view, so they
    // are generated inside the timed region (against `session.document()`)
    // and have no meaningful one-shot counterpart here.
    let mut group = c.benchmark_group("repeated_updates_committed");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for k in [1usize, 10] {
        let oi = xvu_bench::hospital_instance(4, 30);
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("session_commit", k), &k, |b, _| {
            b.iter(|| {
                let engine = oi.engine();
                let mut session = engine.open(&oi.doc).expect("valid document");
                let h = xvu_workload::scenario::Hospital {
                    alpha: oi.alpha.clone(),
                    dtd: oi.dtd.clone(),
                    ann: oi.ann.clone(),
                };
                let mut total = 0u64;
                for i in 0..k {
                    let mut gen = session.id_gen();
                    let u = xvu_workload::scenario::admit_patient(
                        &h,
                        session.document(),
                        i % 4,
                        &mut gen,
                    );
                    total += session.apply(&u).expect("Theorem 5").cost;
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    // The dirty-region caching workload: K small localized edits through
    // one long-lived session (propagate + commit each), cache on vs off.
    // Same pregenerated stream both ways — results are byte-identical,
    // only the recomputation differs.
    let mut group = c.benchmark_group("repeated_updates_churn");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for k in [10usize, 50] {
        let (oi, updates) = xvu_bench::hospital_churn_batch(4, 30, k, 0xc0ffee);
        let engine = oi.engine();
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("cached", k), &k, |b, _| {
            b.iter(|| {
                black_box(xvu_bench::run_churn_session(
                    &engine, &oi.doc, &updates, true,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("uncached", k), &k, |b, _| {
            b.iter(|| {
                black_box(xvu_bench::run_churn_session(
                    &engine, &oi.doc, &updates, false,
                ))
            })
        });
    }
    group.finish();
}

fn bench_enumerated(c: &mut Criterion) {
    // The grammar-space enumeration folded into the repeated-update
    // benches: one representative family per regime, K churn edits
    // committed through a long-lived session — the same per-family
    // serving pattern the daemon amortizes, measured per regime so cost
    // shifts in any one grammar shape are visible in isolation. Each
    // regime runs twice: `<regime>` on an engine whose fleet-wide shared
    // memo tier is off (session cache only — the pre-interning baseline)
    // and `<regime>_shared` through fresh sessions of an engine whose
    // shared tier was warmed by one untimed replay of the same
    // deterministic churn stream, so the pair prices exactly what
    // InternId-keyed cross-session sharing buys per grammar shape.
    use xvu_workload::enumo::{enumerate_instances, EnumBudget};
    use xvu_workload::{ChurnConfig, ChurnStream};

    let mut group = c.benchmark_group("repeated_updates_enumerated");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    const K: usize = 10;
    let instances = enumerate_instances(&EnumBudget::default());
    for regime in [
        "plain",
        "wide-alternation",
        "heavy-hiding",
        "deep-recursion",
    ] {
        let Some(inst) = instances.iter().find(|i| i.regime() == regime) else {
            continue;
        };
        let builder = || {
            xvu_propagate::Engine::builder()
                .alphabet(inst.alpha.clone())
                .dtd(inst.dtd.clone())
                .annotation(inst.ann.clone())
        };
        let private = builder()
            .shared_cache(false)
            .build()
            .expect("enumerated artefacts compile");
        let shared = builder().build().expect("enumerated artefacts compile");
        let replay = |engine: &xvu_propagate::Engine| {
            let mut session = engine.open(&inst.doc).expect("enumerated doc is valid");
            let mut stream = ChurnStream::for_enumerated(inst, ChurnConfig::default(), 0xE7E7);
            let mut total = 0u64;
            for _ in 0..K {
                let mut gen = session.id_gen();
                let u = stream.next_update(session.document(), &mut gen);
                total += session.apply(&u).expect("Theorem 5").cost;
            }
            total
        };
        // Warm the shared tier once, untimed; the stream is seed-fixed so
        // every measured fresh session replays the identical evolution.
        replay(&shared);
        group.throughput(Throughput::Elements(K as u64));
        group.bench_with_input(BenchmarkId::new(regime, K), &K, |b, _| {
            b.iter(|| black_box(replay(&private)))
        });
        group.bench_with_input(
            BenchmarkId::new(format!("{regime}_shared"), K),
            &K,
            |b, _| b.iter(|| black_box(replay(&shared))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_repeated_hospital,
    bench_repeated_random,
    bench_committed_sequence,
    bench_churn,
    bench_enumerated
);
criterion_main!(benches);
