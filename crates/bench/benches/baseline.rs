//! Baseline comparison (experiment E10): the repair-based approach of
//! paper §6.2 vs the propagation-graph algorithm, on the `D3` pitfall
//! instance and on a larger view where the candidate space blows up.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use xvu_dtd::InsertletPackage;
use xvu_edit::UpdateBuilder;
use xvu_propagate::{propagate, Config, Instance};
use xvu_repair::{repair_based_update, RepairConfig};
use xvu_tree::{parse_term_with_ids, NodeIdGen};
use xvu_view::extract_view;
use xvu_workload::paper::{d3_repair_pitfall, running_example};

fn bench_d3(c: &mut Criterion) {
    let (fx, t, s, _gen) = d3_repair_pitfall();
    let mut group = c.benchmark_group("baseline_d3");
    group.measurement_time(Duration::from_millis(800));
    group.bench_function("repair", |b| {
        b.iter(|| {
            black_box(
                repair_based_update(
                    &fx.dtd,
                    &fx.ann,
                    fx.alpha.len(),
                    &t,
                    &s,
                    &RepairConfig::default(),
                )
                .unwrap()
                .distance,
            )
        })
    });
    group.bench_function("propagation", |b| {
        b.iter(|| {
            let inst = Instance::new(&fx.dtd, &fx.ann, &t, &s, fx.alpha.len()).unwrap();
            black_box(
                propagate(&inst, &InsertletPackage::new(), &Config::default())
                    .unwrap()
                    .cost,
            )
        })
    });
    group.finish();
}

fn bench_larger_view(c: &mut Criterion) {
    // The running example's schema with a wider document: repair has to
    // enumerate + score many padding variants while propagation stays
    // graph-polynomial.
    let fx = running_example();
    let mut alpha = fx.alpha.clone();
    let mut gen = NodeIdGen::starting_at(100);
    let mut term = String::from("r#0(");
    for i in 0..6 {
        if i > 0 {
            term.push_str(", ");
        }
        term.push_str(&format!(
            "a#{}, b#{}, d#{}(a#{}, c#{})",
            100 + 10 * i,
            101 + 10 * i,
            102 + 10 * i,
            103 + 10 * i,
            104 + 10 * i
        ));
    }
    term.push(')');
    let t = parse_term_with_ids(&mut alpha, &mut gen, &term).unwrap();
    assert!(fx.dtd.is_valid(&t));
    let view = extract_view(&fx.ann, &t);
    // delete the first (a, d) group in the view
    let kids: Vec<_> = view.children(view.root()).to_vec();
    let mut b = UpdateBuilder::new(&view);
    b.delete(kids[0]).unwrap();
    b.delete(kids[1]).unwrap();
    let s = b.finish();

    let mut group = c.benchmark_group("baseline_wide");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    group.bench_function("repair", |bch| {
        bch.iter(|| {
            black_box(
                repair_based_update(
                    &fx.dtd,
                    &fx.ann,
                    alpha.len(),
                    &t,
                    &s,
                    &RepairConfig {
                        candidate_cap: 100,
                        ..RepairConfig::default()
                    },
                )
                .unwrap()
                .distance,
            )
        })
    });
    group.bench_function("propagation", |bch| {
        bch.iter(|| {
            let inst = Instance::new(&fx.dtd, &fx.ann, &t, &s, alpha.len()).unwrap();
            black_box(
                propagate(&inst, &InsertletPackage::new(), &Config::default())
                    .unwrap()
                    .cost,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_d3, bench_larger_view);
criterion_main!(benches);
