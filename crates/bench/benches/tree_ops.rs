//! Tree-storage micro-benchmarks: arena-backed `xvu_tree::Tree` vs the
//! historical `HashMap<NodeId, Node>` layout.
//!
//! The map-backed shadow implemented here reproduces the pre-arena
//! storage exactly (node map keyed by id, per-node parent/children
//! links), so `build` / `traverse` / `random_access` isolate the cost of
//! the storage layout itself — hash probe and pointer chase vs dense
//! index and slab read. Nothing gates on these numbers; they document
//! the before/after of the arena refactor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Duration;
use xvu_tree::{
    from_legacy_json, parse_term_with_ids, to_legacy_json, to_term_with_ids, Alphabet, NodeId,
    NodeIdGen, Sym, Tree,
};

/// The pre-arena storage layout, reproduced for comparison.
struct MapTree {
    nodes: HashMap<NodeId, MapNode>,
    root: NodeId,
}

struct MapNode {
    label: Sym,
    children: Vec<NodeId>,
}

impl MapTree {
    fn leaf(id: NodeId, label: Sym) -> MapTree {
        let mut nodes = HashMap::new();
        nodes.insert(
            id,
            MapNode {
                label,
                children: Vec::new(),
            },
        );
        MapTree { nodes, root: id }
    }

    fn add_child(&mut self, parent: NodeId, id: NodeId, label: Sym) {
        self.nodes.insert(
            id,
            MapNode {
                label,
                children: Vec::new(),
            },
        );
        self.nodes
            .get_mut(&parent)
            .expect("parent present")
            .children
            .push(id);
    }

    fn label(&self, id: NodeId) -> Sym {
        self.nodes[&id].label
    }

    fn preorder_label_sum(&self) -> u64 {
        let mut sum = 0u64;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[&n];
            sum += node.label.index() as u64;
            stack.extend(node.children.iter().rev().copied());
        }
        sum
    }
}

/// Deterministic shape shared by both layouts: node `i` attaches under a
/// pseudo-random earlier node (a bushy, irregular tree), labels cycle
/// over 16 symbols.
fn shape(n: usize) -> Vec<(usize, usize)> {
    (1..n)
        .map(|i| (i.wrapping_mul(2_654_435_761) % i, i % 16))
        .collect()
}

fn build_arena(n: usize) -> Tree<Sym> {
    let mut gen = NodeIdGen::new();
    let mut t = Tree::leaf(&mut gen, Sym::from_index(0));
    let ids: Vec<NodeId> = std::iter::once(t.root())
        .chain(shape(n).iter().map(|&(parent, label)| {
            let parent_id = NodeId(parent as u64);
            t.add_child(parent_id, &mut gen, Sym::from_index(label))
        }))
        .collect();
    black_box(&ids);
    t
}

fn build_map(n: usize) -> MapTree {
    let mut t = MapTree::leaf(NodeId(0), Sym::from_index(0));
    for (i, (parent, label)) in shape(n).into_iter().enumerate() {
        t.add_child(
            NodeId(parent as u64),
            NodeId(i as u64 + 1),
            Sym::from_index(label),
        );
    }
    t
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_ops_build");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, &n| {
            b.iter(|| black_box(build_arena(n).size()))
        });
        group.bench_with_input(BenchmarkId::new("hashmap", n), &n, |b, &n| {
            b.iter(|| black_box(build_map(n).nodes.len()))
        });
    }
    group.finish();
}

fn bench_traverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_ops_traverse");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        let arena = build_arena(n);
        let map = build_map(n);
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, _| {
            b.iter(|| {
                let sum: u64 = arena
                    .preorder()
                    .map(|id| arena.label(id).index() as u64)
                    .sum();
                black_box(sum)
            })
        });
        group.bench_with_input(BenchmarkId::new("hashmap", n), &n, |b, _| {
            b.iter(|| black_box(map.preorder_label_sum()))
        });
    }
    group.finish();
}

fn bench_random_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_ops_random_access");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        let arena = build_arena(n);
        let map = build_map(n);
        // pseudo-random probe order, identical for both layouts
        let probes: Vec<NodeId> = (0..n)
            .map(|i| NodeId((i.wrapping_mul(2_654_435_761) % n) as u64))
            .collect();
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, _| {
            b.iter(|| {
                let sum: u64 = probes
                    .iter()
                    .map(|&id| arena.label(id).index() as u64)
                    .sum();
                black_box(sum)
            })
        });
        group.bench_with_input(BenchmarkId::new("hashmap", n), &n, |b, _| {
            b.iter(|| {
                let sum: u64 = probes.iter().map(|&id| map.label(id).index() as u64).sum();
                black_box(sum)
            })
        });
    }
    group.finish();
}

/// The load path: serialized bytes to a usable tree, per format — the
/// flat arena snapshot's bulk decode vs the legacy JSON wire format vs
/// the identifier-annotated term parser (`BENCH_load.json` tracks the
/// same comparison at release settings; these rows keep it visible in
/// the criterion sweep).
fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_ops_load");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(20);
    // an alphabet whose Sym indices match the labels `shape` assigns
    let mut alpha = Alphabet::new();
    for i in 0..16 {
        alpha.intern(&format!("l{i}"));
    }
    for n in [1_000usize, 10_000] {
        let tree = build_arena(n);
        let flat = tree.to_snapshot_bytes(&alpha).expect("encodable");
        let json = to_legacy_json(&tree);
        let term = to_term_with_ids(&tree, &alpha);
        group.bench_with_input(BenchmarkId::new("flat_snapshot", n), &n, |b, _| {
            b.iter(|| {
                let mut a = alpha.clone();
                black_box(
                    Tree::from_snapshot_bytes(&flat, &mut a)
                        .expect("decodes")
                        .size(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("legacy_json", n), &n, |b, _| {
            b.iter(|| black_box(from_legacy_json(&json).expect("parses").size()))
        });
        group.bench_with_input(BenchmarkId::new("term", n), &n, |b, _| {
            b.iter(|| {
                let mut a = alpha.clone();
                let mut g = NodeIdGen::new();
                black_box(
                    parse_term_with_ids(&mut a, &mut g, &term)
                        .expect("parses")
                        .size(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_traverse,
    bench_random_access,
    bench_load
);
criterion_main!(benches);
