//! Scaling benchmarks (experiment E9): the pipeline is polynomial —
//! near-linear in practice — in the source size, the DTD size, and the
//! update size, as Theorem 6 promises.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use xvu_bench::{hospital_instance, random_instance};

fn bench_doc_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_doc");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for (d, p) in [(2usize, 6usize), (4, 30), (8, 150), (16, 750)] {
        let oi = hospital_instance(d, p);
        let nodes = oi.doc.size();
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &oi, |b, oi| {
            b.iter(|| black_box(oi.propagate().cost))
        });
    }
    group.finish();
}

fn bench_dtd_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_dtd");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for labels in [4usize, 8, 16, 32] {
        let oi = random_instance(labels, 400, 3, 1234);
        group.bench_with_input(BenchmarkId::from_parameter(labels), &oi, |b, oi| {
            b.iter(|| black_box(oi.propagate().cost))
        });
    }
    group.finish();
}

fn bench_update_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_update");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for ops in [1usize, 4, 16] {
        let oi = random_instance(8, 400, ops, 99);
        group.bench_with_input(BenchmarkId::from_parameter(ops), &oi, |b, oi| {
            b.iter(|| black_box(oi.propagate().cost))
        });
    }
    group.finish();
}

fn bench_recursive_depth(c: &mut Criterion) {
    // The outline schema is recursive: propagation recurses through a
    // depth-proportional chain of Nop-skeleton graphs. This group tracks
    // cost as a function of nesting depth at constant node count order.
    use xvu_propagate::{propagate, Config, Instance};
    use xvu_tree::NodeIdGen;
    use xvu_workload::scenario::{add_section, outline, outline_doc};

    let mut group = c.benchmark_group("scaling_recursion_depth");
    group.measurement_time(Duration::from_secs(1));
    group.sample_size(10);
    for depth in [2usize, 4, 6, 8] {
        let o = outline();
        let mut gen = NodeIdGen::new();
        // fanout balances the node count across depths (~2^8 sections)
        let fanout = match depth {
            2 => 16,
            4 => 4,
            6 => 2,
            _ => 2,
        };
        let doc = outline_doc(&o, depth, fanout, &mut gen);
        let path: Vec<usize> = vec![0; depth];
        let update = add_section(&o, &doc, &path, &mut gen);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let inst = Instance::new(&o.dtd, &o.ann, &doc, &update, o.alpha.len()).unwrap();
                black_box(
                    propagate(&inst, &Default::default(), &Config::default())
                        .unwrap()
                        .cost,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_doc_scaling,
    bench_dtd_scaling,
    bench_update_scaling,
    bench_recursive_depth
);
criterion_main!(benches);
