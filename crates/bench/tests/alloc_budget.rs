//! Allocation-budget regression gate for the propagation kernel.
//!
//! A counting `GlobalAlloc` wrapper (std-only, no dependencies) tallies
//! every heap allocation while armed. The single test in this file warms
//! a hospital churn session, then counts the transient allocations of one
//! further warm `propagate + commit` round trip and pins them under a
//! budget. If a future change reintroduces per-query allocation in the
//! kernel — a fresh Dijkstra heap or distance array per `best_cost`, a
//! rebuilt reverse adjacency per `dist_to_goal`, per-node segmentation
//! buffers — the count jumps far past the pinned ceiling and this test
//! fails before the regression reaches a perf snapshot.
//!
//! This file holds exactly one `#[test]`: the counter is process-global,
//! so a second concurrently running test would pollute the tally.
//!
//! CI runs this in release mode (`cargo test --release -p xvu_bench
//! --test alloc_budget`); the budget below holds for both debug and
//! release builds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Counts allocations (and growing reallocations) while [`ARMED`].
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Transient heap allocations allowed for one warm churn update
/// (propagate + commit) through a long-lived hospital session.
///
/// The steady state still allocates for real products — the result
/// script/forest, dirty-node graphs, the committed document revision —
/// but the kernel's query machinery (Dijkstra state, reverse CSR,
/// segmentation buffers) is pooled and contributes zero. The pin carries
/// ~1.5× headroom over the measured count (~2,110 in both debug and
/// release); a
/// reintroduced per-query allocation multiplies the count by the number
/// of per-node queries and blows well past it.
const BUDGET: u64 = 3_200;

#[test]
fn warm_churn_update_stays_under_allocation_budget() {
    let (oi, updates) = xvu_bench::hospital_churn_batch(4, 30, 8, 0xc0ffee);
    let engine = oi.engine();
    let mut session = engine.open(&oi.doc).expect("hospital doc is valid");

    // Warm pass: everything but the last update fills the session cache
    // and grows the pooled scratch to its steady-state footprint.
    let (last, warmup) = updates.split_last().expect("non-empty churn stream");
    for u in warmup {
        let prop = session.propagate(u).expect("churn update propagates");
        session.commit(&prop).expect("churn propagation commits");
    }

    // Counted region: one more warm round trip.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let prop = session.propagate(last).expect("churn update propagates");
    session.commit(&prop).expect("churn propagation commits");
    ARMED.store(false, Ordering::SeqCst);
    let count = ALLOCS.load(Ordering::SeqCst);

    assert!(count > 0, "counter never engaged — harness broken");
    assert!(
        count <= BUDGET,
        "warm churn update allocated {count} times (budget {BUDGET}): \
         a per-query allocation crept back into the kernel"
    );
}
