//! Regular expressions and finite automata over interned alphabets.
//!
//! DTD content models (paper §2) are finite automata
//! `M = (Σ, Q, q0, δ, F)`; the paper's constructions walk these automata
//! state by state, so the representation here keeps the transition relation
//! explicit and cheaply iterable per state.
//!
//! Provided machinery:
//!
//! * [`Regex`] — regular-expression ASTs with the paper's concrete syntax
//!   (`(a.(b+c).d)*`), a parser and a printer;
//! * [`Nfa`] — nondeterministic automata, built from regexes via the
//!   Glushkov construction (ε-free by construction), with membership,
//!   trimming, symbol erasure (used to derive view DTDs), and language
//!   emptiness;
//! * [`Dfa`] — subset-construction determinisation, completion, Moore
//!   minimisation, and language equivalence (used by tests and by the
//!   typing-based path selector of paper §5);
//! * [`min_cost_word`] — cheapest accepted word under per-symbol costs
//!   (Dijkstra), the engine behind minimal-tree sizes and all graph weights.
//!
//! # Paper cross-reference
//!
//! | paper | here |
//! |-------|------|
//! | content models as regular expressions (§2) | [`Regex`], [`parse_regex`] |
//! | content-model automata `M = (Σ, Q, q0, δ, F)` (§2) | [`Nfa`] (via [`glushkov`]), [`Dfa`] |
//! | erasing hidden symbols for view DTDs (§3) | [`Nfa::erase_symbols`] |
//! | cheapest completion words weighting the graph edges of Theorems 2 and 4 | [`min_cost_word`] |
//! | the canonical (Myhill–Nerode) typing of §5's selector | [`Dfa::minimize`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dfa;
mod error;
mod glushkov;
mod mincost;
mod nfa;
mod regex;

pub use dfa::Dfa;
pub use error::AutomatonError;
pub use glushkov::glushkov;
pub use mincost::{min_cost_word, MinCostWord, INFINITE};
pub use nfa::{Nfa, StateId};
pub use regex::{parse_regex, Regex};
