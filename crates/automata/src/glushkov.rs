//! Glushkov (position-automaton) construction.
//!
//! Produces an ε-free NFA with `positions + 1` states from a [`Regex`]:
//! state `0` is the start, state `p ≥ 1` represents the `p`-th symbol
//! occurrence of the expression (in left-to-right order). This is the
//! textbook construction used for DTD content models; for 1-unambiguous
//! (deterministic) content models — the class W3C DTDs require — the result
//! is a DFA.

use crate::nfa::{Nfa, StateId};
use crate::regex::Regex;
use xvu_tree::Sym;

/// Builds the Glushkov automaton of `e`. `L(glushkov(e)) = L(e)`.
pub fn glushkov(e: &Regex) -> Nfa {
    let mut lin = Linearizer { syms: Vec::new() };
    let info = lin.walk(e);
    let n_positions = lin.syms.len();
    let mut nfa = Nfa::new(n_positions + 1, StateId(0));

    // start --y(p)--> p for p ∈ first(e)
    for &p in &info.first {
        nfa.add_transition(StateId(0), lin.syms[p], pos_state(p));
    }
    // p --y(q)--> q for q ∈ follow(p)
    for (p, follows) in info.follow.iter().enumerate() {
        for &q in follows {
            nfa.add_transition(pos_state(p), lin.syms[q], pos_state(q));
        }
    }
    // accepting: last(e), plus start iff nullable
    if info.nullable {
        nfa.set_accepting(StateId(0), true);
    }
    for &p in &info.last {
        nfa.set_accepting(pos_state(p), true);
    }
    nfa
}

#[inline]
fn pos_state(p: usize) -> StateId {
    StateId((p + 1) as u32)
}

struct Linearizer {
    /// Symbol at each position (0-based).
    syms: Vec<Sym>,
}

/// Glushkov bookkeeping for a subexpression: positions are global indices
/// into `Linearizer::syms`.
struct Info {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
    /// `follow[p]` is only populated for positions introduced so far; kept
    /// globally sized by the caller merging child results.
    follow: Vec<Vec<usize>>,
}

impl Info {
    fn empty(null: bool, n_positions: usize) -> Info {
        Info {
            nullable: null,
            first: Vec::new(),
            last: Vec::new(),
            follow: vec![Vec::new(); n_positions],
        }
    }
}

impl Linearizer {
    fn walk(&mut self, e: &Regex) -> Info {
        match e {
            Regex::Empty => {
                // L = ∅: no positions, not nullable. (The resulting
                // automaton accepts nothing.)
                let mut i = Info::empty(false, self.syms.len());
                // Mark emptiness: we model ∅ as "not nullable, no first".
                i.nullable = false;
                i
            }
            Regex::Epsilon => Info::empty(true, self.syms.len()),
            Regex::Sym(s) => {
                let p = self.syms.len();
                self.syms.push(*s);
                let mut i = Info::empty(false, self.syms.len());
                i.first.push(p);
                i.last.push(p);
                i
            }
            Regex::Concat(parts) => {
                if parts.is_empty() {
                    return Info::empty(true, self.syms.len());
                }
                let mut acc: Option<Info> = None;
                for part in parts {
                    let right = self.walk(part);
                    acc = Some(match acc {
                        None => right,
                        Some(left) => concat_info(left, right, self.syms.len()),
                    });
                }
                acc.expect("non-empty parts")
            }
            Regex::Alt(parts) => {
                if parts.is_empty() {
                    // Alt of nothing = ∅
                    return Info::empty(false, self.syms.len());
                }
                let mut acc: Option<Info> = None;
                for part in parts {
                    let right = self.walk(part);
                    acc = Some(match acc {
                        None => right,
                        Some(left) => alt_info(left, right, self.syms.len()),
                    });
                }
                acc.expect("non-empty parts")
            }
            Regex::Star(inner) => {
                let mut i = self.walk(inner);
                // follow(last) ⊇ first
                for &l in &i.last.clone() {
                    for &f in &i.first {
                        if !i.follow[l].contains(&f) {
                            i.follow[l].push(f);
                        }
                    }
                }
                i.nullable = true;
                i
            }
            Regex::Opt(inner) => {
                let mut i = self.walk(inner);
                i.nullable = true;
                i
            }
        }
    }
}

fn resize_follow(f: &mut Vec<Vec<usize>>, n: usize) {
    if f.len() < n {
        f.resize(n, Vec::new());
    }
}

fn concat_info(mut left: Info, right: Info, n_positions: usize) -> Info {
    resize_follow(&mut left.follow, n_positions);
    let mut follow = left.follow;
    for (p, fs) in right.follow.into_iter().enumerate() {
        for q in fs {
            if !follow[p].contains(&q) {
                follow[p].push(q);
            }
        }
    }
    // follow(last(left)) ⊇ first(right)
    for &l in &left.last {
        for &f in &right.first {
            if !follow[l].contains(&f) {
                follow[l].push(f);
            }
        }
    }
    let mut first = left.first;
    if left.nullable {
        first.extend(right.first.iter().copied());
    }
    let mut last = right.last;
    if right.nullable {
        last.extend(left.last.iter().copied());
    }
    Info {
        nullable: left.nullable && right.nullable,
        first,
        last,
        follow,
    }
}

fn alt_info(mut left: Info, right: Info, n_positions: usize) -> Info {
    resize_follow(&mut left.follow, n_positions);
    let mut follow = left.follow;
    for (p, fs) in right.follow.into_iter().enumerate() {
        for q in fs {
            if !follow[p].contains(&q) {
                follow[p].push(q);
            }
        }
    }
    let mut first = left.first;
    first.extend(right.first.iter().copied());
    let mut last = left.last;
    last.extend(right.last.iter().copied());
    Info {
        nullable: left.nullable || right.nullable,
        first,
        last,
        follow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse_regex;
    use xvu_tree::Alphabet;

    fn accepts(alpha: &Alphabet, nfa: &Nfa, s: &str) -> bool {
        let word: Vec<Sym> = s
            .split_whitespace()
            .map(|l| alpha.get(l).expect("interned"))
            .collect();
        nfa.accepts(&word)
    }

    #[test]
    fn d0_rule_r() {
        let mut alpha = Alphabet::new();
        let e = parse_regex(&mut alpha, "(a.(b+c).d)*").unwrap();
        let m = glushkov(&e);
        assert!(accepts(&alpha, &m, ""));
        assert!(accepts(&alpha, &m, "a b d"));
        assert!(accepts(&alpha, &m, "a c d"));
        assert!(accepts(&alpha, &m, "a b d a c d a b d"));
        assert!(!accepts(&alpha, &m, "a b"));
        assert!(!accepts(&alpha, &m, "a b c d"));
        assert!(!accepts(&alpha, &m, "d"));
    }

    #[test]
    fn d0_rule_d() {
        let mut alpha = Alphabet::new();
        let e = parse_regex(&mut alpha, "((a+b).c)*").unwrap();
        let m = glushkov(&e);
        assert!(accepts(&alpha, &m, ""));
        assert!(accepts(&alpha, &m, "a c"));
        assert!(accepts(&alpha, &m, "b c a c"));
        assert!(!accepts(&alpha, &m, "a"));
        assert!(!accepts(&alpha, &m, "c"));
        assert!(!accepts(&alpha, &m, "a c b"));
    }

    #[test]
    fn epsilon_and_empty() {
        let mut alpha = Alphabet::new();
        let m = glushkov(&parse_regex(&mut alpha, "eps").unwrap());
        assert!(m.accepts(&[]));
        assert_eq!(m.num_states(), 1);

        let m = glushkov(&parse_regex(&mut alpha, "empty").unwrap());
        assert!(!m.accepts(&[]));
        assert!(m.language_is_empty());
    }

    #[test]
    fn option_and_star_nullability() {
        let mut alpha = Alphabet::new();
        let a = alpha.intern("a");
        let m = glushkov(&parse_regex(&mut alpha, "a?").unwrap());
        assert!(m.accepts(&[]));
        assert!(m.accepts(&[a]));
        assert!(!m.accepts(&[a, a]));

        let m = glushkov(&parse_regex(&mut alpha, "a*").unwrap());
        assert!(m.accepts(&[]));
        assert!(m.accepts(&[a, a, a]));
    }

    #[test]
    fn concat_with_nullable_left() {
        let mut alpha = Alphabet::new();
        let e = parse_regex(&mut alpha, "a*.b").unwrap();
        let m = glushkov(&e);
        let (a, b) = (alpha.get("a").unwrap(), alpha.get("b").unwrap());
        assert!(m.accepts(&[b]));
        assert!(m.accepts(&[a, a, b]));
        assert!(!m.accepts(&[a]));
        assert!(!m.accepts(&[]));
    }

    #[test]
    fn glushkov_of_deterministic_content_model_is_deterministic() {
        // (a.(b+c).d)* is 1-unambiguous ⇒ Glushkov automaton deterministic.
        let mut alpha = Alphabet::new();
        let e = parse_regex(&mut alpha, "(a.(b+c).d)*").unwrap();
        assert!(glushkov(&e).is_deterministic());
        // a.a is also fine; (a+a.b) is not 1-unambiguous.
        let e = parse_regex(&mut alpha, "a+a.b").unwrap();
        assert!(!glushkov(&e).is_deterministic());
    }

    #[test]
    fn nested_stars() {
        let mut alpha = Alphabet::new();
        let e = parse_regex(&mut alpha, "(a.b*)*").unwrap();
        let m = glushkov(&e);
        let (a, b) = (alpha.get("a").unwrap(), alpha.get("b").unwrap());
        assert!(m.accepts(&[]));
        assert!(m.accepts(&[a]));
        assert!(m.accepts(&[a, b, b, a, b]));
        assert!(!m.accepts(&[b]));
    }

    #[test]
    fn state_count_is_positions_plus_one() {
        let mut alpha = Alphabet::new();
        let e = parse_regex(&mut alpha, "(a.(b+c).d)*").unwrap();
        assert_eq!(glushkov(&e).num_states(), 5);
    }
}
