//! Cheapest accepted word under per-symbol costs.
//!
//! This is the computational core of the paper's weight calculations:
//!
//! * the *minimal size of a tree satisfying `D` with root label `a`* is
//!   `1 +` the cost of the cheapest word of `D(a)` where each letter `y`
//!   costs the minimal size of a `y`-rooted tree (fixpoint in `xvu_dtd`);
//! * inversion-graph and propagation-graph edge weights reuse the same
//!   notion.
//!
//! Costs use saturating `u64` arithmetic; [`INFINITE`] marks letters that
//! cannot be completed into any tree (unsatisfiable labels). The paper's
//! exponential-minimal-tree DTD family makes saturation a real concern, not
//! a theoretical nicety.

use crate::nfa::{Nfa, StateId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use xvu_tree::Sym;

/// Sentinel cost for "no finite completion exists".
pub const INFINITE: u64 = u64::MAX;

/// Result of a cheapest-word search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCostWord {
    /// Total cost (sum of per-letter costs; `0` for the empty word).
    pub cost: u64,
    /// A witness word achieving the cost.
    pub word: Vec<Sym>,
}

/// Computes the cheapest word in `L(M)` where letter `y` costs
/// `costs[y.index()]`. Letters with cost [`INFINITE`] are unusable.
///
/// Returns `None` iff no accepted word over finite-cost letters exists.
/// Costs accumulate with saturating addition: a path whose total saturates
/// to [`INFINITE`] is treated as unreachable (the distinction is
/// meaningless at that magnitude — no real tree has `2^64` nodes).
/// Runs Dijkstra over the automaton states — `O(|δ| log |Q|)`.
pub fn min_cost_word(nfa: &Nfa, costs: &[u64]) -> Option<MinCostWord> {
    let n = nfa.num_states();
    let mut dist = vec![INFINITE; n];
    // predecessor: (previous state, symbol taken)
    let mut pred: Vec<Option<(StateId, Sym)>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[nfa.start().index()] = 0;
    heap.push(Reverse((0, nfa.start().0)));

    while let Some(Reverse((d, q))) = heap.pop() {
        if d > dist[q as usize] {
            continue;
        }
        for &(y, t) in nfa.transitions_from(StateId(q)) {
            let c = costs
                .get(y.index())
                .copied()
                .expect("cost table covers the alphabet");
            if c == INFINITE {
                continue;
            }
            let nd = d.saturating_add(c);
            if nd < dist[t.index()] {
                dist[t.index()] = nd;
                pred[t.index()] = Some((StateId(q), y));
                heap.push(Reverse((nd, t.0)));
            }
        }
    }

    // best accepting state
    let goal = nfa
        .accepting_states()
        .filter(|q| dist[q.index()] != INFINITE)
        .min_by_key(|q| dist[q.index()])?;

    // reconstruct witness
    let mut word = Vec::new();
    let mut cur = goal;
    while let Some((p, y)) = pred[cur.index()] {
        word.push(y);
        cur = p;
    }
    debug_assert_eq!(cur, nfa.start());
    word.reverse();
    Some(MinCostWord {
        cost: dist[goal.index()],
        word,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glushkov::glushkov;
    use crate::regex::parse_regex;
    use xvu_tree::Alphabet;

    fn build(alpha: &mut Alphabet, re: &str) -> Nfa {
        glushkov(&parse_regex(alpha, re).unwrap())
    }

    #[test]
    fn empty_word_when_nullable() {
        let mut alpha = Alphabet::new();
        let m = build(&mut alpha, "(a.b)*");
        let costs = vec![1; alpha.len()];
        let r = min_cost_word(&m, &costs).unwrap();
        assert_eq!(r.cost, 0);
        assert!(r.word.is_empty());
    }

    #[test]
    fn picks_cheaper_alternative() {
        let mut alpha = Alphabet::new();
        let m = build(&mut alpha, "a.(b+c).d");
        let (b, c) = (alpha.get("b").unwrap(), alpha.get("c").unwrap());
        let mut costs = vec![1; alpha.len()];
        costs[b.index()] = 10;
        costs[c.index()] = 2;
        let r = min_cost_word(&m, &costs).unwrap();
        assert_eq!(r.cost, 1 + 2 + 1);
        assert!(r.word.contains(&c));
        assert!(!r.word.contains(&b));
        assert!(m.accepts(&r.word));
    }

    #[test]
    fn infinite_letters_are_avoided() {
        let mut alpha = Alphabet::new();
        let m = build(&mut alpha, "a.b+c");
        let (a, c) = (alpha.get("a").unwrap(), alpha.get("c").unwrap());
        let mut costs = vec![1; alpha.len()];
        costs[a.index()] = INFINITE;
        let r = min_cost_word(&m, &costs).unwrap();
        assert_eq!(r.word, vec![c]);
    }

    #[test]
    fn none_when_language_needs_infinite_letters() {
        let mut alpha = Alphabet::new();
        let m = build(&mut alpha, "a.b");
        let a = alpha.get("a").unwrap();
        let mut costs = vec![1; alpha.len()];
        costs[a.index()] = INFINITE;
        assert!(min_cost_word(&m, &costs).is_none());
    }

    #[test]
    fn none_on_empty_language() {
        let mut alpha = Alphabet::new();
        alpha.intern("a");
        let m = build(&mut alpha, "empty");
        let costs = vec![1; alpha.len()];
        assert!(min_cost_word(&m, &costs).is_none());
    }

    #[test]
    fn witness_is_accepted_and_cost_consistent() {
        let mut alpha = Alphabet::new();
        let m = build(&mut alpha, "(a.(b+c).d)*");
        let mut costs = vec![0; alpha.len()];
        for (i, c) in costs.iter_mut().enumerate() {
            *c = (i as u64 + 1) * 3;
        }
        let r = min_cost_word(&m, &costs).unwrap();
        assert!(m.accepts(&r.word));
        let recomputed: u64 = r.word.iter().map(|y| costs[y.index()]).sum();
        assert_eq!(recomputed, r.cost);
    }

    #[test]
    fn saturating_costs_do_not_wrap_around() {
        let mut alpha = Alphabet::new();
        // Wrapping addition would make the two-letter word look *cheap*
        // (cost ≈ 0) and return it; saturation must instead treat it as
        // unreachable, so no word is found at all.
        let m = build(&mut alpha, "a.a");
        let costs = vec![u64::MAX - 1; alpha.len()];
        assert!(min_cost_word(&m, &costs).is_none());
        // A single near-infinite letter stays representable.
        let m = build(&mut alpha, "a");
        let r = min_cost_word(&m, &costs).unwrap();
        assert_eq!(r.cost, u64::MAX - 1);
    }
}
