//! Deterministic automata: subset construction, minimisation, equivalence.

use crate::nfa::{Nfa, StateId};
use std::collections::HashMap;
use xvu_tree::Sym;

/// A (possibly partial) deterministic finite automaton over a fixed-size
/// alphabet.
///
/// Transitions are a dense `state × symbol-index` table; `None` means the
/// word is rejected (implicit dead state). Used for the typing-based path
/// selector (paper §5 suggests typing nodes by the states of a
/// deterministic content-model automaton) and for language-equivalence
/// checks in tests.
#[derive(Clone, Debug)]
pub struct Dfa {
    start: StateId,
    accepting: Vec<bool>,
    /// `trans[q][sym.index()]`
    trans: Vec<Vec<Option<StateId>>>,
    alphabet_len: usize,
}

impl Dfa {
    /// Determinises an NFA by subset construction. `alphabet_len` bounds the
    /// symbol indices used by the NFA.
    pub fn determinize(nfa: &Nfa, alphabet_len: usize) -> Dfa {
        let mut subset_ids: HashMap<Vec<u32>, StateId> = HashMap::new();
        let mut accepting = Vec::new();
        let mut trans: Vec<Vec<Option<StateId>>> = Vec::new();
        let mut worklist: Vec<Vec<u32>> = Vec::new();

        let start_set = vec![nfa.start().0];
        subset_ids.insert(start_set.clone(), StateId(0));
        accepting.push(nfa.is_accepting(nfa.start()));
        trans.push(vec![None; alphabet_len]);
        worklist.push(start_set);

        while let Some(set) = worklist.pop() {
            let src = subset_ids[&set];
            // successor subsets per symbol
            let mut succ: HashMap<Sym, Vec<u32>> = HashMap::new();
            for &q in &set {
                for &(y, t) in nfa.transitions_from(StateId(q)) {
                    let entry = succ.entry(y).or_default();
                    if !entry.contains(&t.0) {
                        entry.push(t.0);
                    }
                }
            }
            for (y, mut target_set) in succ {
                target_set.sort_unstable();
                let id = match subset_ids.get(&target_set) {
                    Some(&id) => id,
                    None => {
                        let id = StateId(subset_ids.len() as u32);
                        subset_ids.insert(target_set.clone(), id);
                        accepting.push(target_set.iter().any(|&q| nfa.is_accepting(StateId(q))));
                        trans.push(vec![None; alphabet_len]);
                        worklist.push(target_set);
                        id
                    }
                };
                trans[src.index()][y.index()] = Some(id);
            }
        }

        Dfa {
            start: StateId(0),
            accepting,
            trans,
            alphabet_len,
        }
    }

    /// Number of states (not counting the implicit dead state).
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `q` is accepting.
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting[q.index()]
    }

    /// Single deterministic step; `None` = dead.
    #[inline]
    pub fn step(&self, q: StateId, y: Sym) -> Option<StateId> {
        self.trans[q.index()].get(y.index()).copied().flatten()
    }

    /// Runs the automaton on `word`, returning the reached state (or `None`
    /// if the run dies).
    pub fn run(&self, word: &[Sym]) -> Option<StateId> {
        let mut q = self.start;
        for &y in word {
            q = self.step(q, y)?;
        }
        Some(q)
    }

    /// The sequence of states visited *before* each letter (length
    /// `word.len() + 1`, last entry is the state after the whole word).
    ///
    /// This is the document typing `Θ` of paper §5: the type of the `i`-th
    /// child is the automaton state reached after its left siblings.
    pub fn run_trace(&self, word: &[Sym]) -> Option<Vec<StateId>> {
        let mut states = Vec::with_capacity(word.len() + 1);
        let mut q = self.start;
        states.push(q);
        for &y in word {
            q = self.step(q, y)?;
            states.push(q);
        }
        Some(states)
    }

    /// Word membership.
    pub fn accepts(&self, word: &[Sym]) -> bool {
        self.run(word).is_some_and(|q| self.is_accepting(q))
    }

    /// Moore minimisation (over the completed automaton; the dead state is
    /// re-dropped afterwards). Only reachable states are kept.
    pub fn minimize(&self) -> Dfa {
        // Complete: add explicit dead state at index n.
        let n = self.num_states();
        let dead = n;
        let total = n + 1;
        let step = |q: usize, a: usize| -> usize {
            if q == dead {
                dead
            } else {
                self.trans[q][a].map_or(dead, |t| t.index())
            }
        };
        let accepting = |q: usize| q != dead && self.accepting[q];

        // Initial partition: accepting vs not.
        let mut class: Vec<usize> = (0..total).map(|q| usize::from(accepting(q))).collect();
        let mut n_classes = 2;
        loop {
            // signature = (class, class-of-successor per symbol)
            let mut sig_ids: HashMap<Vec<usize>, usize> = HashMap::new();
            let mut new_class = vec![0usize; total];
            for q in 0..total {
                let mut sig = Vec::with_capacity(self.alphabet_len + 1);
                sig.push(class[q]);
                for a in 0..self.alphabet_len {
                    sig.push(class[step(q, a)]);
                }
                let next_id = sig_ids.len();
                let id = *sig_ids.entry(sig).or_insert(next_id);
                new_class[q] = id;
            }
            let n_new = sig_ids.len();
            class = new_class;
            if n_new == n_classes {
                break;
            }
            n_classes = n_new;
        }

        // Rebuild, dropping the dead class and unreachable classes.
        let dead_class = class[dead];
        let mut remap: HashMap<usize, StateId> = HashMap::new();
        let mut accepting_out = Vec::new();
        let mut trans_out: Vec<Vec<Option<StateId>>> = Vec::new();
        let mut order = vec![class[self.start.index()]];
        remap.insert(order[0], StateId(0));
        accepting_out.push(self.accepting[self.start.index()]);
        trans_out.push(vec![None; self.alphabet_len]);
        let mut i = 0;
        while i < order.len() {
            let cls = order[i];
            // find a representative original state of this class
            let rep = (0..n)
                .find(|&q| class[q] == cls)
                .expect("class has a live representative");
            for a in 0..self.alphabet_len {
                let tgt_cls = class[step(rep, a)];
                if tgt_cls == dead_class {
                    continue;
                }
                let next_id = remap.len();
                let id = *remap.entry(tgt_cls).or_insert_with(|| {
                    order.push(tgt_cls);
                    let rep2 = (0..n)
                        .find(|&q| class[q] == tgt_cls)
                        .expect("live representative");
                    accepting_out.push(self.accepting[rep2]);
                    trans_out.push(vec![None; self.alphabet_len]);
                    StateId(next_id as u32)
                });
                trans_out[i][a] = Some(id);
            }
            i += 1;
        }

        Dfa {
            start: StateId(0),
            accepting: accepting_out,
            trans: trans_out,
            alphabet_len: self.alphabet_len,
        }
    }

    /// Language inclusion `L(self) ⊆ L(other)` via synchronous product
    /// search: a reachable pair where `self` accepts and `other` does not
    /// is a counterexample.
    pub fn subset_of(&self, other: &Dfa) -> bool {
        assert_eq!(
            self.alphabet_len, other.alphabet_len,
            "alphabets must match"
        );
        let mut seen: HashMap<(Option<u32>, Option<u32>), ()> = HashMap::new();
        let mut stack = vec![(Some(self.start.0), Some(other.start.0))];
        seen.insert(stack[0], ());
        while let Some((p, q)) = stack.pop() {
            let p_acc = p.is_some_and(|p| self.accepting[p as usize]);
            let q_acc = q.is_some_and(|q| other.accepting[q as usize]);
            if p_acc && !q_acc {
                return false;
            }
            if p.is_none() {
                // self is dead: it accepts nothing further
                continue;
            }
            for a in 0..self.alphabet_len {
                let y = Sym::from_index(a);
                let pn = p.and_then(|p| self.step(StateId(p), y)).map(|s| s.0);
                let qn = q.and_then(|q| other.step(StateId(q), y)).map(|s| s.0);
                if pn.is_some() && seen.insert((pn, qn), ()).is_none() {
                    stack.push((pn, qn));
                }
            }
        }
        true
    }

    /// Language equivalence via synchronous product search.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        assert_eq!(
            self.alphabet_len, other.alphabet_len,
            "alphabets must match"
        );
        // Pair states, None = dead.
        let mut seen: HashMap<(Option<u32>, Option<u32>), ()> = HashMap::new();
        let mut stack = vec![(Some(self.start.0), Some(other.start.0))];
        seen.insert(stack[0], ());
        while let Some((p, q)) = stack.pop() {
            let p_acc = p.is_some_and(|p| self.accepting[p as usize]);
            let q_acc = q.is_some_and(|q| other.accepting[q as usize]);
            if p_acc != q_acc {
                return false;
            }
            if p.is_none() && q.is_none() {
                continue;
            }
            for a in 0..self.alphabet_len {
                let y = Sym::from_index(a);
                let pn = p.and_then(|p| self.step(StateId(p), y)).map(|s| s.0);
                let qn = q.and_then(|q| other.step(StateId(q), y)).map(|s| s.0);
                if (pn.is_some() || qn.is_some()) && seen.insert((pn, qn), ()).is_none() {
                    stack.push((pn, qn));
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glushkov::glushkov;
    use crate::regex::parse_regex;
    use xvu_tree::Alphabet;

    fn dfa(alpha: &mut Alphabet, re: &str) -> Dfa {
        let e = parse_regex(alpha, re).unwrap();
        let n = glushkov(&e);
        let len = alpha.len();
        Dfa::determinize(&n, len)
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Sym> {
        s.split_whitespace()
            .map(|l| alpha.get(l).unwrap())
            .collect()
    }

    #[test]
    fn determinize_preserves_language() {
        let mut alpha = Alphabet::new();
        let d = dfa(&mut alpha, "(a.(b+c).d)*");
        assert!(d.accepts(&w(&alpha, "")));
        assert!(d.accepts(&w(&alpha, "a b d a c d")));
        assert!(!d.accepts(&w(&alpha, "a b")));
    }

    #[test]
    fn run_trace_types_each_prefix() {
        let mut alpha = Alphabet::new();
        let d = dfa(&mut alpha, "a.b");
        let trace = d.run_trace(&w(&alpha, "a b")).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0], d.start());
        assert!(d.is_accepting(trace[2]));
        assert!(d.run_trace(&w(&alpha, "b")).is_none());
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        let mut alpha = Alphabet::new();
        // (a+b).(a+b) — Glushkov gives 5 states; minimal DFA has 3.
        let d = dfa(&mut alpha, "(a+b).(a+b)");
        let m = d.minimize();
        assert!(m.num_states() <= 3);
        assert!(m.accepts(&w(&alpha, "a b")));
        assert!(m.accepts(&w(&alpha, "b b")));
        assert!(!m.accepts(&w(&alpha, "a")));
        assert!(!m.accepts(&w(&alpha, "a a a")));
    }

    #[test]
    fn minimize_preserves_language_randomish() {
        let mut alpha = Alphabet::new();
        let d = dfa(&mut alpha, "(a.b*)*.c?");
        let m = d.minimize();
        for s in ["", "c", "a", "a b b", "a b c", "a a c", "b", "c c", "a c b"] {
            let word = w(&alpha, s);
            assert_eq!(d.accepts(&word), m.accepts(&word), "word {s:?}");
        }
    }

    #[test]
    fn equivalence_distinguishes_languages() {
        let mut alpha = Alphabet::new();
        let d1 = dfa(&mut alpha, "(a.b)*");
        let d2 = dfa(&mut alpha, "(a.b)*.a?");
        let d3 = dfa(&mut alpha, "((a.b)*)*");
        assert!(!d1.equivalent(&d2));
        assert!(d1.equivalent(&d3));
        assert!(d1.equivalent(&d1.minimize()));
    }

    #[test]
    fn subset_relations() {
        let mut alpha = Alphabet::new();
        let small = dfa(&mut alpha, "(a.b)*");
        let big = dfa(&mut alpha, "(a.b?)*");
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
        assert!(small.subset_of(&small));
        let empty = dfa(&mut alpha, "empty");
        assert!(empty.subset_of(&small));
        assert!(!small.subset_of(&empty));
        // equivalence = mutual inclusion
        let same = dfa(&mut alpha, "((a.b)*)*");
        assert!(small.subset_of(&same) && same.subset_of(&small));
    }

    #[test]
    fn empty_language_dfa() {
        let mut alpha = Alphabet::new();
        alpha.intern("a");
        let d = dfa(&mut alpha, "empty");
        assert!(!d.accepts(&[]));
        let e = dfa(&mut alpha, "a.empty");
        assert!(d.equivalent(&e));
    }
}
