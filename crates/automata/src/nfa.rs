//! Nondeterministic finite automata.

use xvu_tree::Sym;

/// An automaton state — a dense index into an automaton's state table.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl std::fmt::Debug for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl StateId {
    /// The dense index of this state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A nondeterministic finite automaton `M = (Σ, Q, q0, δ, F)` without
/// ε-transitions.
///
/// The transition relation is stored per source state for the access
/// pattern of the paper's graph constructions: "for each `q --y--> q'` in
/// `δ` …" while standing at a fixed vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Nfa {
    start: StateId,
    accepting: Vec<bool>,
    /// `trans[q]` lists `(y, q')` for every transition `q --y--> q'`.
    trans: Vec<Vec<(Sym, StateId)>>,
}

impl Nfa {
    /// Creates an automaton with `n_states` states (all non-accepting, no
    /// transitions) and the given start state.
    ///
    /// # Panics
    /// Panics if `start` is out of range.
    pub fn new(n_states: usize, start: StateId) -> Nfa {
        assert!(start.index() < n_states, "start state out of range");
        Nfa {
            start,
            accepting: vec![false; n_states],
            trans: vec![Vec::new(); n_states],
        }
    }

    /// Number of states `|Q|`.
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// Number of transitions `|δ|`.
    pub fn num_transitions(&self) -> usize {
        self.trans.iter().map(Vec::len).sum()
    }

    /// The paper's size measure `|M| = |Q| + |δ| + |F|`.
    pub fn size(&self) -> usize {
        self.num_states() + self.num_transitions() + self.accepting_states().count()
    }

    /// The start state `q0`.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Marks `q` accepting.
    pub fn set_accepting(&mut self, q: StateId, accepting: bool) {
        self.accepting[q.index()] = accepting;
    }

    /// Whether `q` is accepting.
    #[inline]
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting[q.index()]
    }

    /// Iterates over the accepting states `F`.
    pub fn accepting_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.accepting
            .iter()
            .enumerate()
            .filter(|(_, &acc)| acc)
            .map(|(i, _)| StateId(i as u32))
    }

    /// Adds a transition `q --y--> q'`. Duplicate insertions are ignored.
    pub fn add_transition(&mut self, q: StateId, y: Sym, q2: StateId) {
        assert!(q2.index() < self.num_states(), "target state out of range");
        let list = &mut self.trans[q.index()];
        if !list.contains(&(y, q2)) {
            list.push((y, q2));
        }
    }

    /// All transitions leaving `q` as `(symbol, target)` pairs.
    #[inline]
    pub fn transitions_from(&self, q: StateId) -> &[(Sym, StateId)] {
        &self.trans[q.index()]
    }

    /// Targets of transitions from `q` on symbol `y`.
    pub fn step(&self, q: StateId, y: Sym) -> impl Iterator<Item = StateId> + '_ {
        self.trans[q.index()]
            .iter()
            .filter(move |&&(s, _)| s == y)
            .map(|&(_, t)| t)
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.accepting.len() as u32).map(StateId)
    }

    /// Iterates over all transitions as `(source, symbol, target)`.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Sym, StateId)> + '_ {
        self.trans
            .iter()
            .enumerate()
            .flat_map(|(q, list)| list.iter().map(move |&(y, t)| (StateId(q as u32), y, t)))
    }

    /// Word membership by subset simulation: `w ∈ L(M)`?
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let mut current = vec![false; self.num_states()];
        current[self.start.index()] = true;
        for &y in word {
            let mut next = vec![false; self.num_states()];
            let mut any = false;
            for (q, &live) in current.iter().enumerate() {
                if !live {
                    continue;
                }
                for &(s, t) in &self.trans[q] {
                    if s == y {
                        next[t.index()] = true;
                        any = true;
                    }
                }
            }
            if !any {
                return false;
            }
            current = next;
        }
        current
            .iter()
            .zip(&self.accepting)
            .any(|(&reach, &acc)| reach && acc)
    }

    /// Whether `L(M) = ∅`.
    pub fn language_is_empty(&self) -> bool {
        let reach = self.reachable_from_start();
        !reach
            .iter()
            .enumerate()
            .any(|(q, &r)| r && self.accepting[q])
    }

    /// Whether the automaton is deterministic (at most one target per
    /// `(state, symbol)` pair).
    pub fn is_deterministic(&self) -> bool {
        self.trans.iter().all(|list| {
            let mut seen: Vec<Sym> = Vec::with_capacity(list.len());
            list.iter().all(|&(y, _)| {
                if seen.contains(&y) {
                    false
                } else {
                    seen.push(y);
                    true
                }
            })
        })
    }

    fn reachable_from_start(&self) -> Vec<bool> {
        let mut reach = vec![false; self.num_states()];
        let mut stack = vec![self.start];
        reach[self.start.index()] = true;
        while let Some(q) = stack.pop() {
            for &(_, t) in &self.trans[q.index()] {
                if !reach[t.index()] {
                    reach[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        reach
    }

    fn coreachable_to_accepting(&self) -> Vec<bool> {
        // reverse adjacency
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.num_states()];
        for (q, _, t) in self.transitions() {
            rev[t.index()].push(q);
        }
        let mut co = vec![false; self.num_states()];
        let mut stack: Vec<StateId> = self.accepting_states().collect();
        for &q in &stack {
            co[q.index()] = true;
        }
        while let Some(q) = stack.pop() {
            for &p in &rev[q.index()] {
                if !co[p.index()] {
                    co[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        co
    }

    /// Removes states that are unreachable from the start or cannot reach an
    /// accepting state. The start state is always kept (so the automaton
    /// stays well-formed even when the language is empty).
    pub fn trim(&self) -> Nfa {
        let reach = self.reachable_from_start();
        let co = self.coreachable_to_accepting();
        let keep: Vec<bool> = reach
            .iter()
            .zip(&co)
            .enumerate()
            .map(|(q, (&r, &c))| (r && c) || q == self.start.index())
            .collect();
        let mut remap = vec![None; self.num_states()];
        let mut n = 0u32;
        for (q, &k) in keep.iter().enumerate() {
            if k {
                remap[q] = Some(StateId(n));
                n += 1;
            }
        }
        let mut out = Nfa::new(n as usize, remap[self.start.index()].expect("start kept"));
        for (q, &k) in keep.iter().enumerate() {
            if !k {
                continue;
            }
            let nq = remap[q].expect("kept");
            if self.accepting[q] {
                out.set_accepting(nq, true);
            }
            for &(y, t) in &self.trans[q] {
                if let Some(nt) = remap[t.index()] {
                    out.add_transition(nq, y, nt);
                }
            }
        }
        out
    }

    /// A copy of this automaton with a different start state. Used by
    /// samplers that need "cheapest completion from the current state".
    pub fn with_start(&self, q: StateId) -> Nfa {
        assert!(q.index() < self.num_states(), "start state out of range");
        let mut out = self.clone();
        out.start = q;
        out
    }

    /// Erases all symbols matched by `erase` from the language: transitions
    /// on erased symbols become ε-transitions, which are then eliminated.
    ///
    /// This computes the homomorphic image of `L(M)` under the morphism that
    /// deletes erased symbols — exactly the derivation of a *view DTD*
    /// content model from a source content model and an annotation (paper
    /// §2, "a DTD capturing `A(L(D))` can be easily derived").
    pub fn erase_symbols(&self, erase: impl Fn(Sym) -> bool) -> Nfa {
        let n = self.num_states();
        // ε-closure over erased transitions, per state (forward closure).
        let mut closure: Vec<Vec<StateId>> = Vec::with_capacity(n);
        for q in self.states() {
            let mut seen = vec![false; n];
            let mut stack = vec![q];
            seen[q.index()] = true;
            while let Some(p) = stack.pop() {
                for &(y, t) in &self.trans[p.index()] {
                    if erase(y) && !seen[t.index()] {
                        seen[t.index()] = true;
                        stack.push(t);
                    }
                }
            }
            closure.push(
                seen.iter()
                    .enumerate()
                    .filter(|(_, &s)| s)
                    .map(|(i, _)| StateId(i as u32))
                    .collect(),
            );
        }
        let mut out = Nfa::new(n, self.start);
        for q in self.states() {
            // accepting' = can reach an accepting state via erased symbols
            if closure[q.index()].iter().any(|&p| self.is_accepting(p)) {
                out.set_accepting(q, true);
            }
            for &p in &closure[q.index()] {
                for &(y, t) in &self.trans[p.index()] {
                    if !erase(y) {
                        out.add_transition(q, y, t);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glushkov::glushkov;
    use crate::regex::parse_regex;
    use xvu_tree::Alphabet;

    fn word(alpha: &Alphabet, s: &str) -> Vec<Sym> {
        s.split_whitespace()
            .map(|l| alpha.get(l).expect("label interned"))
            .collect()
    }

    #[test]
    fn manual_automaton_membership() {
        // Paper Fig. 2, automaton for r → (a·(b+c)·d)*:
        // q0 --a--> q1, q1 --b--> q2, q1 --c--> q2, q2 --d--> q0; F = {q0}
        let mut alpha = Alphabet::new();
        let (a, b, c, d) = (
            alpha.intern("a"),
            alpha.intern("b"),
            alpha.intern("c"),
            alpha.intern("d"),
        );
        let mut m = Nfa::new(3, StateId(0));
        m.add_transition(StateId(0), a, StateId(1));
        m.add_transition(StateId(1), b, StateId(2));
        m.add_transition(StateId(1), c, StateId(2));
        m.add_transition(StateId(2), d, StateId(0));
        m.set_accepting(StateId(0), true);

        assert!(m.accepts(&[]));
        assert!(m.accepts(&word(&alpha, "a b d")));
        assert!(m.accepts(&word(&alpha, "a b d a c d")));
        assert!(!m.accepts(&word(&alpha, "a b")));
        assert!(!m.accepts(&word(&alpha, "b")));
        assert_eq!(m.size(), 3 + 4 + 1);
    }

    #[test]
    fn step_filters_by_symbol() {
        let mut alpha = Alphabet::new();
        let (a, b) = (alpha.intern("a"), alpha.intern("b"));
        let mut m = Nfa::new(2, StateId(0));
        m.add_transition(StateId(0), a, StateId(1));
        m.add_transition(StateId(0), b, StateId(0));
        let targets: Vec<_> = m.step(StateId(0), a).collect();
        assert_eq!(targets, vec![StateId(1)]);
    }

    #[test]
    fn duplicate_transitions_ignored() {
        let mut alpha = Alphabet::new();
        let a = alpha.intern("a");
        let mut m = Nfa::new(2, StateId(0));
        m.add_transition(StateId(0), a, StateId(1));
        m.add_transition(StateId(0), a, StateId(1));
        assert_eq!(m.num_transitions(), 1);
    }

    #[test]
    fn emptiness() {
        let mut alpha = Alphabet::new();
        let a = alpha.intern("a");
        let mut m = Nfa::new(2, StateId(0));
        m.add_transition(StateId(0), a, StateId(1));
        assert!(m.language_is_empty());
        m.set_accepting(StateId(1), true);
        assert!(!m.language_is_empty());
    }

    #[test]
    fn determinism_check() {
        let mut alpha = Alphabet::new();
        let a = alpha.intern("a");
        let mut m = Nfa::new(3, StateId(0));
        m.add_transition(StateId(0), a, StateId(1));
        assert!(m.is_deterministic());
        m.add_transition(StateId(0), a, StateId(2));
        assert!(!m.is_deterministic());
    }

    #[test]
    fn trim_removes_dead_states() {
        let mut alpha = Alphabet::new();
        let (a, b) = (alpha.intern("a"), alpha.intern("b"));
        let mut m = Nfa::new(4, StateId(0));
        m.add_transition(StateId(0), a, StateId(1));
        m.add_transition(StateId(0), b, StateId(2)); // q2 is a dead end
        m.add_transition(StateId(3), a, StateId(1)); // q3 unreachable
        m.set_accepting(StateId(1), true);
        let t = m.trim();
        assert_eq!(t.num_states(), 2);
        assert!(t.accepts(&[a]));
        assert!(!t.accepts(&[b]));
    }

    #[test]
    fn erase_symbols_derives_view_language() {
        // Paper example: D0(r) = (a·(b+c)·d)* with b, c invisible under r
        // gives the view content model (a·d)*.
        let mut alpha = Alphabet::new();
        let e = parse_regex(&mut alpha, "(a.(b+c).d)*").unwrap();
        let m = glushkov(&e);
        let (a, b, c, d) = (
            alpha.get("a").unwrap(),
            alpha.get("b").unwrap(),
            alpha.get("c").unwrap(),
            alpha.get("d").unwrap(),
        );
        let v = m.erase_symbols(|y| y == b || y == c);
        assert!(v.accepts(&[]));
        assert!(v.accepts(&[a, d]));
        assert!(v.accepts(&[a, d, a, d]));
        assert!(!v.accepts(&[a]));
        assert!(!v.accepts(&[d, a]));
        assert!(!v.accepts(&[a, b, d]));
    }

    #[test]
    fn erase_all_symbols_gives_epsilon_language() {
        let mut alpha = Alphabet::new();
        let e = parse_regex(&mut alpha, "a.b").unwrap();
        let m = glushkov(&e);
        let v = m.erase_symbols(|_| true);
        assert!(v.accepts(&[]));
        assert!(!v.language_is_empty());
    }
}
