//! Regular-expression ASTs and the paper's concrete syntax.
//!
//! DTD rules in the paper map symbols to regular expressions such as
//! `r → (a·(b+c)·d)*`. The concrete syntax accepted here:
//!
//! ```text
//! alt   ::= cat (('+' | '|') cat)*          alternation
//! cat   ::= rep ('.' rep)*                  concatenation
//! rep   ::= atom ('*' | '?')*               iteration / option
//! atom  ::= label | 'eps' | 'empty' | '(' alt ')'
//! label ::= [A-Za-z_][A-Za-z0-9_-]*  (except the keywords)
//! ```
//!
//! `eps` is the empty word, `empty` the empty language.

use crate::error::AutomatonError;
use std::fmt::Write as _;
use xvu_tree::{Alphabet, Sym};

/// A regular expression over alphabet symbols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The empty word `ε`.
    Epsilon,
    /// A single symbol.
    Sym(Sym),
    /// Concatenation `e1 · e2 · …` (empty sequence = ε).
    Concat(Vec<Regex>),
    /// Alternation `e1 + e2 + …` (empty sequence = ∅).
    Alt(Vec<Regex>),
    /// Kleene star `e*`.
    Star(Box<Regex>),
    /// Option `e?` (= `e + ε`).
    Opt(Box<Regex>),
}

impl Regex {
    /// Convenience constructor: a single symbol.
    pub fn sym(s: Sym) -> Regex {
        Regex::Sym(s)
    }

    /// Convenience constructor: concatenation of the given parts.
    pub fn concat(parts: impl IntoIterator<Item = Regex>) -> Regex {
        Regex::Concat(parts.into_iter().collect())
    }

    /// Convenience constructor: alternation of the given parts.
    pub fn alt(parts: impl IntoIterator<Item = Regex>) -> Regex {
        Regex::Alt(parts.into_iter().collect())
    }

    /// Convenience constructor: Kleene star.
    pub fn star(e: Regex) -> Regex {
        Regex::Star(Box::new(e))
    }

    /// Convenience constructor: option.
    pub fn opt(e: Regex) -> Regex {
        Regex::Opt(Box::new(e))
    }

    /// Whether the empty word belongs to the language.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
        }
    }

    /// Number of symbol occurrences (the Glushkov position count).
    pub fn positions(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon => 0,
            Regex::Sym(_) => 1,
            Regex::Concat(parts) | Regex::Alt(parts) => parts.iter().map(Regex::positions).sum(),
            Regex::Star(e) | Regex::Opt(e) => e.positions(),
        }
    }

    /// Renders the regex in the concrete syntax (fully parenthesised where
    /// needed; parses back to an equal AST up to redundant nesting).
    pub fn to_syntax(&self, alpha: &Alphabet) -> String {
        let mut out = String::new();
        self.write(alpha, &mut out, 0);
        out
    }

    // prec: 0 = alt context, 1 = concat context, 2 = atom context
    fn write(&self, alpha: &Alphabet, out: &mut String, prec: u8) {
        match self {
            Regex::Empty => out.push_str("empty"),
            Regex::Epsilon => out.push_str("eps"),
            Regex::Sym(s) => out.push_str(alpha.name(*s)),
            Regex::Concat(parts) => {
                if parts.is_empty() {
                    out.push_str("eps");
                    return;
                }
                let need_parens = prec >= 2;
                if need_parens {
                    out.push('(');
                }
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        out.push('.');
                    }
                    p.write(alpha, out, 2);
                }
                if need_parens {
                    out.push(')');
                }
            }
            Regex::Alt(parts) => {
                if parts.is_empty() {
                    out.push_str("empty");
                    return;
                }
                let need_parens = prec >= 1;
                if need_parens {
                    out.push('(');
                }
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        out.push('+');
                    }
                    p.write(alpha, out, 1);
                }
                if need_parens {
                    out.push(')');
                }
            }
            Regex::Star(e) => {
                e.write(alpha, out, 2);
                let _ = write!(out, "*");
            }
            Regex::Opt(e) => {
                e.write(alpha, out, 2);
                let _ = write!(out, "?");
            }
        }
    }
}

/// Parses the concrete regex syntax, interning labels into `alpha`.
pub fn parse_regex(alpha: &mut Alphabet, input: &str) -> Result<Regex, AutomatonError> {
    let mut p = Parser {
        alpha,
        bytes: input.as_bytes(),
        pos: 0,
    };
    let e = p.alt()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

struct Parser<'a> {
    alpha: &'a mut Alphabet,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn alt(&mut self) -> Result<Regex, AutomatonError> {
        let mut parts = vec![self.cat()?];
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'+') | Some(b'|') => {
                    self.pos += 1;
                    parts.push(self.cat()?);
                }
                _ => break,
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Regex::Alt(parts)
        })
    }

    fn cat(&mut self) -> Result<Regex, AutomatonError> {
        let mut parts = vec![self.rep()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'.') {
                self.pos += 1;
                parts.push(self.rep()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Regex::Concat(parts)
        })
    }

    fn rep(&mut self) -> Result<Regex, AutomatonError> {
        let mut e = self.atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    e = Regex::star(e);
                }
                Some(b'?') => {
                    self.pos += 1;
                    e = Regex::opt(e);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Regex, AutomatonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.alt()?;
                self.skip_ws();
                if self.peek() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                self.pos += 1;
                Ok(e)
            }
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => {
                let label = self.label();
                match label.as_str() {
                    "eps" => Ok(Regex::Epsilon),
                    "empty" => Ok(Regex::Empty),
                    _ => Ok(Regex::Sym(self.alpha.intern(&label))),
                }
            }
            _ => Err(self.err("expected a label, 'eps', 'empty', or '('")),
        }
    }

    fn label(&mut self) -> String {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii")
            .to_owned()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> AutomatonError {
        AutomatonError::Parse {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_d0_rule() {
        // r → (a·(b+c)·d)*
        let mut alpha = Alphabet::new();
        let e = parse_regex(&mut alpha, "(a.(b+c).d)*").unwrap();
        let (a, b, c, d) = (
            alpha.get("a").unwrap(),
            alpha.get("b").unwrap(),
            alpha.get("c").unwrap(),
            alpha.get("d").unwrap(),
        );
        let expected = Regex::star(Regex::concat([
            Regex::sym(a),
            Regex::alt([Regex::sym(b), Regex::sym(c)]),
            Regex::sym(d),
        ]));
        assert_eq!(e, expected);
    }

    #[test]
    fn parse_keywords() {
        let mut alpha = Alphabet::new();
        assert_eq!(parse_regex(&mut alpha, "eps").unwrap(), Regex::Epsilon);
        assert_eq!(parse_regex(&mut alpha, "empty").unwrap(), Regex::Empty);
        assert!(alpha.is_empty(), "keywords must not be interned");
    }

    #[test]
    fn precedence_star_binds_tightest() {
        let mut alpha = Alphabet::new();
        let e = parse_regex(&mut alpha, "a.b*+c").unwrap();
        // (a.(b*)) + c
        let (a, b, c) = (
            alpha.get("a").unwrap(),
            alpha.get("b").unwrap(),
            alpha.get("c").unwrap(),
        );
        let expected = Regex::alt([
            Regex::concat([Regex::sym(a), Regex::star(Regex::sym(b))]),
            Regex::sym(c),
        ]);
        assert_eq!(e, expected);
    }

    #[test]
    fn pipe_is_alternation_too() {
        let mut alpha = Alphabet::new();
        let e1 = parse_regex(&mut alpha, "a|b").unwrap();
        let e2 = parse_regex(&mut alpha, "a+b").unwrap();
        assert_eq!(e1, e2);
    }

    #[test]
    fn nullable_cases() {
        let mut alpha = Alphabet::new();
        assert!(parse_regex(&mut alpha, "a*").unwrap().nullable());
        assert!(parse_regex(&mut alpha, "a?").unwrap().nullable());
        assert!(parse_regex(&mut alpha, "eps").unwrap().nullable());
        assert!(!parse_regex(&mut alpha, "a.b*").unwrap().nullable());
        assert!(parse_regex(&mut alpha, "a*+b").unwrap().nullable());
        assert!(!parse_regex(&mut alpha, "empty").unwrap().nullable());
    }

    #[test]
    fn positions_counts_occurrences() {
        let mut alpha = Alphabet::new();
        let e = parse_regex(&mut alpha, "(a.(b+c).d)*").unwrap();
        assert_eq!(e.positions(), 4);
        let e = parse_regex(&mut alpha, "a.a.a").unwrap();
        assert_eq!(e.positions(), 3);
    }

    #[test]
    fn syntax_round_trip() {
        let mut alpha = Alphabet::new();
        for src in [
            "(a.(b+c).d)*",
            "a.b*+c?",
            "eps",
            "empty",
            "((a+b).c)*",
            "a?",
            "a.b.c",
        ] {
            let e = parse_regex(&mut alpha, src).unwrap();
            let printed = e.to_syntax(&alpha);
            let e2 = parse_regex(&mut alpha, &printed).unwrap();
            assert_eq!(e, e2, "round trip failed for {src:?} → {printed:?}");
        }
    }

    #[test]
    fn parse_errors() {
        let mut alpha = Alphabet::new();
        for bad in ["", "(", "a+", "a..b", "*", "(a", "a)"] {
            assert!(parse_regex(&mut alpha, bad).is_err(), "{bad:?} should fail");
        }
    }
}
