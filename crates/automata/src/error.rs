//! Errors for regex parsing and automaton construction.

use std::fmt;

/// Errors raised by this crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AutomatonError {
    /// Parse error in regular-expression syntax.
    Parse {
        /// Byte offset of the error in the input.
        at: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A state identifier was out of range for the automaton.
    UnknownState(u32),
}

impl fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomatonError::Parse { at, msg } => write!(f, "regex parse error at byte {at}: {msg}"),
            AutomatonError::UnknownState(s) => write!(f, "unknown automaton state q{s}"),
        }
    }
}

impl std::error::Error for AutomatonError {}
