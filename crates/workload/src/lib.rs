//! Workloads for the view-update pipeline: paper fixtures, deterministic
//! random generators, and the hospital security-view scenario.
//!
//! * [`paper`] — the paper's figures and complexity families as reusable
//!   fixtures;
//! * [`generate_dtd`] — random satisfiable layered DTDs;
//! * [`generate_doc`] — random documents satisfying a DTD;
//! * [`generate_annotation`] — random annotations;
//! * [`generate_update`] — random *valid* view updates (membership-checked
//!   against the derived view DTD);
//! * [`scenario`] — the hospital security-view macro-benchmark workload.
//!
//! Every generator is deterministic in its seed, making experiments and
//! failures reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anngen;
mod docgen;
mod dtdgen;
pub mod paper;
pub mod scenario;
mod updategen;

pub use anngen::generate_annotation;
pub use docgen::{generate_doc, DocGenConfig};
pub use dtdgen::{generate_dtd, DtdGenConfig};
pub use updategen::{generate_update, UpdateGenConfig};
