//! Workloads for the view-update pipeline: paper fixtures, deterministic
//! random generators, and the hospital security-view scenario.
//!
//! * [`paper`] — the paper's figures and complexity families as reusable
//!   fixtures;
//! * [`generate_dtd`] — random satisfiable layered DTDs;
//! * [`generate_doc`] — random documents satisfying a DTD;
//! * [`generate_annotation`] — random annotations;
//! * [`generate_update`] — random *valid* view updates (membership-checked
//!   against the derived view DTD);
//! * [`ChurnStream`] — localized small-edit churn streams over a fixed
//!   large document (the repeated-update serving workload);
//! * [`scenario`] — named macro-benchmark workloads (hospital, outline,
//!   publishing, config views, audit redaction);
//! * [`enumo`] — grammar-space *enumeration* of workload families
//!   (recipe terms + `plug` substitution + metric-bounded budgets);
//! * [`fleet`] — fleet-scale serving workloads (many documents, Zipf
//!   popularity, full client lifecycles) with per-operation
//!   fingerprints for daemon-vs-library differential testing;
//! * [`differential`] — the differential oracle harness over enumerated
//!   instances (cached ≡ one-shot ≡ repair-where-tractable;
//!   count ≡ |enumeration|);
//! * [`replay`] — replayable instance dumps for failure messages.
//!
//! Every generator is deterministic in its seed, making experiments and
//! failures reproducible.
//!
//! # Paper cross-reference
//!
//! | paper | here |
//! |-------|------|
//! | the running example (Figs. 1–4, 7) | [`paper::running_example`] |
//! | `D2` (exponentially many optimal propagations, §4) | [`paper::d2_exponential_choices`] |
//! | `D3` (the repair counterexample, §6.2) | [`paper::d3_repair_pitfall`] |
//! | the exponential minimal-tree family (§5) | via `xvu_dtd::exponential_dtd` |
//! | hospital security-view motivation (§1) | [`scenario`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anngen;
mod churn;
pub mod differential;
mod docgen;
mod dtdgen;
pub mod enumo;
pub mod fleet;
pub mod paper;
pub mod replay;
pub mod scenario;
mod updategen;

pub use anngen::generate_annotation;
pub use churn::{ChurnConfig, ChurnEvent, ChurnStream};
pub use docgen::{generate_doc, DocGenConfig};
pub use dtdgen::{generate_dtd, DtdGenConfig};
pub use updategen::{generate_update, UpdateGenConfig};
