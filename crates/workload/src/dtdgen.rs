//! Random DTD generation.
//!
//! Generates *layered* DTDs: label `ℓ_i`'s content model only mentions
//! labels `ℓ_j` with `j > i` (plus `ε` branches), which guarantees every
//! label is satisfiable and documents have bounded depth — the regime the
//! paper's polynomial algorithm is exercised in. Rule shapes are random
//! regexes built from concatenation, alternation, star, and option.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xvu_automata::Regex;
use xvu_dtd::Dtd;
use xvu_tree::{Alphabet, Sym};

/// Knobs for [`generate_dtd`].
#[derive(Clone, Debug)]
pub struct DtdGenConfig {
    /// Number of labels (≥ 2). Label 0 is the designated root.
    pub labels: usize,
    /// Maximum regex AST depth per rule.
    pub rule_depth: usize,
    /// Probability that an iterated subexpression gets a `*`.
    pub star_prob: f64,
    /// Probability that a subexpression gets a `?`.
    pub opt_prob: f64,
    /// How many labels of the last layer stay rule-less leaves (at least
    /// one always does).
    pub leaf_fraction: f64,
}

impl Default for DtdGenConfig {
    fn default() -> DtdGenConfig {
        DtdGenConfig {
            labels: 8,
            rule_depth: 3,
            star_prob: 0.4,
            opt_prob: 0.2,
            leaf_fraction: 0.3,
        }
    }
}

/// Generates a satisfiable layered DTD with labels `l0 … l{n-1}`, interned
/// into `alpha`. Deterministic in `seed`.
pub fn generate_dtd(alpha: &mut Alphabet, cfg: &DtdGenConfig, seed: u64) -> Dtd {
    assert!(cfg.labels >= 2, "need at least a root and a leaf");
    let mut rng = StdRng::seed_from_u64(seed);
    let syms: Vec<Sym> = (0..cfg.labels)
        .map(|i| alpha.intern(&format!("l{i}")))
        .collect();

    let mut dtd = Dtd::new();
    let n_leaves = ((cfg.labels as f64 * cfg.leaf_fraction) as usize).max(1);
    let ruled = cfg.labels - n_leaves;
    for i in 0..ruled {
        // successors: strictly later labels
        let succ = &syms[i + 1..];
        let re = random_regex(&mut rng, succ, cfg, cfg.rule_depth);
        dtd.set_rule(syms[i], &re);
    }
    dtd
}

fn random_regex(rng: &mut StdRng, succ: &[Sym], cfg: &DtdGenConfig, depth: usize) -> Regex {
    let leaf = |rng: &mut StdRng| -> Regex {
        let s = succ[rng.random_range(0..succ.len())];
        Regex::sym(s)
    };
    let mut e = if depth == 0 || succ.is_empty() {
        if succ.is_empty() {
            Regex::Epsilon
        } else {
            leaf(rng)
        }
    } else {
        match rng.random_range(0..3) {
            0 => {
                // concat of 2..=3
                let n = rng.random_range(2..=3);
                Regex::concat((0..n).map(|_| random_regex(rng, succ, cfg, depth - 1)))
            }
            1 => {
                // alternation of 2..=3 (one branch may be ε)
                let n = rng.random_range(2..=3);
                let mut parts: Vec<Regex> = (0..n)
                    .map(|_| random_regex(rng, succ, cfg, depth - 1))
                    .collect();
                if rng.random_bool(0.25) {
                    parts.push(Regex::Epsilon);
                }
                Regex::alt(parts)
            }
            _ => leaf(rng),
        }
    };
    if rng.random_bool(cfg.star_prob) {
        e = Regex::star(e);
    } else if rng.random_bool(cfg.opt_prob) {
        e = Regex::opt(e);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvu_dtd::min_sizes;

    #[test]
    fn generated_dtds_are_satisfiable() {
        for seed in 0..30 {
            let mut alpha = Alphabet::new();
            let cfg = DtdGenConfig::default();
            let dtd = generate_dtd(&mut alpha, &cfg, seed);
            let sizes = min_sizes(&dtd, alpha.len());
            for s in alpha.syms() {
                assert!(
                    sizes.is_satisfiable(s),
                    "seed {seed}: label {:?} unsatisfiable",
                    alpha.name(s)
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a1 = Alphabet::new();
        let mut a2 = Alphabet::new();
        let cfg = DtdGenConfig::default();
        let d1 = generate_dtd(&mut a1, &cfg, 42);
        let d2 = generate_dtd(&mut a2, &cfg, 42);
        for s in a1.syms() {
            assert_eq!(
                d1.content_model(s),
                d2.content_model(s),
                "rule for {:?}",
                a1.name(s)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a1 = Alphabet::new();
        let mut a2 = Alphabet::new();
        let cfg = DtdGenConfig::default();
        let d1 = generate_dtd(&mut a1, &cfg, 1);
        let d2 = generate_dtd(&mut a2, &cfg, 2);
        let differs = a1
            .syms()
            .any(|s| d1.content_model(s) != d2.content_model(s));
        assert!(differs);
    }

    #[test]
    fn leaf_labels_have_no_rules() {
        let mut alpha = Alphabet::new();
        let cfg = DtdGenConfig {
            labels: 10,
            ..DtdGenConfig::default()
        };
        let dtd = generate_dtd(&mut alpha, &cfg, 7);
        let last = alpha.get("l9").unwrap();
        assert!(!dtd.has_rule(last));
    }
}
