//! Random annotations.
//!
//! Hides each `(parent, child)` label pair independently with probability
//! `hide_prob`. Hiding is *harmless* for validity (any annotation defines
//! a view), but a pair can make every update impossible only through the
//! update generator's membership checks, so no rejection is needed here.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xvu_tree::{Alphabet, Sym};
use xvu_view::Annotation;

/// Generates an annotation over all label pairs of `alpha`. Deterministic
/// in `seed`. `keep_root_label`, when set, is never hidden *under itself*
/// — handy to keep recursive spines visible.
pub fn generate_annotation(
    alpha: &Alphabet,
    hide_prob: f64,
    seed: u64,
    keep_pairs: &[(Sym, Sym)],
) -> Annotation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ann = Annotation::all_visible();
    for p in alpha.syms() {
        for c in alpha.syms() {
            if rng.random_bool(hide_prob) && !keep_pairs.contains(&(p, c)) {
                ann.hide(p, c);
            }
        }
    }
    ann
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_probability() {
        let alpha = Alphabet::from_labels(["a", "b", "c", "d", "e"]);
        let a1 = generate_annotation(&alpha, 0.5, 3, &[]);
        let a2 = generate_annotation(&alpha, 0.5, 3, &[]);
        assert_eq!(a1, a2);
        let none = generate_annotation(&alpha, 0.0, 3, &[]);
        assert_eq!(none.hidden_pairs(), 0);
        let all = generate_annotation(&alpha, 1.0, 3, &[]);
        assert_eq!(all.hidden_pairs(), 25);
    }

    #[test]
    fn keep_pairs_are_respected() {
        let alpha = Alphabet::from_labels(["a", "b"]);
        let a = alpha.get("a").unwrap();
        let ann = generate_annotation(&alpha, 1.0, 7, &[(a, a)]);
        assert!(ann.is_visible(a, a));
        assert_eq!(ann.hidden_pairs(), 3);
    }
}
