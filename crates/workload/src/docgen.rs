//! Random documents satisfying a DTD.
//!
//! Sampling a word from each content model by a stop-biased random walk:
//! at an accepting state, stop with probability growing in the emitted
//! length; on hitting the length cap, finish with the cheapest completion
//! (Dijkstra from the current state). Recursion over children is bounded
//! by a depth budget, below which minimal witnesses are used.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xvu_automata::{min_cost_word, Nfa};
use xvu_dtd::{min_sizes, Dtd, MinSizes};
use xvu_tree::{DocTree, NodeId, NodeIdGen, Sym, Tree};

/// Knobs for [`generate_doc`].
#[derive(Clone, Debug)]
pub struct DocGenConfig {
    /// Soft cap on each node's child count.
    pub max_children: usize,
    /// Depth budget; below it subtrees are minimal witnesses.
    pub max_depth: usize,
    /// Base probability of stopping at an accepting state.
    pub stop_bias: f64,
    /// Hard cap on total node count (generation truncates to cheapest
    /// completions once exceeded).
    pub max_nodes: usize,
}

impl Default for DocGenConfig {
    fn default() -> DocGenConfig {
        DocGenConfig {
            max_children: 8,
            max_depth: 6,
            stop_bias: 0.3,
            max_nodes: 10_000,
        }
    }
}

/// Generates a random document with root `root` satisfying `dtd`.
/// Deterministic in `seed`. Panics if `root` is unsatisfiable (check
/// [`MinSizes::is_satisfiable`] first for untrusted inputs).
pub fn generate_doc(
    dtd: &Dtd,
    alphabet_len: usize,
    root: Sym,
    cfg: &DocGenConfig,
    seed: u64,
    gen: &mut NodeIdGen,
) -> DocTree {
    let sizes = min_sizes(dtd, alphabet_len);
    assert!(
        sizes.is_satisfiable(root),
        "root label admits no finite tree"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = Tree::leaf(gen, root);
    let troot = tree.root();
    let mut budget = cfg.max_nodes.saturating_sub(1);
    fill(
        dtd,
        &sizes,
        &mut tree,
        troot,
        cfg,
        cfg.max_depth,
        &mut rng,
        gen,
        &mut budget,
    );
    tree
}

#[allow(clippy::too_many_arguments)]
fn fill(
    dtd: &Dtd,
    sizes: &MinSizes,
    tree: &mut DocTree,
    node: NodeId,
    cfg: &DocGenConfig,
    depth: usize,
    rng: &mut StdRng,
    gen: &mut NodeIdGen,
    budget: &mut usize,
) {
    let label = tree.label(node);
    let model = dtd.content_model(label);
    let word = if depth == 0 || *budget == 0 {
        min_cost_word(model, sizes.as_cost_table())
            .expect("satisfiable label")
            .word
    } else {
        sample_word(model, sizes, cfg, rng)
    };
    for y in word {
        if *budget == 0 {
            // Budget exhausted mid-word: we still must complete the word
            // (validity!), but children become minimal witnesses.
        } else {
            *budget -= 1;
        }
        let child = tree.add_child(node, gen, y);
        let child_depth = if *budget == 0 {
            0
        } else {
            depth.saturating_sub(1)
        };
        fill(dtd, sizes, tree, child, cfg, child_depth, rng, gen, budget);
    }
}

/// Samples an accepted word by a stop-biased random walk over `model`,
/// weighting letters toward cheap (small-subtree) symbols.
fn sample_word(model: &Nfa, sizes: &MinSizes, cfg: &DocGenConfig, rng: &mut StdRng) -> Vec<Sym> {
    let mut word = Vec::new();
    let mut q = model.start();
    loop {
        let stop_p =
            cfg.stop_bias + (1.0 - cfg.stop_bias) * (word.len() as f64 / cfg.max_children as f64);
        if model.is_accepting(q)
            && (word.len() >= cfg.max_children || rng.random_bool(stop_p.min(1.0)))
        {
            return word;
        }
        // candidate transitions into states that can still finish cheaply
        let candidates: Vec<(Sym, xvu_automata::StateId)> = model
            .transitions_from(q)
            .iter()
            .copied()
            .filter(|&(y, t)| {
                sizes.is_satisfiable(y)
                    && min_cost_word(&model.with_start(t), sizes.as_cost_table()).is_some()
            })
            .collect();
        if candidates.is_empty() {
            // dead end (only possible from non-accepting states of weird
            // models): bail out via cheapest completion
            let rest = min_cost_word(&model.with_start(q), sizes.as_cost_table())
                .expect("visited states are co-reachable");
            word.extend(rest.word);
            return word;
        }
        if word.len() >= cfg.max_children * 2 {
            // runaway: complete cheaply
            let rest = min_cost_word(&model.with_start(q), sizes.as_cost_table())
                .expect("candidates imply completion");
            word.extend(rest.word);
            return word;
        }
        let (y, t) = candidates[rng.random_range(0..candidates.len())];
        word.push(y);
        q = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtdgen::{generate_dtd, DtdGenConfig};
    use xvu_tree::Alphabet;

    #[test]
    fn generated_docs_satisfy_their_dtds() {
        for seed in 0..20 {
            let mut alpha = Alphabet::new();
            let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
            let root = alpha.get("l0").unwrap();
            let mut gen = NodeIdGen::new();
            let doc = generate_doc(
                &dtd,
                alpha.len(),
                root,
                &DocGenConfig::default(),
                seed ^ 0xdead,
                &mut gen,
            );
            assert!(
                dtd.is_valid(&doc),
                "seed {seed}: generated doc of {} nodes is invalid",
                doc.size()
            );
            doc.validate().unwrap();
        }
    }

    #[test]
    fn determinism() {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), 5);
        let root = alpha.get("l0").unwrap();
        let mut g1 = NodeIdGen::new();
        let mut g2 = NodeIdGen::new();
        let d1 = generate_doc(
            &dtd,
            alpha.len(),
            root,
            &DocGenConfig::default(),
            9,
            &mut g1,
        );
        let d2 = generate_doc(
            &dtd,
            alpha.len(),
            root,
            &DocGenConfig::default(),
            9,
            &mut g2,
        );
        assert_eq!(d1, d2);
    }

    #[test]
    fn node_budget_is_respected_approximately() {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), 3);
        let root = alpha.get("l0").unwrap();
        let cfg = DocGenConfig {
            max_nodes: 50,
            max_depth: 10,
            ..DocGenConfig::default()
        };
        let mut gen = NodeIdGen::new();
        let doc = generate_doc(&dtd, alpha.len(), root, &cfg, 11, &mut gen);
        // Budget plus completion slack: generously bounded.
        assert!(doc.size() < 500, "doc has {} nodes", doc.size());
        assert!(dtd.is_valid(&doc));
    }

    #[test]
    fn paper_dtd_sampling() {
        let fx = crate::paper::running_example();
        let mut alpha = fx.alpha.clone();
        let r = alpha.intern("r");
        let mut gen = NodeIdGen::starting_at(10_000);
        for seed in 0..10 {
            let doc = generate_doc(
                &fx.dtd,
                alpha.len(),
                r,
                &DocGenConfig::default(),
                seed,
                &mut gen,
            );
            assert!(fx.dtd.is_valid(&doc), "seed {seed}");
        }
    }
}
