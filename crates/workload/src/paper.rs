//! The paper's figures as public, reusable fixtures.
//!
//! Everything an example, bench, or integration test needs to replay the
//! running example (Figures 1–10) and the two complexity families:
//!
//! * [`running_example`] — `t0` (Fig. 1), `D0` (Fig. 2), `A0` (Fig. 3),
//!   `S0` (Fig. 4);
//! * [`d1_infinite_propagations`] — `D1: r → (a·b*)*`, `A1` hiding `b`
//!   (the infinitely-many-propagations example of §4);
//! * [`d2_exponential_choices`] — `D2: r → (a·(b+c))*`, `A2` hiding `b`
//!   and `c` (the `2^k` optimal-propagations family);
//! * [`d3_repair_pitfall`] — `D3: r → b·(c+ε)·(a·c)*`, `A3` hiding `a`
//!   and `b` (the §6.2 example where repair-based propagation picks the
//!   wrong source).

use xvu_dtd::{parse_dtd, Dtd};
use xvu_edit::{parse_script, Script};
use xvu_tree::{parse_term_with_ids, Alphabet, DocTree, NodeIdGen};
use xvu_view::{parse_annotation, Annotation};

/// The assembled running example of the paper.
#[derive(Clone, Debug)]
pub struct RunningExample {
    /// Alphabet with `r, a, b, c, d` interned.
    pub alpha: Alphabet,
    /// Generator positioned beyond every fixture identifier.
    pub gen: NodeIdGen,
    /// `D0` (Fig. 2).
    pub dtd: Dtd,
    /// `A0` (Fig. 3).
    pub ann: Annotation,
    /// `t0` (Fig. 1).
    pub t0: DocTree,
    /// `S0` (Fig. 4).
    pub s0: Script,
}

/// Builds the running example exactly as in the paper's figures.
pub fn running_example() -> RunningExample {
    let mut alpha = Alphabet::new();
    let mut gen = NodeIdGen::new();
    let dtd =
        parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").expect("D0 is well-formed");
    let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b")
        .expect("A0 is well-formed");
    let t0 = parse_term_with_ids(
        &mut alpha,
        &mut gen,
        "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
    )
    .expect("t0 is well-formed");
    let s0 = parse_script(
        &mut alpha,
        "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
         ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
    )
    .expect("S0 is well-formed");
    for id in s0.node_ids() {
        gen.bump_past(id);
    }
    RunningExample {
        alpha,
        gen,
        dtd,
        ann,
        t0,
        s0,
    }
}

/// A (DTD, annotation) pair with its alphabet.
#[derive(Clone, Debug)]
pub struct SchemaFixture {
    /// The alphabet.
    pub alpha: Alphabet,
    /// The DTD.
    pub dtd: Dtd,
    /// The annotation.
    pub ann: Annotation,
}

/// `D1: r → (a·b*)*` with `b` hidden under `r` — a single visible insert
/// admits infinitely many propagations (arbitrarily much `b` padding).
pub fn d1_infinite_propagations() -> SchemaFixture {
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(&mut alpha, "r -> (a.b*)*").expect("D1 is well-formed");
    let ann = parse_annotation(&mut alpha, "hide r b").expect("A1 is well-formed");
    SchemaFixture { alpha, dtd, ann }
}

/// `D2: r → (a·(b+c))*` with `b, c` hidden — inserting `k` visible `a`s
/// has exactly `2^k` optimal propagations (experiment E7).
pub fn d2_exponential_choices() -> SchemaFixture {
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c))*").expect("D2 is well-formed");
    let ann = parse_annotation(&mut alpha, "hide r b\nhide r c").expect("A2 is well-formed");
    SchemaFixture { alpha, dtd, ann }
}

/// The §6.2 example: `D3: r → b·(c+ε)·(a·c)*`, `A3` hides `a` and `b`.
/// Source `t = r(b, a, c)`, view `r(c)`; appending a second `c` in the
/// view is correctly propagated by inserting a *new* `(a·c)` group after
/// the existing one — while tree-edit-distance repair prefers the wrong
/// source `r(b, c, a, c)`.
pub fn d3_repair_pitfall() -> (SchemaFixture, DocTree, Script, NodeIdGen) {
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(&mut alpha, "r -> b.(c+eps).(a.c)*").expect("D3 is well-formed");
    let ann = parse_annotation(&mut alpha, "hide r b\nhide r a").expect("A3 is well-formed");
    let mut gen = NodeIdGen::new();
    let t =
        parse_term_with_ids(&mut alpha, &mut gen, "r#0(b#1, a#2, c#3)").expect("t is well-formed");
    // View is r#0(c#3); the user appends c#4.
    let s = parse_script(&mut alpha, "nop:r#0(nop:c#3, ins:c#4)").expect("S is well-formed");
    gen.bump_past(xvu_tree::NodeId(4));
    (SchemaFixture { alpha, dtd, ann }, t, s, gen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvu_view::extract_view;

    #[test]
    fn running_example_is_consistent() {
        let fx = running_example();
        assert!(fx.dtd.is_valid(&fx.t0));
        let view = extract_view(&fx.ann, &fx.t0);
        assert_eq!(view.size(), 7);
        assert_eq!(xvu_edit::input_tree(&fx.s0).unwrap(), view);
    }

    #[test]
    fn d3_fixture_matches_paper() {
        let (fx, t, s, _) = d3_repair_pitfall();
        assert!(fx.dtd.is_valid(&t));
        let view = extract_view(&fx.ann, &t);
        assert_eq!(view.size(), 2); // r(c)
        assert_eq!(xvu_edit::input_tree(&s).unwrap(), view);
        assert_eq!(xvu_edit::output_tree(&s).unwrap().size(), 3); // r(c, c)
    }

    #[test]
    fn schema_fixtures_parse() {
        let _ = d1_infinite_propagations();
        let _ = d2_exponential_choices();
    }
}
