//! Fleet-scale serving workloads: many documents, many clients, Zipf
//! popularity, full open/churn/idle/close lifecycles.
//!
//! Where [`crate::ChurnStream`] models *one* client editing *one*
//! document, [`generate_fleet`] models a serving daemon's whole steady
//! state: a corpus of documents drawn from several [enumerated grammar
//! families](crate::enumo), a set of clients each working one document
//! at a time, document popularity following a Zipf law (document 0 is
//! hottest), and per-document lifecycles produced by
//! [`ChurnStream::next_event`] — edits interleaved with think-time idle
//! gaps and close/reopen cycles.
//!
//! The generator does not merely emit requests: it *executes* the whole
//! plan against direct [`xvu_propagate::Session`]s while generating, and
//! records the observed `(cost, script term, optimal count, view term)`
//! fingerprint on every operation. A serving daemon replaying the plan
//! must reproduce every fingerprint exactly — that is the end-to-end
//! determinism oracle: *daemon ≡ direct library calls*.
//!
//! Determinism contract: the same [`FleetConfig`] (including the seed)
//! always yields the same [`FleetPlan`], operation for operation,
//! fingerprint for fingerprint. Documents are statically partitioned
//! across clients (document `i` belongs to client `i % clients`), so a
//! replaying driver may run clients concurrently: per-document request
//! order — the only order that matters for the fingerprints — is fixed
//! by the per-client sequences alone.

use crate::churn::{ChurnConfig, ChurnEvent, ChurnStream};
use crate::docgen::{generate_doc, DocGenConfig};
use crate::enumo::{enumerate_instances, stable_hash, EnumBudget, Sexp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xvu_dtd::Dtd;
use xvu_edit::{script_to_term, Script};
use xvu_propagate::{count_optimal_propagations, Engine, Session};
use xvu_tree::{to_term_with_ids, Alphabet, CorpusBuilder, DocTree, Sym};
use xvu_view::Annotation;

/// Knobs for [`generate_fleet`]. Everything is deterministic in `seed`.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of documents in the corpus.
    pub docs: usize,
    /// Number of distinct grammar families to draw documents from
    /// (round-robined across the four enumeration regimes; capped by how
    /// many distinct families the default budget enumerates).
    pub families: usize,
    /// Number of concurrent clients. Documents are statically
    /// partitioned: document `i` belongs to client `i % clients`.
    pub clients: usize,
    /// Committed edits to aim for across the whole fleet (the plan stops
    /// once this many [`FleetOpKind::Propagate`]+[`FleetOpKind::Commit`]
    /// pairs have been emitted).
    pub updates: usize,
    /// Zipf skew `s`: document `i` is picked with weight `1/(i+1)^s`
    /// within its owner's partition. `0.0` is uniform.
    pub zipf_s: f64,
    /// Probability that a committed edit is accompanied by a read-only
    /// [`FleetOpKind::Verify`] (and, independently, a
    /// [`FleetOpKind::Count`]) against the same update.
    pub read_fraction: f64,
    /// Per-document lifecycle behaviour (edit shape, idle and close
    /// biases) — see [`ChurnConfig`].
    pub churn: ChurnConfig,
    /// Shape of the generated corpus documents.
    pub doc_gen: DocGenConfig,
    /// Master seed; every stream below is derived from it.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            docs: 32,
            families: 6,
            clients: 8,
            updates: 96,
            zipf_s: 1.1,
            read_fraction: 0.5,
            churn: ChurnConfig {
                idle_bias: 0.15,
                close_bias: 0.08,
                ..ChurnConfig::default()
            },
            doc_gen: DocGenConfig {
                max_depth: 5,
                max_children: 4,
                max_nodes: 64,
                ..DocGenConfig::default()
            },
            seed: 0xF1EE7,
        }
    }
}

/// One grammar family backing a slice of the corpus: an enumerated
/// `(Σ, D, A)` triple plus the root label its documents are grown from.
#[derive(Clone, Debug)]
pub struct FleetFamily {
    /// The enumerated instance's replayable recipe name.
    pub name: String,
    /// The coverage regime the family came from (`plain`,
    /// `wide-alternation`, `heavy-hiding`, or `deep-recursion`).
    pub regime: &'static str,
    /// The alphabet `Σ`.
    pub alpha: Alphabet,
    /// The schema `D`.
    pub dtd: Dtd,
    /// The view definition `A`.
    pub ann: Annotation,
    /// Root label of every document in the family.
    pub root: Sym,
}

impl FleetFamily {
    /// Compiles the family into a ready-to-serve [`Engine`]. Infallible
    /// for families produced by [`generate_fleet`] (they compiled once
    /// already during generation).
    pub fn engine(&self) -> Engine {
        Engine::builder()
            .alphabet(self.alpha.clone())
            .dtd(self.dtd.clone())
            .annotation(self.ann.clone())
            .build()
            .expect("fleet family compiled during generation")
    }
}

/// One corpus document: its wire identifier, owning family, and initial
/// content (already valid under the family DTD).
#[derive(Clone, Debug)]
pub struct FleetDoc {
    /// Stable document identifier (also its popularity rank: document 0
    /// is the hottest under the Zipf law).
    pub id: u64,
    /// Index into [`FleetPlan::families`].
    pub family: usize,
    /// The initial document.
    pub doc: DocTree,
}

/// What one [`FleetOp`] asks the serving side to do.
#[derive(Clone, Debug, PartialEq)]
pub enum FleetOpKind {
    /// Open a session on the document (load its committed content).
    Open,
    /// Propagate the view update; the resulting propagation becomes the
    /// document's *pending* propagation (consumed by the next
    /// [`FleetOpKind::Commit`]).
    Propagate(Script),
    /// Verify that `candidate` is a propagation of `update` (read-only).
    Verify {
        /// The view update.
        update: Script,
        /// The candidate source script (the pending propagation's).
        candidate: Script,
    },
    /// Count the cost-minimal propagations of the update (read-only).
    Count(Script),
    /// Commit the pending propagation.
    Commit,
    /// Client think time — no request reaches the server.
    Idle(u64),
    /// Close the session, persisting the committed document.
    Close,
}

/// The expected observable outcome of one operation, recorded while the
/// generator executed the same operation against a direct [`Session`].
/// Fields are `None` when the operation does not produce that value.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Fingerprint {
    /// Propagation cost ([`FleetOpKind::Propagate`]).
    pub cost: Option<u64>,
    /// Chosen propagation, as a term over the family alphabet
    /// ([`FleetOpKind::Propagate`]).
    pub script: Option<String>,
    /// Number of cost-minimal propagations ([`FleetOpKind::Propagate`]
    /// and [`FleetOpKind::Count`]).
    pub count: Option<u128>,
    /// The session's view, as a term with identifiers
    /// ([`FleetOpKind::Open`]).
    pub view: Option<String>,
}

/// One step of the fleet plan: which client, which document, what to do,
/// and what a correct executor must observe.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetOp {
    /// The issuing client (always `doc % clients`).
    pub client: usize,
    /// The target document's [`FleetDoc::id`].
    pub doc: u64,
    /// The operation.
    pub kind: FleetOpKind,
    /// The expected outcome.
    pub expect: Fingerprint,
}

/// A complete generated fleet workload: families, corpus, and the
/// fingerprinted operation sequence. See the module docs for the
/// determinism contract.
#[derive(Clone, Debug)]
pub struct FleetPlan {
    /// The grammar families in play.
    pub families: Vec<FleetFamily>,
    /// The document corpus (initial contents).
    pub docs: Vec<FleetDoc>,
    /// The operations, in global generation order. Per-document order is
    /// what a replaying driver must preserve; operations on different
    /// documents commute.
    pub ops: Vec<FleetOp>,
    /// Number of committed edits in the plan.
    pub updates: usize,
}

impl FleetPlan {
    /// Number of operations that reach the server (everything except
    /// [`FleetOpKind::Idle`]).
    pub fn request_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| !matches!(op.kind, FleetOpKind::Idle(_)))
            .count()
    }

    /// The operations of one client, in order.
    pub fn client_ops(&self, client: usize) -> impl Iterator<Item = &FleetOp> {
        self.ops.iter().filter(move |op| op.client == client)
    }

    /// Packs the plan's initial corpus as a flat snapshot corpus image
    /// (`xvu_tree::snapshot`): one section per document, encoded against
    /// its family's alphabet. A daemon preloaded from these bytes serves
    /// exactly the documents the term-`load` phase would install, so the
    /// plan replays identically from either cold-start path.
    pub fn corpus_snapshot_bytes(&self) -> Vec<u8> {
        let mut builder = CorpusBuilder::new();
        for fd in &self.docs {
            builder
                .push(
                    fd.id,
                    fd.family as u32,
                    &fd.doc,
                    &self.families[fd.family].alpha,
                )
                .expect("fleet documents always encode");
        }
        builder.finish()
    }
}

/// Per-document generator state while the plan is being executed.
struct MirrorDoc<'e> {
    session: Option<Session<'e>>,
    stream: Option<ChurnStream>,
    pending: Option<xvu_propagate::Propagation>,
    opens: u64,
}

/// Generates (and pre-executes) a fleet workload. Deterministic in
/// `cfg`; see the module docs for the replay contract.
///
/// # Panics
///
/// Panics if `cfg.docs`, `cfg.clients`, or `cfg.families` is zero, or if
/// an internal invariant breaks (a churn update failing to propagate
/// would contradict the paper's Theorem 5).
pub fn generate_fleet(cfg: &FleetConfig) -> FleetPlan {
    assert!(cfg.docs > 0, "fleet needs at least one document");
    assert!(cfg.clients > 0, "fleet needs at least one client");
    assert!(cfg.families > 0, "fleet needs at least one family");

    let families = pick_families(cfg.families);
    let engines: Vec<Engine> = families.iter().map(FleetFamily::engine).collect();

    // The corpus: documents round-robined across families, grown from
    // per-document derived seeds.
    let mut docs = Vec::with_capacity(cfg.docs);
    for i in 0..cfg.docs {
        let family = i % families.len();
        let fam = &families[family];
        let seed = cfg
            .seed
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ stable_hash(&fam.name);
        let mut gen = xvu_tree::NodeIdGen::new();
        let doc = generate_doc(
            &fam.dtd,
            fam.alpha.len(),
            fam.root,
            &cfg.doc_gen,
            seed,
            &mut gen,
        );
        debug_assert!(fam.dtd.validate(&doc).is_ok());
        docs.push(FleetDoc {
            id: i as u64,
            family,
            doc,
        });
    }

    // Zipf popularity, statically partitioned: client c owns documents
    // {i | i % clients == c} and samples within its partition with
    // integer weights ∝ 1/(i+1)^s.
    let active_clients = cfg.clients.min(cfg.docs);
    let partitions: Vec<Vec<usize>> = (0..active_clients)
        .map(|c| (c..cfg.docs).step_by(cfg.clients).collect())
        .collect();
    let weights: Vec<Vec<u64>> = partitions
        .iter()
        .map(|part| {
            part.iter()
                .map(|&i| {
                    let w = 1e6 / ((i + 1) as f64).powf(cfg.zipf_s);
                    (w as u64).max(1)
                })
                .collect()
        })
        .collect();

    let mut store: Vec<DocTree> = docs.iter().map(|d| d.doc.clone()).collect();
    let mut mirrors: Vec<MirrorDoc<'_>> = (0..cfg.docs)
        .map(|_| MirrorDoc {
            session: None,
            stream: None,
            pending: None,
            opens: 0,
        })
        .collect();
    let mut open_doc: Vec<Option<usize>> = vec![None; active_clients];

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x000F_1EE7_D0C5);
    let mut ops: Vec<FleetOp> = Vec::new();
    let mut committed = 0usize;
    // Guard against degenerate configurations (e.g. close_bias ≈ 1.0)
    // never reaching the update budget.
    let max_steps = cfg.updates.saturating_mul(64) + 256;
    let mut steps = 0usize;

    while committed < cfg.updates && steps < max_steps {
        steps += 1;
        let c = rng.random_range(0..active_clients);
        let d = match open_doc[c] {
            Some(d) => d,
            None => {
                let d = sample_doc(&mut rng, &partitions[c], &weights[c]);
                open_mirror(
                    &mut mirrors[d],
                    &engines,
                    &families,
                    &docs,
                    &store,
                    d,
                    c,
                    cfg,
                    &mut ops,
                );
                open_doc[c] = Some(d);
                continue;
            }
        };

        let fam = &families[docs[d].family];
        let MirrorDoc {
            session,
            stream,
            pending,
            ..
        } = &mut mirrors[d];
        let session_ref = session.as_mut().expect("open doc has a session");
        let stream_ref = stream.as_mut().expect("open doc has a stream");
        let mut gen = session_ref.id_gen();
        match stream_ref.next_event(session_ref.document(), &mut gen) {
            ChurnEvent::Edit(update) => {
                let prop = session_ref
                    .propagate(&update)
                    .expect("churn update propagates (Theorem 5)");
                let count =
                    count_optimal_propagations(&prop.forest).expect("optimal count fits in u128");
                ops.push(FleetOp {
                    client: c,
                    doc: d as u64,
                    kind: FleetOpKind::Propagate(update.clone()),
                    expect: Fingerprint {
                        cost: Some(prop.cost),
                        script: Some(script_to_term(&prop.script, &fam.alpha)),
                        count: Some(count),
                        view: None,
                    },
                });
                if cfg.read_fraction > 0.0 && rng.random_bool(cfg.read_fraction) {
                    ops.push(FleetOp {
                        client: c,
                        doc: d as u64,
                        kind: FleetOpKind::Verify {
                            update: update.clone(),
                            candidate: prop.script.clone(),
                        },
                        expect: Fingerprint::default(),
                    });
                }
                if cfg.read_fraction > 0.0 && rng.random_bool(cfg.read_fraction) {
                    ops.push(FleetOp {
                        client: c,
                        doc: d as u64,
                        kind: FleetOpKind::Count(update),
                        expect: Fingerprint {
                            count: Some(count),
                            ..Fingerprint::default()
                        },
                    });
                }
                ops.push(FleetOp {
                    client: c,
                    doc: d as u64,
                    kind: FleetOpKind::Commit,
                    expect: Fingerprint::default(),
                });
                session_ref.commit(&prop).expect("commit after propagate");
                *pending = None;
                committed += 1;
            }
            ChurnEvent::Idle(ticks) => ops.push(FleetOp {
                client: c,
                doc: d as u64,
                kind: FleetOpKind::Idle(ticks),
                expect: Fingerprint::default(),
            }),
            ChurnEvent::Close => {
                store[d] = session_ref.document().clone();
                *session = None;
                *stream = None;
                *pending = None;
                ops.push(FleetOp {
                    client: c,
                    doc: d as u64,
                    kind: FleetOpKind::Close,
                    expect: Fingerprint::default(),
                });
                open_doc[c] = None;
            }
            // The stream is recreated on every open, so a reopen can
            // never be its first event.
            ChurnEvent::Reopen => unreachable!("fresh streams never start closed"),
        }
    }

    // Drain: every client closes its document so the plan ends with the
    // whole corpus parked (and the daemon can verify a clean shutdown).
    for (c, slot) in open_doc.iter_mut().enumerate().take(active_clients) {
        if let Some(d) = slot.take() {
            let m = &mut mirrors[d];
            if let Some(session) = m.session.take() {
                store[d] = session.document().clone();
            }
            m.stream = None;
            ops.push(FleetOp {
                client: c,
                doc: d as u64,
                kind: FleetOpKind::Close,
                expect: Fingerprint::default(),
            });
        }
    }

    FleetPlan {
        families,
        docs,
        ops,
        updates: committed,
    }
}

/// Opens document `d` in the mirror and records the `Open` operation
/// with its view fingerprint.
#[allow(clippy::too_many_arguments)]
fn open_mirror<'e>(
    mirror: &mut MirrorDoc<'e>,
    engines: &'e [Engine],
    families: &[FleetFamily],
    docs: &[FleetDoc],
    store: &[DocTree],
    d: usize,
    c: usize,
    cfg: &FleetConfig,
    ops: &mut Vec<FleetOp>,
) {
    let fam_idx = docs[d].family;
    let fam = &families[fam_idx];
    let session = engines[fam_idx]
        .open(&store[d])
        .expect("committed fleet documents stay valid");
    ops.push(FleetOp {
        client: c,
        doc: d as u64,
        kind: FleetOpKind::Open,
        expect: Fingerprint {
            view: Some(to_term_with_ids(session.view(), &fam.alpha)),
            ..Fingerprint::default()
        },
    });
    let stream_seed = cfg
        .seed
        .wrapping_add(0x5EED)
        .wrapping_add((d as u64) << 20)
        .wrapping_add(mirror.opens)
        ^ stable_hash(&fam.name);
    mirror.stream = Some(ChurnStream::new(
        &fam.dtd,
        &fam.ann,
        fam.alpha.len(),
        cfg.churn.clone(),
        stream_seed,
    ));
    mirror.session = Some(session);
    mirror.opens += 1;
}

/// Samples one document index from `part` with the given integer
/// weights (Zipf within the partition).
fn sample_doc(rng: &mut StdRng, part: &[usize], weights: &[u64]) -> usize {
    let total: u64 = weights.iter().sum();
    let mut r = rng.random_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if r < w {
            return part[i];
        }
        r -= w;
    }
    part[part.len() - 1]
}

/// Picks up to `want` distinct grammar families from the default
/// enumeration budget, round-robining the four coverage regimes and
/// deduplicating on the `(dtd, ann)` part of the recipe (documents and
/// scripts are regenerated per fleet, so two instances differing only
/// there are the same family).
fn pick_families(want: usize) -> Vec<FleetFamily> {
    let pool = enumerate_instances(&EnumBudget::default());
    let regimes = [
        "plain",
        "wide-alternation",
        "heavy-hiding",
        "deep-recursion",
    ];
    let mut by_regime: Vec<std::collections::VecDeque<&crate::enumo::EnumeratedInstance>> = regimes
        .iter()
        .map(|r| pool.iter().filter(|i| i.regime() == *r).collect())
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(want);
    let mut r = 0usize;
    let mut exhausted = 0usize;
    while out.len() < want && exhausted < regimes.len() {
        let lane = &mut by_regime[r % regimes.len()];
        r += 1;
        let Some(inst) = lane.pop_front() else {
            exhausted += 1;
            continue;
        };
        exhausted = 0;
        let key = family_key(&inst.recipe);
        if !seen.insert(key) {
            continue;
        }
        out.push(FleetFamily {
            name: inst.name.clone(),
            regime: inst.regime(),
            alpha: inst.alpha.clone(),
            dtd: inst.dtd.clone(),
            ann: inst.ann.clone(),
            root: inst.doc.label(inst.doc.root()),
        });
    }
    assert!(!out.is_empty(), "enumeration produced no families");
    out
}

/// The family identity of a recipe: its `(dtd …)` and `(ann …)` parts.
fn family_key(recipe: &Sexp) -> String {
    match recipe {
        Sexp::List(items) if items.len() >= 3 => format!("{} {}", items[1], items[2]),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            docs: 8,
            families: 4,
            clients: 3,
            updates: 12,
            seed: 42,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn fleet_plan_is_deterministic_in_the_seed() {
        let a = generate_fleet(&small_cfg());
        let b = generate_fleet(&small_cfg());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.updates, b.updates);
        let c = generate_fleet(&FleetConfig {
            seed: 43,
            ..small_cfg()
        });
        assert_ne!(a.ops, c.ops, "different seeds should diverge");
    }

    #[test]
    fn fleet_plan_shape_is_well_formed() {
        let cfg = small_cfg();
        let plan = generate_fleet(&cfg);
        assert_eq!(plan.docs.len(), cfg.docs);
        assert!(plan.families.len() >= 2);
        assert!(plan.updates >= cfg.updates);
        assert!(plan.request_count() > 0);

        // families cover more than one regime
        let regimes: std::collections::HashSet<_> =
            plan.families.iter().map(|f| f.regime).collect();
        assert!(regimes.len() >= 2, "families all from one regime");

        // static partition: every op's client owns its document
        for op in &plan.ops {
            assert_eq!(op.client, (op.doc as usize) % cfg.clients);
        }

        // per-document protocol order: Open first, Propagate/Commit
        // paired, reads only with a pending propagation, Close last-ish
        for d in 0..cfg.docs {
            let mut open = false;
            let mut pending = false;
            for op in plan.ops.iter().filter(|o| o.doc == d as u64) {
                match &op.kind {
                    FleetOpKind::Open => {
                        assert!(!open, "doc {d}: double open");
                        open = true;
                    }
                    FleetOpKind::Propagate(_) => {
                        assert!(open && !pending, "doc {d}: propagate out of order");
                        assert!(op.expect.cost.is_some() && op.expect.script.is_some());
                        assert!(op.expect.count.is_some());
                        pending = true;
                    }
                    FleetOpKind::Verify { .. } | FleetOpKind::Count(_) => {
                        assert!(open && pending, "doc {d}: read without pending");
                    }
                    FleetOpKind::Commit => {
                        assert!(open && pending, "doc {d}: commit without propagate");
                        pending = false;
                    }
                    FleetOpKind::Idle(t) => {
                        assert!(open && *t >= 1, "doc {d}: bad idle");
                    }
                    FleetOpKind::Close => {
                        assert!(open && !pending, "doc {d}: close out of order");
                        open = false;
                    }
                }
            }
            assert!(!open, "doc {d}: left open at end of plan");
        }
    }

    #[test]
    fn fleet_fingerprints_replay_against_direct_sessions() {
        // Re-execute the plan exactly as a (single-threaded) daemon
        // would, with fresh engines and sessions, and check every
        // fingerprint. This is the library-side half of the end-to-end
        // determinism oracle.
        let plan = generate_fleet(&FleetConfig {
            docs: 6,
            families: 3,
            clients: 2,
            updates: 10,
            seed: 7,
            ..FleetConfig::default()
        });
        let engines: Vec<Engine> = plan.families.iter().map(FleetFamily::engine).collect();
        let mut store: Vec<DocTree> = plan.docs.iter().map(|d| d.doc.clone()).collect();
        let mut sessions: Vec<Option<Session<'_>>> = (0..plan.docs.len()).map(|_| None).collect();
        let mut pendings: Vec<Option<xvu_propagate::Propagation>> =
            (0..plan.docs.len()).map(|_| None).collect();
        for op in &plan.ops {
            let d = op.doc as usize;
            let fam = &plan.families[plan.docs[d].family];
            match &op.kind {
                FleetOpKind::Open => {
                    let s = engines[plan.docs[d].family].open(&store[d]).unwrap();
                    assert_eq!(
                        op.expect.view.as_deref(),
                        Some(to_term_with_ids(s.view(), &fam.alpha).as_str())
                    );
                    sessions[d] = Some(s);
                }
                FleetOpKind::Propagate(u) => {
                    let s = sessions[d].as_mut().unwrap();
                    let prop = s.propagate(u).unwrap();
                    assert_eq!(op.expect.cost, Some(prop.cost));
                    assert_eq!(
                        op.expect.script.as_deref(),
                        Some(script_to_term(&prop.script, &fam.alpha).as_str())
                    );
                    assert_eq!(op.expect.count, count_optimal_propagations(&prop.forest));
                    pendings[d] = Some(prop);
                }
                FleetOpKind::Verify { update, candidate } => {
                    sessions[d]
                        .as_ref()
                        .unwrap()
                        .verify(update, candidate)
                        .unwrap();
                }
                FleetOpKind::Count(u) => {
                    let got = sessions[d].as_ref().unwrap().count_optimal(u).unwrap();
                    assert_eq!(op.expect.count, Some(got));
                }
                FleetOpKind::Commit => {
                    let prop = pendings[d].take().unwrap();
                    sessions[d].as_mut().unwrap().commit(&prop).unwrap();
                }
                FleetOpKind::Idle(_) => {}
                FleetOpKind::Close => {
                    let s = sessions[d].take().unwrap();
                    store[d] = s.document().clone();
                }
            }
        }
    }

    #[test]
    fn zipf_partition_prefers_hot_documents() {
        let cfg = FleetConfig {
            docs: 9,
            families: 3,
            clients: 3,
            updates: 40,
            zipf_s: 1.5,
            seed: 11,
            ..FleetConfig::default()
        };
        let plan = generate_fleet(&cfg);
        let opens = |d: u64| {
            plan.ops
                .iter()
                .filter(|o| o.doc == d && o.kind == FleetOpKind::Open)
                .count()
        };
        // client 0 owns docs 0, 3, 6; doc 0 must be opened at least as
        // often as the cold tail it dominates under s = 1.5
        assert!(opens(0) >= opens(6), "Zipf head colder than tail");
    }
}
