//! The hospital security-view scenario.
//!
//! The paper motivates annotation views with secure access to XML
//! databases (security views, [9, 10] in the paper). This module models
//! the folklore hospital example: a registrar-facing view hides clinical
//! and billing details while allowing admissions and discharges, whose
//! updates must be propagated to the full record.
//!
//! Documents are generated deterministically at a chosen scale, making
//! this the macro-benchmark workload (experiment E12).

use xvu_dtd::{parse_dtd, Dtd};
use xvu_edit::{Script, UpdateBuilder};
use xvu_tree::{Alphabet, DocTree, NodeId, NodeIdGen, Tree};
use xvu_view::{extract_view, parse_annotation, Annotation};

/// The hospital schema, annotation, and alphabet.
#[derive(Clone, Debug)]
pub struct Hospital {
    /// Alphabet with the hospital labels interned.
    pub alpha: Alphabet,
    /// The document schema.
    pub dtd: Dtd,
    /// The registrar view: clinical and billing material hidden.
    pub ann: Annotation,
}

/// Builds the hospital schema:
///
/// ```text
/// hospital   → department*
/// department → patient*
/// patient    → name . insurance? . record
/// record     → diagnosis* . treatment* . billing?
/// ```
///
/// The registrar view hides `insurance` under `patient` and `diagnosis`,
/// `treatment`, `billing` under `record`.
pub fn hospital() -> Hospital {
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(
        &mut alpha,
        "hospital -> department*\n\
         department -> patient*\n\
         patient -> name.insurance?.record\n\
         record -> diagnosis*.treatment*.billing?",
    )
    .expect("hospital DTD is well-formed");
    let ann = parse_annotation(
        &mut alpha,
        "hide patient insurance\n\
         hide record diagnosis\n\
         hide record treatment\n\
         hide record billing",
    )
    .expect("hospital annotation is well-formed");
    Hospital { alpha, dtd, ann }
}

/// Deterministically builds a hospital document with `departments`
/// departments of `patients_per_dept` patients each; every patient has a
/// full record (insurance, two diagnoses, one treatment, billing).
pub fn hospital_doc(
    h: &Hospital,
    departments: usize,
    patients_per_dept: usize,
    gen: &mut NodeIdGen,
) -> DocTree {
    let g = |s: &str| h.alpha.get(s).expect("hospital label");
    let mut t = Tree::leaf(gen, g("hospital"));
    let root = t.root();
    for _ in 0..departments {
        let d = t.add_child(root, gen, g("department"));
        for _ in 0..patients_per_dept {
            let p = t.add_child(d, gen, g("patient"));
            t.add_child(p, gen, g("name"));
            t.add_child(p, gen, g("insurance"));
            let r = t.add_child(p, gen, g("record"));
            t.add_child(r, gen, g("diagnosis"));
            t.add_child(r, gen, g("diagnosis"));
            t.add_child(r, gen, g("treatment"));
            t.add_child(r, gen, g("billing"));
        }
    }
    debug_assert!(h.dtd.is_valid(&t));
    t
}

/// An admission: inserts a new patient (name + empty record, as seen in
/// the registrar view) into the given department *as seen in the view*.
///
/// Returns the update script for the view of `doc`.
pub fn admit_patient(
    h: &Hospital,
    doc: &DocTree,
    department_index: usize,
    gen: &mut NodeIdGen,
) -> Script {
    let g = |s: &str| h.alpha.get(s).expect("hospital label");
    let view = extract_view(&h.ann, doc);
    let dept = view.children(view.root())[department_index];

    let mut patient = Tree::leaf(gen, g("patient"));
    let proot = patient.root();
    patient.add_child(proot, gen, g("name"));
    patient.add_child(proot, gen, g("record"));

    let mut b = UpdateBuilder::new(&view);
    let pos = view.children(dept).len();
    b.insert(dept, pos, patient)
        .expect("admission is view-valid");
    b.finish()
}

/// A discharge: deletes the `patient_index`-th patient of the
/// `department_index`-th department from the view.
pub fn discharge_patient(
    h: &Hospital,
    doc: &DocTree,
    department_index: usize,
    patient_index: usize,
) -> Script {
    let view = extract_view(&h.ann, doc);
    let dept = view.children(view.root())[department_index];
    let patient: NodeId = view.children(dept)[patient_index];
    let mut b = UpdateBuilder::new(&view);
    b.delete(patient).expect("discharge is view-valid");
    b.finish()
}

/// The recursive *outline* scenario: a document of nested sections.
///
/// ```text
/// section → title . (section + para)*
/// title   → ε        para → note?
/// ```
///
/// The reviewer's view hides paragraph bodies (`para` under `section`),
/// leaving the pure section skeleton. Unlike the hospital schema this one
/// is **recursive**, exercising propagation through arbitrarily deep
/// `Nop` chains and view DTDs with self-reference.
#[derive(Clone, Debug)]
pub struct Outline {
    /// Alphabet with the outline labels interned.
    pub alpha: Alphabet,
    /// The document schema.
    pub dtd: Dtd,
    /// The skeleton view.
    pub ann: Annotation,
}

/// Builds the outline schema and its skeleton view.
pub fn outline() -> Outline {
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(
        &mut alpha,
        "section -> title.(section+para)*\n\
         para -> note?",
    )
    .expect("outline DTD is well-formed");
    let ann = parse_annotation(&mut alpha, "hide section para")
        .expect("outline annotation is well-formed");
    Outline { alpha, dtd, ann }
}

/// Deterministically builds a complete outline of the given `depth` and
/// `fanout`: every section has a title, `fanout` subsections (until depth
/// runs out), and two paragraphs (one with a note).
pub fn outline_doc(o: &Outline, depth: usize, fanout: usize, gen: &mut NodeIdGen) -> DocTree {
    let g = |s: &str| o.alpha.get(s).expect("outline label");
    fn build(
        o: &Outline,
        t: &mut DocTree,
        parent: NodeId,
        depth: usize,
        fanout: usize,
        gen: &mut NodeIdGen,
    ) {
        let g = |s: &str| o.alpha.get(s).expect("outline label");
        t.add_child(parent, gen, g("title"));
        if depth > 0 {
            for _ in 0..fanout {
                let sub = t.add_child(parent, gen, g("section"));
                build(o, t, sub, depth - 1, fanout, gen);
            }
        }
        let p1 = t.add_child(parent, gen, g("para"));
        t.add_child(p1, gen, g("note"));
        t.add_child(parent, gen, g("para"));
    }
    let mut t = Tree::leaf(gen, g("section"));
    let root = t.root();
    build(o, &mut t, root, depth, fanout, gen);
    debug_assert!(o.dtd.is_valid(&t));
    t
}

/// Inserts a fresh (title-only) section as the last child of the section
/// at `path` (a sequence of subsection indices in the *view*).
pub fn add_section(o: &Outline, doc: &DocTree, path: &[usize], gen: &mut NodeIdGen) -> Script {
    let g = |s: &str| o.alpha.get(s).expect("outline label");
    let view = extract_view(&o.ann, doc);
    let mut node = view.root();
    for &ix in path {
        // children of a section in the view: title, then subsections
        let sections: Vec<NodeId> = view
            .children(node)
            .iter()
            .copied()
            .filter(|&c| view.label(c) == g("section"))
            .collect();
        node = sections[ix];
    }
    let mut fresh = Tree::leaf(gen, g("section"));
    let froot = fresh.root();
    fresh.add_child(froot, gen, g("title"));
    let mut b = UpdateBuilder::new(&view);
    let pos = view.children(node).len();
    b.insert(node, pos, fresh).expect("view-valid");
    b.finish()
}

/// A named scenario built from the [enumerated shape
/// language](crate::enumo): alphabet, schema, and view, assembled with
/// [`crate::enumo::dtd_from_rules`] so every rule is a term of the same
/// grammar the enumerated families range over.
#[derive(Clone, Debug)]
pub struct EnumScenario {
    /// Alphabet with the scenario labels interned.
    pub alpha: Alphabet,
    /// The document schema.
    pub dtd: Dtd,
    /// The scenario's view.
    pub ann: Annotation,
}

fn hide_pairs(scenario: &mut EnumScenario, pairs: &[(&str, &str)]) {
    for (p, c) in pairs {
        let p = scenario.alpha.get(p).expect("scenario label");
        let c = scenario.alpha.get(c).expect("scenario label");
        scenario.ann.hide(p, c);
    }
}

/// The DocBook-ish **publishing** scenario: editors see document
/// structure without front matter or footnotes.
///
/// ```text
/// book    → front? . chapter*        front → meta*
/// chapter → title . (section + para)*
/// section → title . para*            para  → note?
/// ```
///
/// hidden: `front` under `book`, `note` under `para`.
pub fn publishing() -> EnumScenario {
    let mut alpha = Alphabet::new();
    let dtd = crate::enumo::dtd_from_rules(
        &mut alpha,
        &[
            ("book", "(seq (opt front) (star chapter))"),
            ("front", "(star meta)"),
            ("chapter", "(seq title (star (alt section para)))"),
            ("section", "(seq title (star para))"),
            ("para", "(opt note)"),
        ],
    );
    let mut s = EnumScenario {
        alpha,
        dtd,
        ann: Annotation::all_visible(),
    };
    hide_pairs(&mut s, &[("book", "front"), ("para", "note")]);
    s
}

/// Deterministically builds a publishing document: front matter with one
/// `meta`, then `chapters` chapters of one section (`paras_per` paragraphs,
/// first one footnoted) plus one loose paragraph each.
pub fn publishing_doc(
    s: &EnumScenario,
    chapters: usize,
    paras_per: usize,
    gen: &mut NodeIdGen,
) -> DocTree {
    let g = |l: &str| s.alpha.get(l).expect("publishing label");
    let mut t = Tree::leaf(gen, g("book"));
    let root = t.root();
    let f = t.add_child(root, gen, g("front"));
    t.add_child(f, gen, g("meta"));
    for _ in 0..chapters {
        let ch = t.add_child(root, gen, g("chapter"));
        t.add_child(ch, gen, g("title"));
        let sec = t.add_child(ch, gen, g("section"));
        t.add_child(sec, gen, g("title"));
        for p in 0..paras_per {
            let para = t.add_child(sec, gen, g("para"));
            if p == 0 {
                t.add_child(para, gen, g("note"));
            }
        }
        t.add_child(ch, gen, g("para"));
    }
    debug_assert!(s.dtd.is_valid(&t));
    t
}

/// Appends a fresh (title-only) chapter to the book, as seen in the view.
pub fn add_chapter(s: &EnumScenario, doc: &DocTree, gen: &mut NodeIdGen) -> Script {
    let g = |l: &str| s.alpha.get(l).expect("publishing label");
    let view = extract_view(&s.ann, doc);
    let mut ch = Tree::leaf(gen, g("chapter"));
    let croot = ch.root();
    ch.add_child(croot, gen, g("title"));
    let mut b = UpdateBuilder::new(&view);
    let pos = view.children(view.root()).len();
    b.insert(view.root(), pos, ch).expect("view-valid chapter");
    b.finish()
}

/// The **config-file view** scenario: operators manage hosts and
/// interfaces while credentials stay invisible (and must survive
/// propagation untouched).
///
/// ```text
/// config → host*
/// host   → name . iface* . cred*     iface → addr*
/// cred   → user . secret
/// ```
///
/// hidden: `cred` under `host`.
pub fn config_view() -> EnumScenario {
    let mut alpha = Alphabet::new();
    let dtd = crate::enumo::dtd_from_rules(
        &mut alpha,
        &[
            ("config", "(star host)"),
            ("host", "(seq name (seq (star iface) (star cred)))"),
            ("iface", "(star addr)"),
            ("cred", "(seq user secret)"),
        ],
    );
    let mut s = EnumScenario {
        alpha,
        dtd,
        ann: Annotation::all_visible(),
    };
    hide_pairs(&mut s, &[("host", "cred")]);
    s
}

/// Deterministically builds a config document with `hosts` hosts, each
/// with one addressed interface and one credential pair.
pub fn config_doc(s: &EnumScenario, hosts: usize, gen: &mut NodeIdGen) -> DocTree {
    let g = |l: &str| s.alpha.get(l).expect("config label");
    let mut t = Tree::leaf(gen, g("config"));
    let root = t.root();
    for _ in 0..hosts {
        let h = t.add_child(root, gen, g("host"));
        t.add_child(h, gen, g("name"));
        let i = t.add_child(h, gen, g("iface"));
        t.add_child(i, gen, g("addr"));
        let c = t.add_child(h, gen, g("cred"));
        t.add_child(c, gen, g("user"));
        t.add_child(c, gen, g("secret"));
    }
    debug_assert!(s.dtd.is_valid(&t));
    t
}

/// Registers a fresh host (name only) at the end of the config, as seen
/// in the operator view.
pub fn add_host(s: &EnumScenario, doc: &DocTree, gen: &mut NodeIdGen) -> Script {
    let g = |l: &str| s.alpha.get(l).expect("config label");
    let view = extract_view(&s.ann, doc);
    let mut h = Tree::leaf(gen, g("host"));
    let hroot = h.root();
    h.add_child(hroot, gen, g("name"));
    let mut b = UpdateBuilder::new(&view);
    let pos = view.children(view.root()).len();
    b.insert(view.root(), pos, h).expect("view-valid host");
    b.finish()
}

/// The **audit-redaction** scenario: a recursive event log whose redacted
/// view drops actors and free-form detail but keeps the causal nesting.
///
/// ```text
/// event → actor . action . detail? . event*
/// ```
///
/// hidden: `actor` and `detail` under `event`. Recursive like the outline,
/// but with hidden *leading* material under every recursion level — the
/// heavy-hiding shape the enumerated `deep`/`leaves` patterns range over.
pub fn audit_redaction() -> EnumScenario {
    let mut alpha = Alphabet::new();
    let dtd = crate::enumo::dtd_from_rules(
        &mut alpha,
        &[(
            "event",
            "(seq actor (seq action (seq (opt detail) (star event))))",
        )],
    );
    let mut s = EnumScenario {
        alpha,
        dtd,
        ann: Annotation::all_visible(),
    };
    hide_pairs(&mut s, &[("event", "actor"), ("event", "detail")]);
    s
}

/// Deterministically builds an audit log: a complete event tree of the
/// given `depth` and `fanout`; every event has an actor and an action,
/// events at even depths also carry a detail.
pub fn audit_doc(s: &EnumScenario, depth: usize, fanout: usize, gen: &mut NodeIdGen) -> DocTree {
    let g = |l: &str| s.alpha.get(l).expect("audit label");
    fn build(
        s: &EnumScenario,
        t: &mut DocTree,
        ev: NodeId,
        depth: usize,
        fanout: usize,
        gen: &mut NodeIdGen,
    ) {
        let g = |l: &str| s.alpha.get(l).expect("audit label");
        t.add_child(ev, gen, g("actor"));
        t.add_child(ev, gen, g("action"));
        if depth.is_multiple_of(2) {
            t.add_child(ev, gen, g("detail"));
        }
        if depth > 0 {
            for _ in 0..fanout {
                let sub = t.add_child(ev, gen, g("event"));
                build(s, t, sub, depth - 1, fanout, gen);
            }
        }
    }
    let mut t = Tree::leaf(gen, g("event"));
    let root = t.root();
    build(s, &mut t, root, depth, fanout, gen);
    debug_assert!(s.dtd.is_valid(&t));
    t
}

/// Logs a fresh (action-only) sub-event under the event at `path` (a
/// sequence of sub-event indices in the *view*).
pub fn log_event(s: &EnumScenario, doc: &DocTree, path: &[usize], gen: &mut NodeIdGen) -> Script {
    let g = |l: &str| s.alpha.get(l).expect("audit label");
    let view = extract_view(&s.ann, doc);
    let mut node = view.root();
    for &ix in path {
        let subs: Vec<NodeId> = view
            .children(node)
            .iter()
            .copied()
            .filter(|&c| view.label(c) == g("event"))
            .collect();
        node = subs[ix];
    }
    let mut ev = Tree::leaf(gen, g("event"));
    let eroot = ev.root();
    ev.add_child(eroot, gen, g("action"));
    let mut b = UpdateBuilder::new(&view);
    let pos = view.children(node).len();
    b.insert(node, pos, ev).expect("view-valid event");
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvu_edit::{check_is_update_of, output_tree};
    use xvu_view::derive_view_dtd;

    #[test]
    fn documents_scale_and_validate() {
        let h = hospital();
        let mut gen = NodeIdGen::new();
        let doc = hospital_doc(&h, 3, 4, &mut gen);
        // 1 + 3 + 3*4*8 nodes
        assert_eq!(doc.size(), 1 + 3 + 96);
        assert!(h.dtd.is_valid(&doc));
        let view = extract_view(&h.ann, &doc);
        // view: hospital + 3 depts + 12 × (patient, name, record)
        assert_eq!(view.size(), 1 + 3 + 36);
    }

    #[test]
    fn admission_is_a_valid_view_update() {
        let h = hospital();
        let mut gen = NodeIdGen::new();
        let doc = hospital_doc(&h, 2, 2, &mut gen);
        let view = extract_view(&h.ann, &doc);
        let s = admit_patient(&h, &doc, 1, &mut gen);
        check_is_update_of(&s, &view).unwrap();
        let out = output_tree(&s).unwrap();
        let view_dtd = derive_view_dtd(&h.dtd, &h.ann, h.alpha.len());
        view_dtd.validate(&out).unwrap();
        assert_eq!(out.size(), view.size() + 3);
    }

    #[test]
    fn outline_documents_scale_and_validate() {
        let o = outline();
        let mut gen = NodeIdGen::new();
        let doc = outline_doc(&o, 3, 2, &mut gen);
        assert!(o.dtd.is_valid(&doc));
        // 15 sections (complete binary tree of depth 3), each with
        // title + 2 paras + 1 note = 4 extra nodes
        assert_eq!(doc.size(), 15 + 15 * 4);
        let view = extract_view(&o.ann, &doc);
        // skeleton: sections + titles only
        assert_eq!(view.size(), 15 * 2);
    }

    #[test]
    fn add_section_deep_in_the_outline() {
        let o = outline();
        let mut gen = NodeIdGen::new();
        let doc = outline_doc(&o, 3, 2, &mut gen);
        let view = extract_view(&o.ann, &doc);
        let s = add_section(&o, &doc, &[1, 0, 1], &mut gen);
        check_is_update_of(&s, &view).unwrap();
        let out = output_tree(&s).unwrap();
        let view_dtd = derive_view_dtd(&o.dtd, &o.ann, o.alpha.len());
        view_dtd.validate(&out).unwrap();
        assert_eq!(out.size(), view.size() + 2);
    }

    #[test]
    fn publishing_documents_and_updates_validate() {
        let s = publishing();
        let mut gen = NodeIdGen::new();
        let doc = publishing_doc(&s, 3, 2, &mut gen);
        assert!(s.dtd.is_valid(&doc));
        let view = extract_view(&s.ann, &doc);
        // front matter and notes are gone from the view
        assert!(view.preorder().all(|n| {
            let l = s.alpha.name(view.label(n));
            l != "front" && l != "meta" && l != "note"
        }));
        let u = add_chapter(&s, &doc, &mut gen);
        check_is_update_of(&u, &view).unwrap();
        let out = output_tree(&u).unwrap();
        derive_view_dtd(&s.dtd, &s.ann, s.alpha.len())
            .validate(&out)
            .unwrap();
        assert_eq!(out.size(), view.size() + 2);
    }

    #[test]
    fn config_view_documents_and_updates_validate() {
        let s = config_view();
        let mut gen = NodeIdGen::new();
        let doc = config_doc(&s, 4, &mut gen);
        assert!(s.dtd.is_valid(&doc));
        let view = extract_view(&s.ann, &doc);
        // credentials are invisible to the operator
        assert!(view.preorder().all(|n| {
            let l = s.alpha.name(view.label(n));
            l != "cred" && l != "user" && l != "secret"
        }));
        // 1 config + 4 × (host, name, iface, addr)
        assert_eq!(view.size(), 1 + 4 * 4);
        let u = add_host(&s, &doc, &mut gen);
        check_is_update_of(&u, &view).unwrap();
        let out = output_tree(&u).unwrap();
        derive_view_dtd(&s.dtd, &s.ann, s.alpha.len())
            .validate(&out)
            .unwrap();
    }

    #[test]
    fn audit_redaction_documents_and_updates_validate() {
        let s = audit_redaction();
        let mut gen = NodeIdGen::new();
        let doc = audit_doc(&s, 3, 2, &mut gen);
        assert!(s.dtd.is_valid(&doc));
        let view = extract_view(&s.ann, &doc);
        // actors and details redacted, nesting preserved
        assert!(view.preorder().all(|n| {
            let l = s.alpha.name(view.label(n));
            l == "event" || l == "action"
        }));
        assert_eq!(view.size(), 15 * 2); // 15 events, each with action
        let u = log_event(&s, &doc, &[1, 0], &mut gen);
        check_is_update_of(&u, &view).unwrap();
        let out = output_tree(&u).unwrap();
        derive_view_dtd(&s.dtd, &s.ann, s.alpha.len())
            .validate(&out)
            .unwrap();
        assert_eq!(out.size(), view.size() + 2);
    }

    #[test]
    fn discharge_is_a_valid_view_update() {
        let h = hospital();
        let mut gen = NodeIdGen::new();
        let doc = hospital_doc(&h, 2, 3, &mut gen);
        let view = extract_view(&h.ann, &doc);
        let s = discharge_patient(&h, &doc, 0, 2);
        check_is_update_of(&s, &view).unwrap();
        let out = output_tree(&s).unwrap();
        assert_eq!(out.size(), view.size() - 3);
    }
}
