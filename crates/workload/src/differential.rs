//! The differential oracle harness over enumerated instances.
//!
//! One instance, four independently implemented answers that must agree:
//!
//! | oracle | implementation |
//! |--------|----------------|
//! | cached session (cold + warm) | `Engine` + `Session` with the dirty-region `PropCache` |
//! | uncached session | same engine stack, `prop_cache(false)` |
//! | shared-tier sibling | a second session of the same engine, served from the fleet-wide intern-keyed memo tier |
//! | private engine | same stack, `shared_cache(false)` |
//! | one-shot | the `Instance`/`propagate` compatibility layer |
//! | repair baseline | `xvu_repair` minimal-TED re-materialisation (§6.2) |
//!
//! plus the counting×enumeration cross-check: when `count_optimal` is
//! small enough to enumerate, it must equal the number of *distinct*
//! scripts produced by `enumerate_optimal`, each of which must verify at
//! the optimal cost (Theorems 5–6 pinned against each other).
//!
//! [`differential_check`] runs the full matrix on one
//! [`EnumeratedInstance`]; any disagreement is returned as an `Err`
//! carrying a [replayable dump](crate::replay::instance_dump).
//! [`run_sweep`] maps it over an entire [`EnumBudget`] and aggregates per
//! [regime](crate::enumo::EnumeratedInstance::regime).

use crate::enumo::{enumerate_instances, EnumBudget, EnumeratedInstance};
use crate::replay::instance_dump;
use std::collections::BTreeMap;
use xvu_dtd::InsertletPackage;
use xvu_edit::{cost, output_tree, script_to_term};
use xvu_propagate::{
    count_optimal_propagations, propagate, Config, Engine, Instance, Propagation, Session,
};
use xvu_repair::{repair_based_update, RepairConfig};
use xvu_tree::Alphabet;
use xvu_view::extract_view;

/// Everything observable about a propagation: cost, the exact script in
/// identifier-sensitive term form, and the optimal-propagation count.
pub fn fingerprint(p: &Propagation, alpha: &Alphabet) -> (u64, String, Option<u128>) {
    (
        p.cost,
        script_to_term(&p.script, alpha),
        count_optimal_propagations(&p.forest),
    )
}

/// Knobs for [`differential_check`].
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Run the counting×enumeration cross-check only when the count is at
    /// most this (enumeration is exponential by design).
    pub enumeration_cap: u128,
    /// Run the repair baseline only on documents up to this size…
    pub repair_max_doc: usize,
    /// …and views up to this size (candidate space is exponential in the
    /// view).
    pub repair_max_view: usize,
    /// Budget for the repair baseline itself.
    pub repair: RepairConfig,
    /// Whether to commit the propagation into the cached and uncached
    /// sessions and check they stay in lock-step.
    pub commit: bool,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            enumeration_cap: 64,
            repair_max_doc: 14,
            repair_max_view: 8,
            repair: RepairConfig::default(),
            commit: true,
        }
    }
}

/// What the matrix observed for one instance (all oracles agreeing).
#[derive(Clone, Debug)]
pub struct OracleOutcome {
    /// The agreed optimal cost.
    pub cost: u64,
    /// The agreed optimal-propagation count.
    pub count: u128,
    /// Distinct optimal scripts enumerated (when the count was under the
    /// cap), `None` when the cross-check was skipped.
    pub enumerated: Option<usize>,
    /// The repair baseline's minimal TED (when tractable and not
    /// truncated), `None` when skipped.
    pub repair_distance: Option<usize>,
    /// Cache hits observed by the warm propagation.
    pub cache_hits: u64,
    /// Shared-tier hits observed by the sibling session (memos published
    /// by the first session, found again under the re-interned keys).
    pub shared_hits: u64,
}

/// Whether every hidden label roots exactly one tree (no rule, or the
/// empty content model) — the condition under which the repair baseline's
/// minimal-witness padding spans the full inverse space.
fn hidden_fragments_unique(inst: &EnumeratedInstance) -> bool {
    inst.ann.iter_hidden().all(|(_, y)| {
        if !inst.dtd.has_rule(y) {
            return true;
        }
        let m = inst.dtd.content_model(y);
        m.accepts(&[]) && m.num_transitions() == 0
    })
}

fn oracle_err(inst: &EnumeratedInstance, what: &str) -> String {
    format!(
        "{}\n{}",
        what,
        instance_dump(
            &inst.name,
            &inst.alpha,
            &inst.dtd,
            &inst.ann,
            &inst.doc,
            &inst.update,
        )
    )
}

/// Runs the full oracle matrix on one enumerated instance. Returns the
/// agreed observations, or an `Err` describing the first disagreement
/// with a replayable instance dump attached.
pub fn differential_check(
    inst: &EnumeratedInstance,
    cfg: &OracleConfig,
) -> Result<OracleOutcome, String> {
    let fail = |what: String| oracle_err(inst, &what);

    let cached_engine = Engine::builder()
        .alphabet(inst.alpha.clone())
        .dtd(inst.dtd.clone())
        .annotation(inst.ann.clone())
        .build()
        .map_err(|e| fail(format!("engine build failed: {e}")))?;
    let uncached_engine = Engine::builder()
        .alphabet(inst.alpha.clone())
        .dtd(inst.dtd.clone())
        .annotation(inst.ann.clone())
        .prop_cache(false)
        .build()
        .map_err(|e| fail(format!("uncached engine build failed: {e}")))?;

    let mut cached: Session<'_> = cached_engine
        .open(&inst.doc)
        .map_err(|e| fail(format!("cached open failed: {e}")))?;
    let mut uncached: Session<'_> = uncached_engine
        .open(&inst.doc)
        .map_err(|e| fail(format!("uncached open failed: {e}")))?;

    // Oracle 1+2: cached cold, cached warm, uncached — byte-identical.
    let cold = cached
        .propagate(&inst.update)
        .map_err(|e| fail(format!("Theorem 5 violated (cached): {e}")))?;
    let warm = cached
        .propagate(&inst.update)
        .map_err(|e| fail(format!("warm propagate failed: {e}")))?;
    let pu = uncached
        .propagate(&inst.update)
        .map_err(|e| fail(format!("Theorem 5 violated (uncached): {e}")))?;
    let fp_cold = fingerprint(&cold, &inst.alpha);
    if fingerprint(&warm, &inst.alpha) != fp_cold {
        return Err(fail(format!(
            "cold/warm disagreement: cold {fp_cold:?} vs warm {:?}",
            fingerprint(&warm, &inst.alpha)
        )));
    }
    if fingerprint(&pu, &inst.alpha) != fp_cold {
        return Err(fail(format!(
            "cached/uncached disagreement: cached {fp_cold:?} vs uncached {:?}",
            fingerprint(&pu, &inst.alpha)
        )));
    }
    let cache_hits = cached.cache_stats().hits;

    // Oracle: the shared memo tier. A sibling session of the same
    // (sharing, by default) engine interns the document independently
    // and is served from what the first session published — it must be
    // byte-identical; and an engine with the fleet tier switched off
    // must agree too, pinning the tier as a pure cache.
    let sibling = cached_engine
        .open(&inst.doc)
        .map_err(|e| fail(format!("sibling open failed: {e}")))?;
    let ps = sibling
        .propagate(&inst.update)
        .map_err(|e| fail(format!("sibling propagate failed: {e}")))?;
    if fingerprint(&ps, &inst.alpha) != fp_cold {
        return Err(fail(format!(
            "shared-tier disagreement: first session {fp_cold:?} vs sibling {:?}",
            fingerprint(&ps, &inst.alpha)
        )));
    }
    let shared_hits = sibling.cache_stats().shared_hits;
    let private_engine = Engine::builder()
        .alphabet(inst.alpha.clone())
        .dtd(inst.dtd.clone())
        .annotation(inst.ann.clone())
        .shared_cache(false)
        .build()
        .map_err(|e| fail(format!("private engine build failed: {e}")))?;
    let private = private_engine
        .open(&inst.doc)
        .map_err(|e| fail(format!("private open failed: {e}")))?;
    let pp = private
        .propagate(&inst.update)
        .map_err(|e| fail(format!("private propagate failed: {e}")))?;
    if fingerprint(&pp, &inst.alpha) != fp_cold {
        return Err(fail(format!(
            "shared/private disagreement: shared {fp_cold:?} vs private {:?}",
            fingerprint(&pp, &inst.alpha)
        )));
    }

    // Oracle 3: the one-shot compatibility layer.
    let one_shot_inst = Instance::new(
        &inst.dtd,
        &inst.ann,
        &inst.doc,
        &inst.update,
        inst.alpha.len(),
    )
    .map_err(|e| fail(format!("one-shot instance rejected: {e}")))?;
    let one_shot = propagate(&one_shot_inst, &InsertletPackage::new(), &Config::default())
        .map_err(|e| fail(format!("one-shot propagate failed: {e}")))?;
    if fingerprint(&one_shot, &inst.alpha) != fp_cold {
        return Err(fail(format!(
            "session/one-shot disagreement: session {fp_cold:?} vs one-shot {:?}",
            fingerprint(&one_shot, &inst.alpha)
        )));
    }

    // Soundness: the agreed script verifies and its cost is the optimum.
    cached
        .verify(&inst.update, &cold.script)
        .map_err(|e| fail(format!("unsound propagation: {e}")))?;
    if cost(&cold.script) as u64 != cold.cost {
        return Err(fail(format!(
            "script cost {} differs from graph optimum {}",
            cost(&cold.script),
            cold.cost
        )));
    }

    // Counting × enumeration (Theorems 5–6 against each other).
    let count = cached
        .count_optimal(&inst.update)
        .map_err(|e| fail(format!("count_optimal failed: {e}")))?;
    if count == 0 {
        return Err(fail("count_optimal returned 0".to_owned()));
    }
    let enumerated = if count <= cfg.enumeration_cap {
        let cap = count as usize + 1; // one above: detect over-production
        let scripts = cached
            .enumerate_optimal(&inst.update, cap)
            .map_err(|e| fail(format!("enumerate_optimal failed: {e}")))?;
        let mut terms: Vec<String> = scripts
            .iter()
            .map(|s| script_to_term(s, &inst.alpha))
            .collect();
        terms.sort();
        terms.dedup();
        if inst.deterministic {
            // 1-unambiguous content models: counts are exact (Theorems
            // 5–6 against each other).
            if terms.len() as u128 != count {
                return Err(fail(format!(
                    "count {} ≠ |enumeration| {} ({} raw)",
                    count,
                    terms.len(),
                    scripts.len()
                )));
            }
        } else if terms.is_empty() || (terms.len() as u128) > count {
            // Ambiguous content models (outside the W3C-required class):
            // the count is a path count and only bounds the distinct
            // enumeration from above.
            return Err(fail(format!(
                "ambiguous-model path count {} < |enumeration| {}",
                count,
                terms.len()
            )));
        }
        for s in &scripts {
            cached
                .verify(&inst.update, s)
                .map_err(|e| fail(format!("enumerated propagation unsound: {e}")))?;
            if cost(s) as u64 != cold.cost {
                return Err(fail(format!(
                    "enumerated propagation cost {} ≠ optimum {}",
                    cost(s),
                    cold.cost
                )));
            }
        }
        Some(terms.len())
    } else {
        None
    };

    // Repair baseline (§6.2), where tractable: the minimal-TED inverse of
    // the updated view can never be farther from the source than the
    // optimal propagation's own output, so `distance ≤ cost`. The bound
    // is only sound where the candidate enumeration is exhaustive: small
    // documents and views, an untruncated candidate set, and — because
    // the baseline pads inverses with *minimal witnesses* only — hidden
    // labels that root exactly one tree (otherwise the source's own
    // non-minimal hidden fragments are outside the candidate space and
    // the enumerated minimum over-estimates the true minimal TED).
    let view = extract_view(&inst.ann, &inst.doc);
    let repair_distance = if inst.doc.size() <= cfg.repair_max_doc
        && view.size() <= cfg.repair_max_view
        && hidden_fragments_unique(inst)
    {
        match repair_based_update(
            &inst.dtd,
            &inst.ann,
            inst.alpha.len(),
            &inst.doc,
            &inst.update,
            &cfg.repair,
        ) {
            Ok(out) if out.candidates_considered < cfg.repair.candidate_cap => {
                if (out.distance as u64) > cold.cost {
                    return Err(fail(format!(
                        "repair baseline beat by propagation: minimal TED {} > optimal cost {}",
                        out.distance, cold.cost
                    )));
                }
                let updated_view = output_tree(&inst.update)
                    .ok_or_else(|| fail("update deletes the view root".to_owned()))?;
                if extract_view(&inst.ann, &out.chosen) != updated_view {
                    return Err(fail(
                        "repair chose a document with the wrong view".to_owned(),
                    ));
                }
                Some(out.distance)
            }
            _ => None, // truncated or intractable: no bound to check
        }
    } else {
        None
    };

    // Commit lock-step: both sessions absorb the propagation and must
    // agree on the resulting document byte-for-byte.
    if cfg.commit {
        cached
            .commit(&cold)
            .map_err(|e| fail(format!("cached commit failed: {e}")))?;
        uncached
            .commit(&pu)
            .map_err(|e| fail(format!("uncached commit failed: {e}")))?;
        if cached.document() != uncached.document() {
            return Err(fail(
                "cached and uncached sessions diverged after commit".to_owned(),
            ));
        }
    }

    Ok(OracleOutcome {
        cost: cold.cost,
        count,
        enumerated,
        repair_distance,
        cache_hits,
        shared_hits,
    })
}

/// Aggregate report of a sweep over one budget.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Instances checked.
    pub instances: usize,
    /// Disagreement messages (each with a replayable dump). Empty on a
    /// clean sweep.
    pub disagreements: Vec<String>,
    /// Instances per coverage regime.
    pub regimes: BTreeMap<&'static str, usize>,
    /// Instances whose counting×enumeration cross-check actually ran.
    pub enumeration_checked: usize,
    /// Instances with ambiguous (non-1-unambiguous) content models,
    /// where the count oracle only bounds the enumeration from above.
    pub ambiguous: usize,
    /// Instances whose repair-baseline check actually ran.
    pub repair_checked: usize,
    /// Total warm-path cache hits across all instances.
    pub cache_hits: u64,
    /// Total shared-tier hits observed by sibling sessions across all
    /// instances — the interner running under the whole sweep.
    pub shared_hits: u64,
    /// Largest optimal-propagation count observed.
    pub max_count: u128,
}

/// Runs [`differential_check`] over every instance of the budget and
/// aggregates. Never panics on disagreement — the report carries them so a
/// test can fail with *all* dumps at once.
pub fn run_sweep(budget: &EnumBudget, cfg: &OracleConfig) -> SweepReport {
    let mut report = SweepReport::default();
    for inst in enumerate_instances(budget) {
        report.instances += 1;
        *report.regimes.entry(inst.regime()).or_insert(0) += 1;
        if !inst.deterministic {
            report.ambiguous += 1;
        }
        match differential_check(&inst, cfg) {
            Ok(out) => {
                report.cache_hits += out.cache_hits;
                report.shared_hits += out.shared_hits;
                report.max_count = report.max_count.max(out.count);
                if out.enumerated.is_some() {
                    report.enumeration_checked += 1;
                }
                if out.repair_distance.is_some() {
                    report.repair_checked += 1;
                }
            }
            Err(msg) => report.disagreements.push(msg),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumo::instance_from_recipe;

    fn check(recipe: &str) -> OracleOutcome {
        let inst = instance_from_recipe(&recipe.parse().unwrap()).unwrap();
        differential_check(&inst, &OracleConfig::default())
            .unwrap_or_else(|e| panic!("oracle disagreement:\n{e}"))
    }

    #[test]
    fn matrix_agrees_on_representative_families() {
        // one per regime: plain, wide-alternation, heavy-hiding, recursion
        check("(instance (dtd (seq A B) 3 flat) (ann none) (doc 24 4 11) (script mix 3))");
        check("(instance (dtd (alt A B) 3 flat) (ann alternate) (doc 24 4 11) (script del 2))");
        check("(instance (dtd (star A) 3 flat) (ann deep) (doc 24 4 11) (script ins 2 1))");
        check("(instance (dtd (seq A (star B)) 3 rec) (ann leaves) (doc 24 4 11) (script mix 3))");
    }

    #[test]
    fn disagreement_messages_carry_the_replay_dump() {
        // Force a "disagreement" by running the real check but inspecting
        // the error path through a deliberately broken expectation: a
        // malformed recipe must not panic, and a valid instance's dump
        // must embed its recipe. (The real oracles agreeing is the point;
        // this pins the failure-reporting contract.)
        let recipe = "(instance (dtd (opt A) 2 flat) (ann root-run 2) (doc 16 3 9) (script nop))";
        let inst = instance_from_recipe(&recipe.parse().unwrap()).unwrap();
        let msg = oracle_err(&inst, "synthetic failure");
        assert!(msg.contains("synthetic failure"));
        assert!(msg.contains(recipe), "dump must carry the replay key");
        assert!(msg.contains("update: "), "dump must carry the script");
    }

    #[test]
    fn nop_scripts_cost_zero_and_count_one_on_identity_views() {
        let out = check("(instance (dtd (seq A B) 2 flat) (ann none) (doc 16 3 5) (script nop))");
        assert_eq!(out.cost, 0);
        assert_eq!(out.count, 1);
        assert_eq!(out.enumerated, Some(1));
    }
}
