//! Replayable instance dumps for failure messages.
//!
//! Generated DTDs keep only their compiled Glushkov automata — the source
//! regular expressions are not retained — so a failing instance cannot be
//! re-printed as a DTD literal. What *can* always be replayed is the
//! deterministic path that produced it: the seed (random suites) or the
//! recipe term (enumerated suites), plus the concrete document and script
//! in identifier-preserving term syntax. [`instance_dump`] packages all of
//! that into one block suitable for a panic message, so every failure in
//! the randomized and enumerated suites is a reproducible one-liner.

use xvu_dtd::Dtd;
use xvu_edit::{script_to_term, Script};
use xvu_tree::{to_term_with_ids, Alphabet, DocTree};
use xvu_view::Annotation;

/// Renders a replayable dump of one workload instance.
///
/// `context` names the deterministic replay key — e.g. `"seed 42"` for the
/// random generators, or the full `(instance …)` recipe term for the
/// enumerated families (paste it back into
/// `enumo::instance_from_recipe` to rebuild the instance verbatim).
pub fn instance_dump(
    context: &str,
    alpha: &Alphabet,
    dtd: &Dtd,
    ann: &Annotation,
    doc: &DocTree,
    update: &Script,
) -> String {
    let mut hidden: Vec<String> = ann
        .iter_hidden()
        .map(|(p, c)| format!("{}/{}", alpha.name(p), alpha.name(c)))
        .collect();
    hidden.sort();
    let labels: Vec<&str> = alpha.syms().map(|s| alpha.name(s)).collect();
    let ruled: Vec<&str> = alpha
        .syms()
        .filter(|&s| dtd.has_rule(s))
        .map(|s| alpha.name(s))
        .collect();
    format!(
        "replay: {context}\n\
         labels: [{}] (ruled: [{}])\n\
         hidden pairs: [{}]\n\
         doc: {}\n\
         update: {}",
        labels.join(", "),
        ruled.join(", "),
        hidden.join(", "),
        to_term_with_ids(doc, alpha),
        script_to_term(update, alpha),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumo::instance_from_recipe;

    #[test]
    fn dump_carries_the_replay_key_and_terms() {
        let recipe = "(instance (dtd (seq A B) 2 flat) (ann leaves) (doc 16 3 5) (script nop))";
        let inst = instance_from_recipe(&recipe.parse().unwrap()).unwrap();
        let dump = instance_dump(
            &inst.name,
            &inst.alpha,
            &inst.dtd,
            &inst.ann,
            &inst.doc,
            &inst.update,
        );
        assert!(dump.contains(recipe), "{dump}");
        assert!(dump.contains("hidden pairs:"), "{dump}");
        assert!(dump.contains("doc: l0#"), "{dump}");
        assert!(dump.contains("update: nop:l0#"), "{dump}");
        // the dumped doc term parses back to the same tree
        let mut alpha = inst.alpha.clone();
        let mut gen = xvu_tree::NodeIdGen::starting_at(1 << 50);
        let line = dump.lines().find(|l| l.starts_with("doc: ")).unwrap();
        let reparsed =
            xvu_tree::parse_term_with_ids(&mut alpha, &mut gen, &line["doc: ".len()..]).unwrap();
        assert_eq!(reparsed, inst.doc);
    }
}
