//! Random *valid* view updates.
//!
//! Produces editing scripts `S` with `In(S) = A(t)` and `Out(S) ∈ A(L(D))`
//! by construction: operations are drafted against the current script and
//! committed only if the affected node's child word stays in the **view
//! DTD**'s content model. Inserted fragments are sampled from the view
//! DTD, so they are legal view subtrees.

use crate::docgen::{generate_doc, DocGenConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xvu_dtd::{min_sizes, Dtd};
use xvu_edit::{EditOp, Script, UpdateBuilder};
use xvu_tree::{DocTree, NodeId, NodeIdGen, Sym};
use xvu_view::{derive_view_dtd, extract_view, Annotation};

/// Knobs for [`generate_update`].
#[derive(Clone, Debug)]
pub struct UpdateGenConfig {
    /// Number of committed operations to aim for.
    pub ops: usize,
    /// Depth of inserted fragments.
    pub insert_depth: usize,
    /// Probability that an operation is a deletion.
    pub delete_bias: f64,
    /// Attempts per operation before giving up on it.
    pub attempts: usize,
}

impl Default for UpdateGenConfig {
    fn default() -> UpdateGenConfig {
        UpdateGenConfig {
            ops: 4,
            insert_depth: 2,
            delete_bias: 0.4,
            attempts: 25,
        }
    }
}

/// Generates a valid view update of `A(source)`. Deterministic in `seed`.
/// The result may contain fewer than `cfg.ops` operations when the view
/// language leaves no room (it is always at least a well-formed identity
/// update).
pub fn generate_update(
    dtd: &Dtd,
    ann: &Annotation,
    alphabet_len: usize,
    source: &DocTree,
    cfg: &UpdateGenConfig,
    seed: u64,
    gen: &mut NodeIdGen,
) -> Script {
    let mut rng = StdRng::seed_from_u64(seed);
    let view = extract_view(ann, source);
    let view_dtd = derive_view_dtd(dtd, ann, alphabet_len);
    let view_sizes = min_sizes(&view_dtd, alphabet_len);
    let insertable: Vec<Sym> = (0..alphabet_len)
        .map(Sym::from_index)
        .filter(|&s| view_sizes.is_satisfiable(s))
        .collect();

    let mut builder = UpdateBuilder::new(&view);
    let mut committed = 0usize;
    let mut attempts_left = cfg.ops * cfg.attempts;
    while committed < cfg.ops && attempts_left > 0 {
        attempts_left -= 1;
        let try_delete = rng.random_bool(cfg.delete_bias);
        let ok = if try_delete {
            try_delete_op(&mut builder, &view_dtd, &mut rng)
        } else {
            try_insert_op(
                &mut builder,
                &view_dtd,
                &insertable,
                alphabet_len,
                cfg,
                &mut rng,
                gen,
            )
        };
        if ok {
            committed += 1;
        }
    }
    builder.finish()
}

/// Attempts one deletion: a random live non-root node whose removal keeps
/// its parent's output word in the view language.
fn try_delete_op(builder: &mut UpdateBuilder, view_dtd: &Dtd, rng: &mut StdRng) -> bool {
    let script = builder.script();
    let root = script.root();
    let candidates: Vec<NodeId> = script
        .preorder()
        .filter(|&n| {
            n != root
                && script.label(n).op != EditOp::Del
                && script
                    .parent(n)
                    .is_some_and(|p| script.label(p).op != EditOp::Del)
        })
        .collect();
    if candidates.is_empty() {
        return false;
    }
    // Scan victims in a random rotation; commit the first whose removal
    // keeps the parent word in the view language.
    let offset = rng.random_range(0..candidates.len());
    for idx in 0..candidates.len() {
        let victim = candidates[(offset + idx) % candidates.len()];
        let parent = script.parent(victim).expect("non-root");
        let parent_label = script.label(parent).label;
        let new_word: Vec<Sym> = script
            .children(parent)
            .iter()
            .filter(|&&c| c != victim && script.label(c).op != EditOp::Del)
            .map(|&c| script.label(c).label)
            .collect();
        if view_dtd.content_model(parent_label).accepts(&new_word) {
            return builder.delete(victim).is_ok();
        }
    }
    false
}

/// Attempts one insertion: a random live parent, position, and label whose
/// new output word stays in the view language; the fragment is sampled
/// from the view DTD.
fn try_insert_op(
    builder: &mut UpdateBuilder,
    view_dtd: &Dtd,
    insertable: &[Sym],
    alphabet_len: usize,
    cfg: &UpdateGenConfig,
    rng: &mut StdRng,
    gen: &mut NodeIdGen,
) -> bool {
    if insertable.is_empty() {
        return false;
    }
    let script = builder.script();
    let parents: Vec<NodeId> = script
        .preorder()
        .filter(|&n| script.label(n).op != EditOp::Del)
        .collect();
    // Scan (parent, position, label) combinations in a random rotation;
    // commit the first whose new word stays in the view language.
    let p_off = rng.random_range(0..parents.len());
    for p_idx in 0..parents.len() {
        let parent = parents[(p_off + p_idx) % parents.len()];
        let parent_label = script.label(parent).label;
        let arity = script.children(parent).len();
        let pos_off = rng.random_range(0..=arity);
        for pos_idx in 0..=arity {
            let pos = (pos_off + pos_idx) % (arity + 1);
            let y_off = rng.random_range(0..insertable.len());
            for y_idx in 0..insertable.len() {
                let y = insertable[(y_off + y_idx) % insertable.len()];

                // hypothetical output word of the parent
                let mut word: Vec<Sym> = Vec::with_capacity(arity + 1);
                let mut out_pos = 0usize;
                for (i, &c) in script.children(parent).iter().enumerate() {
                    if i == pos {
                        out_pos = word.len();
                    }
                    if script.label(c).op != EditOp::Del {
                        word.push(script.label(c).label);
                    }
                }
                if pos == arity {
                    out_pos = word.len();
                }
                word.insert(out_pos, y);
                if !view_dtd.content_model(parent_label).accepts(&word) {
                    continue;
                }

                let frag_cfg = DocGenConfig {
                    max_depth: cfg.insert_depth,
                    max_children: 4,
                    max_nodes: 100,
                    ..DocGenConfig::default()
                };
                let frag_seed = rng.random_range(0..u64::MAX);
                let fragment = generate_doc(view_dtd, alphabet_len, y, &frag_cfg, frag_seed, gen);
                return builder.insert(parent, pos, fragment).is_ok();
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anngen::generate_annotation;
    use crate::dtdgen::{generate_dtd, DtdGenConfig};
    use xvu_edit::{check_is_update_of, input_tree, output_tree};
    use xvu_tree::Alphabet;

    #[test]
    fn generated_updates_are_valid_view_updates() {
        let mut nontrivial = 0;
        for seed in 0..25u64 {
            let mut alpha = Alphabet::new();
            let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), seed);
            let ann = generate_annotation(&alpha, 0.25, seed.wrapping_mul(7), &[]);
            let root = alpha.get("l0").unwrap();
            let mut gen = NodeIdGen::new();
            let doc = generate_doc(
                &dtd,
                alpha.len(),
                root,
                &DocGenConfig::default(),
                seed ^ 0xbeef,
                &mut gen,
            );
            let view = extract_view(&ann, &doc);
            let update = generate_update(
                &dtd,
                &ann,
                alpha.len(),
                &doc,
                &UpdateGenConfig::default(),
                seed ^ 0xf00d,
                &mut gen,
            );
            check_is_update_of(&update, &view).unwrap();
            assert_eq!(input_tree(&update).unwrap(), view);
            let out = output_tree(&update).unwrap();
            let view_dtd = derive_view_dtd(&dtd, &ann, alpha.len());
            view_dtd
                .validate(&out)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            if xvu_edit::cost(&update) > 0 {
                nontrivial += 1;
            }
        }
        assert!(nontrivial >= 15, "only {nontrivial}/25 updates non-trivial");
    }

    #[test]
    fn determinism() {
        let mut alpha = Alphabet::new();
        let dtd = generate_dtd(&mut alpha, &DtdGenConfig::default(), 3);
        let ann = generate_annotation(&alpha, 0.3, 5, &[]);
        let root = alpha.get("l0").unwrap();
        let mut g1 = NodeIdGen::new();
        let doc = generate_doc(
            &dtd,
            alpha.len(),
            root,
            &DocGenConfig::default(),
            77,
            &mut g1,
        );
        let mut ga = g1.clone();
        let mut gb = g1.clone();
        let u1 = generate_update(
            &dtd,
            &ann,
            alpha.len(),
            &doc,
            &UpdateGenConfig::default(),
            9,
            &mut ga,
        );
        let u2 = generate_update(
            &dtd,
            &ann,
            alpha.len(),
            &doc,
            &UpdateGenConfig::default(),
            9,
            &mut gb,
        );
        assert_eq!(u1, u2);
    }
}
