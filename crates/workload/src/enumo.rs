//! Grammar-space **enumeration** of workload families — the `enumo`
//! recipe idiom (after ruler's `enumo` module): instead of *sampling*
//! random DTDs, annotations, and update scripts, small recipe terms are
//! enumerated **exhaustively** up to a size budget, so every structural
//! family in the budgeted space (deep recursion, wide alternation, heavy
//! hiding, …) is visited deterministically.
//!
//! The three layers are:
//!
//! 1. **Terms** — [`Sexp`], a tiny s-expression language with
//!    [`Sexp::plug`] substitution and [`Metric`]-based size measures
//!    ([`Metric::Atoms`], [`Metric::Depth`], [`Metric::Lists`]);
//! 2. **Workloads** — [`Workload`], lazily composed sets of terms:
//!    `Set`, `Plug` (cross-product substitution of a hole atom),
//!    `Filter` (metric bounds), `Append`; [`Workload::force`] yields the
//!    deduplicated term list;
//! 3. **Recipes** — interpreters turning enumerated terms into runnable
//!    pieces: [`DtdRecipe`] (rule-shape terms over hole atoms `A`/`B`/`C`
//!    compiled into layered, optionally *recursive*, always-satisfiable
//!    DTDs), [`AnnPattern`] (visibility patterns: `none`, `root-run`,
//!    `alternate`, `leaves`, `deep`), and [`ScriptRecipe`] (update
//!    shapes: `nop`, `ins`, `del`, `mix`, keyed to the generated view).
//!
//! [`enumerate_recipes`] composes the three recipe workloads with
//! [`Workload::plug`] into fully self-describing `(instance …)` terms,
//! and [`instance_from_recipe`] compiles any such term into a ready-to-run
//! [`EnumeratedInstance`] `(Σ, D, A, t, S)` via the existing generators —
//! deterministically, so **the recipe term is the replay key**: paste a
//! failing instance's name back into [`instance_from_recipe`] to
//! reproduce it as a one-liner.
//!
//! # A worked recipe
//!
//! ```
//! use xvu_workload::enumo::*;
//!
//! // Enumerate every ground rule shape reachable in two plug rounds…
//! let shapes = rule_shapes(2, 4);
//! assert!(shapes.force().len() >= 14);
//!
//! // …or compile one concrete family member end to end:
//! let recipe: Sexp =
//!     "(instance (dtd (seq A (star B)) 3 rec) (ann leaves) (doc 24 4 7) (script ins 2 1))"
//!         .parse()
//!         .unwrap();
//! let inst = instance_from_recipe(&recipe).expect("recipe compiles");
//! assert!(inst.dtd.is_valid(&inst.doc));
//! assert_eq!(inst.name, recipe.to_string()); // the name replays the instance
//! ```

use crate::anngen::generate_annotation;
use crate::docgen::{generate_doc, DocGenConfig};
use crate::updategen::{generate_update, UpdateGenConfig};
use std::fmt;
use std::str::FromStr;
use xvu_automata::Regex;
use xvu_dtd::{min_sizes, Dtd};
use xvu_edit::{nop_script, Script};
use xvu_tree::{Alphabet, DocTree, NodeIdGen, Sym};
use xvu_view::{extract_view, Annotation};

// ---------------------------------------------------------------------
// Sexp: the term language
// ---------------------------------------------------------------------

/// A tiny s-expression: atoms and lists. The term language every recipe
/// is written in.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sexp {
    /// A bare symbol, e.g. `A` or `star`.
    Atom(String),
    /// A parenthesised application, e.g. `(seq A B)`.
    List(Vec<Sexp>),
}

impl Sexp {
    /// An atom term.
    pub fn atom(s: impl Into<String>) -> Sexp {
        Sexp::Atom(s.into())
    }

    /// A list term.
    pub fn list(items: impl IntoIterator<Item = Sexp>) -> Sexp {
        Sexp::List(items.into_iter().collect())
    }

    /// Measures the term under a [`Metric`].
    pub fn measure(&self, metric: Metric) -> usize {
        match (self, metric) {
            (Sexp::Atom(_), Metric::Atoms) => 1,
            (Sexp::Atom(_), Metric::Depth) => 0,
            (Sexp::Atom(_), Metric::Lists) => 0,
            (Sexp::List(items), m) => {
                let children = items.iter().map(|s| s.measure(m));
                match m {
                    Metric::Atoms => children.sum(),
                    Metric::Lists => 1usize + children.sum::<usize>(),
                    Metric::Depth => 1usize + children.max().unwrap_or(0),
                }
            }
        }
    }

    /// Whether the atom `name` occurs anywhere in the term.
    pub fn contains_atom(&self, name: &str) -> bool {
        match self {
            Sexp::Atom(a) => a == name,
            Sexp::List(items) => items.iter().any(|s| s.contains_atom(name)),
        }
    }

    /// Counts occurrences of list heads equal to `head` (e.g. how many
    /// `alt` nodes a shape has).
    pub fn count_heads(&self, head: &str) -> usize {
        match self {
            Sexp::Atom(_) => 0,
            Sexp::List(items) => {
                let me = matches!(items.first(), Some(Sexp::Atom(h)) if h == head) as usize;
                me + items.iter().map(|s| s.count_heads(head)).sum::<usize>()
            }
        }
    }

    /// Cross-product substitution: every occurrence of the atom `name` is
    /// replaced by each of `pegs` **independently**, so a term with `k`
    /// occurrences yields `|pegs|^k` results (the ruler `plug` semantics).
    pub fn plug(&self, name: &str, pegs: &[Sexp]) -> Vec<Sexp> {
        match self {
            Sexp::Atom(a) if a == name => pegs.to_vec(),
            Sexp::Atom(_) => vec![self.clone()],
            Sexp::List(items) => {
                // cartesian product over the children's plug results
                let mut acc: Vec<Vec<Sexp>> = vec![Vec::with_capacity(items.len())];
                for item in items {
                    let choices = item.plug(name, pegs);
                    let mut next = Vec::with_capacity(acc.len() * choices.len());
                    for prefix in &acc {
                        for c in &choices {
                            let mut row = prefix.clone();
                            row.push(c.clone());
                            next.push(row);
                        }
                    }
                    acc = next;
                }
                acc.into_iter().map(Sexp::List).collect()
            }
        }
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Atom(a) => write!(f, "{a}"),
            Sexp::List(items) => {
                write!(f, "(")?;
                for (i, s) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Parse error for [`Sexp::from_str`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SexpParseError(pub String);

impl fmt::Display for SexpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sexp parse error: {}", self.0)
    }
}

impl std::error::Error for SexpParseError {}

impl FromStr for Sexp {
    type Err = SexpParseError;

    fn from_str(input: &str) -> Result<Sexp, SexpParseError> {
        let mut tokens = Vec::new();
        let mut cur = String::new();
        for ch in input.chars() {
            match ch {
                '(' | ')' => {
                    if !cur.is_empty() {
                        tokens.push(std::mem::take(&mut cur));
                    }
                    tokens.push(ch.to_string());
                }
                c if c.is_whitespace() => {
                    if !cur.is_empty() {
                        tokens.push(std::mem::take(&mut cur));
                    }
                }
                c => cur.push(c),
            }
        }
        if !cur.is_empty() {
            tokens.push(cur);
        }
        let mut pos = 0usize;
        let parsed = parse_tokens(&tokens, &mut pos)?;
        if pos != tokens.len() {
            return Err(SexpParseError(format!(
                "trailing tokens after term: {:?}",
                &tokens[pos..]
            )));
        }
        Ok(parsed)
    }
}

fn parse_tokens(tokens: &[String], pos: &mut usize) -> Result<Sexp, SexpParseError> {
    let tok = tokens
        .get(*pos)
        .ok_or_else(|| SexpParseError("unexpected end of input".to_owned()))?;
    *pos += 1;
    match tok.as_str() {
        "(" => {
            let mut items = Vec::new();
            loop {
                match tokens.get(*pos).map(String::as_str) {
                    Some(")") => {
                        *pos += 1;
                        return Ok(Sexp::List(items));
                    }
                    Some(_) => items.push(parse_tokens(tokens, pos)?),
                    None => return Err(SexpParseError("unclosed '('".to_owned())),
                }
            }
        }
        ")" => Err(SexpParseError("unexpected ')'".to_owned())),
        atom => Ok(Sexp::Atom(atom.to_owned())),
    }
}

// ---------------------------------------------------------------------
// Metrics, filters, workloads
// ---------------------------------------------------------------------

/// Size measures over [`Sexp`] terms (the ruler `Metric` triple).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Number of atom occurrences.
    Atoms,
    /// Number of list nodes.
    Lists,
    /// Maximum nesting depth (atoms measure 0).
    Depth,
}

/// Predicates used to bound a [`Workload`].
#[derive(Clone, Debug)]
pub enum Filter {
    /// Keep terms with `measure(metric) < bound`.
    MetricLt(Metric, usize),
    /// Keep terms containing the given atom.
    Contains(String),
    /// Keep terms **not** containing the given atom (e.g. drop terms
    /// with unexpanded holes after the final plug round).
    Excludes(String),
    /// Conjunction.
    And(Vec<Filter>),
}

impl Filter {
    /// Whether the term passes the filter.
    pub fn allows(&self, s: &Sexp) -> bool {
        match self {
            Filter::MetricLt(m, bound) => s.measure(*m) < *bound,
            Filter::Contains(a) => s.contains_atom(a),
            Filter::Excludes(a) => !s.contains_atom(a),
            Filter::And(fs) => fs.iter().all(|f| f.allows(s)),
        }
    }
}

/// A lazily composed, exhaustively enumerable set of terms.
///
/// Composition mirrors ruler's `enumo::Workload`: start from literal
/// `Set`s, substitute hole atoms with [`Workload::plug`], bound with
/// [`Workload::filter`], union with [`Workload::append`], and realise the
/// final term list with [`Workload::force`].
#[derive(Clone, Debug)]
pub enum Workload {
    /// A literal set of terms.
    Set(Vec<Sexp>),
    /// Every term of the first workload with the hole atom substituted by
    /// every term of the second (cross-product per occurrence).
    Plug(Box<Workload>, String, Box<Workload>),
    /// The sub-workload restricted by a filter.
    Filter(Filter, Box<Workload>),
    /// Union (order-preserving).
    Append(Vec<Workload>),
}

impl Workload {
    /// A literal workload parsed from term syntax. Panics on malformed
    /// terms (recipes are compile-time constants).
    pub fn new<'a>(terms: impl IntoIterator<Item = &'a str>) -> Workload {
        Workload::Set(
            terms
                .into_iter()
                .map(|t| t.parse().expect("workload term parses"))
                .collect(),
        )
    }

    /// Substitutes the hole atom `name` with every term of `pegs`.
    pub fn plug(self, name: impl Into<String>, pegs: &Workload) -> Workload {
        Workload::Plug(Box::new(self), name.into(), Box::new(pegs.clone()))
    }

    /// Restricts the workload by `filter`.
    pub fn filter(self, filter: Filter) -> Workload {
        Workload::Filter(filter, Box::new(self))
    }

    /// Unions this workload with `other` (order-preserving).
    pub fn append(self, other: Workload) -> Workload {
        Workload::Append(vec![self, other])
    }

    /// Realises the term list: evaluates the composition and deduplicates
    /// while preserving first-occurrence order (fully deterministic).
    pub fn force(&self) -> Vec<Sexp> {
        let raw = match self {
            Workload::Set(terms) => terms.clone(),
            Workload::Plug(wl, name, pegs) => {
                let pegs = pegs.force();
                wl.force()
                    .iter()
                    .flat_map(|t| t.plug(name, &pegs))
                    .collect()
            }
            Workload::Filter(f, wl) => wl.force().into_iter().filter(|t| f.allows(t)).collect(),
            Workload::Append(wls) => wls.iter().flat_map(|w| w.force()).collect(),
        };
        let mut seen = std::collections::HashSet::new();
        raw.into_iter().filter(|t| seen.insert(t.clone())).collect()
    }
}

/// Enumerates every **ground** rule shape reachable in `rounds` rounds of
/// plugging the hole `X` with the shape grammar
///
/// ```text
/// X ::= A | B | (seq X X) | (alt X X) | (star X) | (opt X)
/// ```
///
/// bounded by `Metric::Atoms < max_atoms + 1` per round; shapes still
/// containing `X` after the final round are dropped. Two rounds yield the
/// 14 canonical small families (symbols, pairs, stars, options); three
/// rounds add the nested seq-of-alt / star-of-alt / deep-option families.
pub fn rule_shapes(rounds: usize, max_atoms: usize) -> Workload {
    let expansions = Workload::new(["A", "B", "(seq X X)", "(alt X X)", "(star X)", "(opt X)"]);
    let mut wl = Workload::new(["X"]);
    for _ in 0..rounds {
        wl = wl
            .plug("X", &expansions)
            .filter(Filter::MetricLt(Metric::Atoms, max_atoms + 1));
    }
    wl.filter(Filter::Excludes("X".to_owned()))
}

// ---------------------------------------------------------------------
// DTD recipes
// ---------------------------------------------------------------------

/// Compiles a shape term into a [`Regex`], resolving atom names to
/// symbols through `resolve`. The combinators are `(seq x y …)`,
/// `(alt x y …)`, `(star x)`, `(opt x)`, plus the special atom `eps`.
///
/// This is the shared interpreter behind enumerated families
/// ([`DtdRecipe::compile`], positional hole atoms `A`/`B`/`C`) and the
/// named scenarios ([`dtd_from_rules`], label-name atoms).
pub fn shape_to_regex(shape: &Sexp, resolve: &mut impl FnMut(&str) -> Sym) -> Regex {
    match shape {
        Sexp::Atom(a) if a == "eps" => Regex::Epsilon,
        Sexp::Atom(a) => Regex::sym(resolve(a)),
        Sexp::List(items) => {
            let head = match items.first() {
                Some(Sexp::Atom(h)) => h.as_str(),
                _ => panic!("shape list must start with a combinator: {shape}"),
            };
            let args: Vec<Regex> = items[1..]
                .iter()
                .map(|s| shape_to_regex(s, resolve))
                .collect();
            match head {
                "seq" => Regex::concat(args),
                "alt" => Regex::alt(args),
                "star" => {
                    assert_eq!(args.len(), 1, "star takes one argument: {shape}");
                    Regex::star(args.into_iter().next().unwrap())
                }
                "opt" => {
                    assert_eq!(args.len(), 1, "opt takes one argument: {shape}");
                    Regex::opt(args.into_iter().next().unwrap())
                }
                other => panic!("unknown shape combinator {other:?} in {shape}"),
            }
        }
    }
}

/// Builds a DTD directly from named per-label rule shapes — the scenario
/// construction path: every rule is a term of the same shape language the
/// enumerated families use, with label names as atoms. Labels mentioned
/// only as atoms become leaves.
pub fn dtd_from_rules(alpha: &mut Alphabet, rules: &[(&str, &str)]) -> Dtd {
    let parsed: Vec<(String, Sexp)> = rules
        .iter()
        .map(|(name, shape)| {
            (
                (*name).to_owned(),
                shape.parse::<Sexp>().expect("rule shape parses"),
            )
        })
        .collect();
    // Intern rule heads first so label indices follow declaration order.
    for (name, _) in &parsed {
        alpha.intern(name);
    }
    let mut dtd = Dtd::new();
    for (name, shape) in &parsed {
        let re = shape_to_regex(shape, &mut |atom| alpha.intern(atom));
        let label = alpha.get(name).expect("interned above");
        dtd.set_rule(label, &re);
    }
    dtd
}

/// One enumerated DTD family: a ground rule shape over hole atoms
/// `A`/`B`/`C`, instantiated down a chain of `layers` ruled labels
/// `l0 … l{layers-1}` plus one leaf label `l{layers}`.
///
/// * **Layered** (`recursive = false`): label `l_i`'s rule is the shape
///   with `A ↦ l_{i+1}`, `B ↦ l_{i+2}`, `C ↦ l_{i+3}` (clamped to the
///   leaf), so documents have bounded depth — the polynomial regime.
/// * **Recursive** (`recursive = true`): `B ↦ l_i` itself and the whole
///   rule is wrapped in `?`, making every label nullable and therefore
///   satisfiable while admitting unbounded nesting — the deep-recursion
///   regime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DtdRecipe {
    /// The ground rule shape (atoms `A`, `B`, `C`).
    pub shape: Sexp,
    /// Number of ruled labels.
    pub layers: usize,
    /// Whether hole `B` refers back to the label itself.
    pub recursive: bool,
}

impl DtdRecipe {
    /// The recipe as a term: `(dtd <shape> <layers> flat|rec)`.
    pub fn to_sexp(&self) -> Sexp {
        Sexp::list([
            Sexp::atom("dtd"),
            self.shape.clone(),
            Sexp::atom(self.layers.to_string()),
            Sexp::atom(if self.recursive { "rec" } else { "flat" }),
        ])
    }

    /// Parses a `(dtd <shape> <layers> flat|rec)` term.
    pub fn from_sexp(s: &Sexp) -> Result<DtdRecipe, String> {
        let Sexp::List(items) = s else {
            return Err(format!("dtd recipe must be a list: {s}"));
        };
        match items.as_slice() {
            [Sexp::Atom(head), shape, Sexp::Atom(layers), Sexp::Atom(mode)] if head == "dtd" => {
                let layers: usize = layers
                    .parse()
                    .map_err(|_| format!("bad layer count in {s}"))?;
                let recursive = match mode.as_str() {
                    "rec" => true,
                    "flat" => false,
                    other => return Err(format!("bad mode {other:?} in {s}")),
                };
                if layers == 0 {
                    return Err(format!("need at least one ruled layer: {s}"));
                }
                Ok(DtdRecipe {
                    shape: shape.clone(),
                    layers,
                    recursive,
                })
            }
            _ => Err(format!("malformed dtd recipe: {s}")),
        }
    }

    /// Compiles the family into `(Σ, D)` with labels `l0 … l{layers}`.
    /// Every label is satisfiable by construction (asserted).
    pub fn compile(&self) -> (Alphabet, Dtd) {
        let mut alpha = Alphabet::new();
        let syms: Vec<Sym> = (0..=self.layers)
            .map(|i| alpha.intern(&format!("l{i}")))
            .collect();
        let leaf = self.layers; // index of the rule-less label
        let mut dtd = Dtd::new();
        for i in 0..self.layers {
            let hole = |k: usize| syms[(i + k).min(leaf)];
            let re = shape_to_regex(&self.shape, &mut |atom| match atom {
                "A" => hole(1),
                "B" if self.recursive => syms[i],
                "B" => hole(2),
                "C" => hole(3),
                other => panic!("unknown hole atom {other:?} in {}", self.shape),
            });
            // Recursive rules are wrapped in `?`: nullability guarantees
            // satisfiability regardless of where the self-reference sits.
            let re = if self.recursive { Regex::opt(re) } else { re };
            dtd.set_rule(syms[i], &re);
        }
        let sizes = min_sizes(&dtd, alpha.len());
        for &s in &syms {
            debug_assert!(
                sizes.is_satisfiable(s),
                "recipe {} produced unsatisfiable {}",
                self.to_sexp(),
                alpha.name(s)
            );
        }
        (alpha, dtd)
    }
}

// ---------------------------------------------------------------------
// Annotation recipes
// ---------------------------------------------------------------------

/// Enumerated visibility patterns over the compiled label chain
/// `l0 … ln` (classes are by label index).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnnPattern {
    /// Everything visible (the identity view).
    None,
    /// Hide the vertical run under the root: `l_{i+1}` under `l_i` for
    /// `i < k` — the view "jumps over" the top `k` layers' children.
    RootRun(usize),
    /// Hide every odd-indexed label class wherever it appears.
    Alternate,
    /// Hide every rule-less (leaf) label class wherever it appears.
    Leaves,
    /// Heavy hiding: every pair whose parent is below the root layer —
    /// the view shows only the root and its immediate children.
    Deep,
    /// Composite hiding `(ann mix k1 k2)`: the vertical root-run of
    /// length `k1` **and** every label class whose index is a positive
    /// multiple of `k2`, hidden under every parent. Mixes the two
    /// orthogonal hiding axes (vertical run × horizontal class) that the
    /// atomic patterns only cover separately.
    Mix(usize, usize),
}

impl AnnPattern {
    /// The pattern as a term: `(ann none|alternate|leaves|deep)`,
    /// `(ann root-run <k>)`, or `(ann mix <k1> <k2>)`.
    pub fn to_sexp(&self) -> Sexp {
        let mut items = vec![Sexp::atom("ann")];
        match self {
            AnnPattern::None => items.push(Sexp::atom("none")),
            AnnPattern::RootRun(k) => {
                items.push(Sexp::atom("root-run"));
                items.push(Sexp::atom(k.to_string()));
            }
            AnnPattern::Alternate => items.push(Sexp::atom("alternate")),
            AnnPattern::Leaves => items.push(Sexp::atom("leaves")),
            AnnPattern::Deep => items.push(Sexp::atom("deep")),
            AnnPattern::Mix(k1, k2) => {
                items.push(Sexp::atom("mix"));
                items.push(Sexp::atom(k1.to_string()));
                items.push(Sexp::atom(k2.to_string()));
            }
        }
        Sexp::List(items)
    }

    /// Parses an `(ann …)` term.
    pub fn from_sexp(s: &Sexp) -> Result<AnnPattern, String> {
        let Sexp::List(items) = s else {
            return Err(format!("ann pattern must be a list: {s}"));
        };
        match items.as_slice() {
            [Sexp::Atom(head), Sexp::Atom(kind)] if head == "ann" => match kind.as_str() {
                "none" => Ok(AnnPattern::None),
                "alternate" => Ok(AnnPattern::Alternate),
                "leaves" => Ok(AnnPattern::Leaves),
                "deep" => Ok(AnnPattern::Deep),
                other => Err(format!("unknown ann pattern {other:?}")),
            },
            [Sexp::Atom(head), Sexp::Atom(kind), Sexp::Atom(k)] if head == "ann" => {
                if kind == "root-run" {
                    Ok(AnnPattern::RootRun(
                        k.parse().map_err(|_| format!("bad run length in {s}"))?,
                    ))
                } else {
                    Err(format!("unknown ann pattern {kind:?}"))
                }
            }
            [Sexp::Atom(head), Sexp::Atom(kind), Sexp::Atom(k1), Sexp::Atom(k2)]
                if head == "ann" && kind == "mix" =>
            {
                let k1 = k1.parse().map_err(|_| format!("bad run length in {s}"))?;
                let k2: usize = k2.parse().map_err(|_| format!("bad stride in {s}"))?;
                if k2 == 0 {
                    return Err(format!("mix stride must be positive: {s}"));
                }
                Ok(AnnPattern::Mix(k1, k2))
            }
            _ => Err(format!("malformed ann pattern: {s}")),
        }
    }

    /// Compiles the pattern into an [`Annotation`] over `alpha`'s labels
    /// (in interning order) and `dtd`'s rule set.
    pub fn compile(&self, alpha: &Alphabet, dtd: &Dtd) -> Annotation {
        let syms: Vec<Sym> = alpha.syms().collect();
        let mut ann = Annotation::all_visible();
        match self {
            AnnPattern::None => {}
            AnnPattern::RootRun(k) => {
                for i in 0..(*k).min(syms.len().saturating_sub(1)) {
                    ann.hide(syms[i], syms[i + 1]);
                }
            }
            AnnPattern::Alternate => {
                for (j, &c) in syms.iter().enumerate() {
                    if j % 2 == 1 {
                        for &p in &syms {
                            ann.hide(p, c);
                        }
                    }
                }
            }
            AnnPattern::Leaves => {
                for &c in syms.iter().filter(|&&c| !dtd.has_rule(c)) {
                    for &p in &syms {
                        ann.hide(p, c);
                    }
                }
            }
            AnnPattern::Deep => {
                for &p in syms.iter().skip(1) {
                    for &c in &syms {
                        ann.hide(p, c);
                    }
                }
            }
            AnnPattern::Mix(k1, k2) => {
                for i in 0..(*k1).min(syms.len().saturating_sub(1)) {
                    ann.hide(syms[i], syms[i + 1]);
                }
                let stride = (*k2).max(1);
                for (j, &c) in syms.iter().enumerate() {
                    if j > 0 && j % stride == 0 {
                        for &p in &syms {
                            ann.hide(p, c);
                        }
                    }
                }
            }
        }
        ann
    }
}

// ---------------------------------------------------------------------
// Update-script recipes
// ---------------------------------------------------------------------

/// Enumerated update shapes, keyed to the generated view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptRecipe {
    /// The identity update.
    Nop,
    /// `ops` insertions of fragments of the given depth (no deletions).
    Ins(usize, usize),
    /// `ops` deletions (no insertions).
    Del(usize),
    /// `ops` mixed operations (the default generator bias).
    Mix(usize),
}

impl ScriptRecipe {
    /// The recipe as a term: `(script nop|…)`.
    pub fn to_sexp(&self) -> Sexp {
        let mut items = vec![Sexp::atom("script")];
        match self {
            ScriptRecipe::Nop => items.push(Sexp::atom("nop")),
            ScriptRecipe::Ins(ops, depth) => {
                items.push(Sexp::atom("ins"));
                items.push(Sexp::atom(ops.to_string()));
                items.push(Sexp::atom(depth.to_string()));
            }
            ScriptRecipe::Del(ops) => {
                items.push(Sexp::atom("del"));
                items.push(Sexp::atom(ops.to_string()));
            }
            ScriptRecipe::Mix(ops) => {
                items.push(Sexp::atom("mix"));
                items.push(Sexp::atom(ops.to_string()));
            }
        }
        Sexp::List(items)
    }

    /// Parses a `(script …)` term.
    pub fn from_sexp(s: &Sexp) -> Result<ScriptRecipe, String> {
        let Sexp::List(items) = s else {
            return Err(format!("script recipe must be a list: {s}"));
        };
        let num = |a: &str| a.parse::<usize>().map_err(|_| format!("bad number in {s}"));
        match items.as_slice() {
            [Sexp::Atom(head), Sexp::Atom(kind)] if head == "script" && kind == "nop" => {
                Ok(ScriptRecipe::Nop)
            }
            [Sexp::Atom(head), Sexp::Atom(kind), Sexp::Atom(ops)] if head == "script" => {
                match kind.as_str() {
                    "del" => Ok(ScriptRecipe::Del(num(ops)?)),
                    "mix" => Ok(ScriptRecipe::Mix(num(ops)?)),
                    other => Err(format!("unknown script recipe {other:?}")),
                }
            }
            [Sexp::Atom(head), Sexp::Atom(kind), Sexp::Atom(ops), Sexp::Atom(depth)]
                if head == "script" && kind == "ins" =>
            {
                Ok(ScriptRecipe::Ins(num(ops)?, num(depth)?))
            }
            _ => Err(format!("malformed script recipe: {s}")),
        }
    }

    /// Compiles the recipe into a valid view update of `A(doc)` using the
    /// membership-checked generator. Deterministic in `seed`.
    pub fn compile(
        &self,
        dtd: &Dtd,
        ann: &Annotation,
        alphabet_len: usize,
        doc: &DocTree,
        seed: u64,
        gen: &mut NodeIdGen,
    ) -> Script {
        let cfg = match self {
            ScriptRecipe::Nop => return nop_script(&extract_view(ann, doc)),
            ScriptRecipe::Ins(ops, depth) => UpdateGenConfig {
                ops: *ops,
                insert_depth: *depth,
                delete_bias: 0.0,
                attempts: 25,
            },
            ScriptRecipe::Del(ops) => UpdateGenConfig {
                ops: *ops,
                insert_depth: 1,
                delete_bias: 1.0,
                attempts: 25,
            },
            ScriptRecipe::Mix(ops) => UpdateGenConfig {
                ops: *ops,
                ..UpdateGenConfig::default()
            },
        };
        generate_update(dtd, ann, alphabet_len, doc, &cfg, seed, gen)
    }
}

// ---------------------------------------------------------------------
// Instance enumeration
// ---------------------------------------------------------------------

/// Enumeration budget: how far the recipe space is unrolled and how large
/// the compiled documents get.
#[derive(Clone, Debug)]
pub struct EnumBudget {
    /// Plug rounds for [`rule_shapes`].
    pub shape_rounds: usize,
    /// `Metric::Atoms` bound per shape round.
    pub max_shape_atoms: usize,
    /// `Metric::Depth` bound on final shapes.
    pub max_shape_depth: usize,
    /// Ruled layers per DTD family.
    pub layers: usize,
    /// Document node budget.
    pub doc_max_nodes: usize,
    /// Document depth budget.
    pub doc_max_depth: usize,
    /// Base seed mixed into every per-instance seed.
    pub doc_seed: u64,
}

impl Default for EnumBudget {
    fn default() -> EnumBudget {
        EnumBudget {
            shape_rounds: 2,
            max_shape_atoms: 4,
            max_shape_depth: 3,
            layers: 3,
            doc_max_nodes: 24,
            doc_max_depth: 4,
            doc_seed: 0xE17,
        }
    }
}

impl EnumBudget {
    /// The nightly-scale budget: two more plug rounds (nested and
    /// doubly-nested seq/alt/star families), deeper shapes, an extra
    /// layer, and larger documents.
    pub fn full() -> EnumBudget {
        EnumBudget {
            shape_rounds: 4,
            max_shape_atoms: 5,
            max_shape_depth: 4,
            layers: 4,
            doc_max_nodes: 60,
            doc_max_depth: 6,
            doc_seed: 0xE17,
        }
    }
}

/// A deterministic 64-bit FNV-1a fold — the stable per-recipe seed (std's
/// `DefaultHasher` is randomized per process, so it cannot be the replay
/// key).
pub fn stable_hash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Enumerates the fully self-describing instance recipe terms of the
/// budgeted space:
///
/// ```text
/// (instance (dtd <shape> <layers> flat|rec) (ann <pattern>) (doc <nodes> <depth> <seed>) (script <shape>))
/// ```
///
/// composed with [`Workload::plug`] from the three component workloads.
/// Recursive (`rec`) variants are enumerated for every shape that
/// mentions hole `B`.
pub fn enumerate_recipes(budget: &EnumBudget) -> Vec<Sexp> {
    let shapes = rule_shapes(budget.shape_rounds, budget.max_shape_atoms)
        .filter(Filter::MetricLt(Metric::Depth, budget.max_shape_depth + 1));

    let layers = budget.layers;
    let dtds = {
        let flat: Vec<Sexp> = shapes
            .force()
            .iter()
            .map(|s| {
                DtdRecipe {
                    shape: s.clone(),
                    layers,
                    recursive: false,
                }
                .to_sexp()
            })
            .collect();
        let rec: Vec<Sexp> = shapes
            .filter(Filter::Contains("B".to_owned()))
            .force()
            .iter()
            .map(|s| {
                DtdRecipe {
                    shape: s.clone(),
                    layers,
                    recursive: true,
                }
                .to_sexp()
            })
            .collect();
        Workload::Set(flat).append(Workload::Set(rec))
    };

    let anns = Workload::new([
        "(ann none)",
        "(ann root-run 2)",
        "(ann alternate)",
        "(ann leaves)",
        "(ann deep)",
        "(ann mix 2 2)",
    ]);
    let scripts = Workload::new([
        "(script nop)",
        "(script ins 2 1)",
        "(script del 2)",
        "(script mix 3)",
    ]);
    let doc = Workload::Set(vec![Sexp::list([
        Sexp::atom("doc"),
        Sexp::atom(budget.doc_max_nodes.to_string()),
        Sexp::atom(budget.doc_max_depth.to_string()),
        Sexp::atom(budget.doc_seed.to_string()),
    ])]);

    Workload::new(["(instance DTD ANN DOC SCRIPT)"])
        .plug("DTD", &dtds)
        .plug("ANN", &anns)
        .plug("DOC", &doc)
        .plug("SCRIPT", &scripts)
        .force()
}

/// A compiled, ready-to-run enumerated instance.
#[derive(Clone, Debug)]
pub struct EnumeratedInstance {
    /// The full recipe term — the replay key
    /// ([`instance_from_recipe`]`(&name.parse()?)` rebuilds this exact
    /// instance).
    pub name: String,
    /// The parsed recipe.
    pub recipe: Sexp,
    /// The alphabet `Σ` (labels `l0 …`).
    pub alpha: Alphabet,
    /// The schema `D`.
    pub dtd: Dtd,
    /// The view definition `A`.
    pub ann: Annotation,
    /// The source document `t ∈ L(D)`.
    pub doc: DocTree,
    /// The valid view update `S` of `A(t)`.
    pub update: Script,
    /// Identifier generator positioned past every minted identifier.
    pub gen: NodeIdGen,
    /// Whether the DTD family is recursive.
    pub recursive: bool,
    /// Whether every content model is 1-unambiguous (its Glushkov
    /// automaton is deterministic — the W3C-required case). Optimal
    /// counts equal |enumeration| only then; for ambiguous models the
    /// count is a *path* count and only bounds the distinct enumeration
    /// from above (see `xvu_propagate::count_optimal_propagations`).
    pub deterministic: bool,
}

impl EnumeratedInstance {
    /// The coverage regime this instance belongs to, for bench grouping:
    /// `deep-recursion`, `wide-alternation`, `heavy-hiding`, or `plain`.
    /// (Priority in that order when several apply.)
    pub fn regime(&self) -> &'static str {
        if self.recursive {
            return "deep-recursion";
        }
        let Sexp::List(items) = &self.recipe else {
            return "plain";
        };
        let shape = &items[1]; // (dtd <shape> …)
        let ann = &items[2];
        if matches!(ann, Sexp::List(a) if a.iter().any(
            |x| matches!(x, Sexp::Atom(k) if k == "deep" || k == "leaves")))
        {
            return "heavy-hiding";
        }
        if shape.count_heads("alt") >= 1 {
            return "wide-alternation";
        }
        "plain"
    }
}

/// Compiles one `(instance …)` recipe term into a ready-to-run
/// [`EnumeratedInstance`]. Deterministic: the same term always yields the
/// same instance, so a failing instance's `name` replays it as a
/// one-liner. Returns `Err` for malformed terms or families whose root
/// label is unsatisfiable under the budget (never the case for recipes
/// from [`enumerate_recipes`]).
pub fn instance_from_recipe(recipe: &Sexp) -> Result<EnumeratedInstance, String> {
    let Sexp::List(items) = recipe else {
        return Err(format!("instance recipe must be a list: {recipe}"));
    };
    let [head, dtd_s, ann_s, doc_s, script_s] = items.as_slice() else {
        return Err(format!("malformed instance recipe: {recipe}"));
    };
    if head != &Sexp::atom("instance") {
        return Err(format!(
            "instance recipe must start with `instance`: {recipe}"
        ));
    }
    let dtd_recipe = DtdRecipe::from_sexp(dtd_s)?;
    let ann_pattern = AnnPattern::from_sexp(ann_s)?;
    let script_recipe = ScriptRecipe::from_sexp(script_s)?;
    let (max_nodes, max_depth, seed) = match doc_s {
        Sexp::List(d) => match d.as_slice() {
            [Sexp::Atom(h), Sexp::Atom(n), Sexp::Atom(dep), Sexp::Atom(s)] if h == "doc" => (
                n.parse::<usize>()
                    .map_err(|_| format!("bad doc nodes: {doc_s}"))?,
                dep.parse::<usize>()
                    .map_err(|_| format!("bad doc depth: {doc_s}"))?,
                s.parse::<u64>()
                    .map_err(|_| format!("bad doc seed: {doc_s}"))?,
            ),
            _ => return Err(format!("malformed doc component: {doc_s}")),
        },
        _ => return Err(format!("malformed doc component: {doc_s}")),
    };

    let (alpha, dtd) = dtd_recipe.compile();
    let ann = ann_pattern.compile(&alpha, &dtd);
    let root = alpha.get("l0").expect("compiled root label");
    if !min_sizes(&dtd, alpha.len()).is_satisfiable(root) {
        return Err(format!("root unsatisfiable in {recipe}"));
    }
    // Per-instance seed: the budget seed mixed with a stable hash of the
    // recipe term, so sibling recipes never share documents.
    let mix = stable_hash(&recipe.to_string());
    let mut gen = NodeIdGen::new();
    let doc = generate_doc(
        &dtd,
        alpha.len(),
        root,
        &DocGenConfig {
            max_nodes,
            max_depth,
            max_children: 5,
            ..DocGenConfig::default()
        },
        seed ^ mix,
        &mut gen,
    );
    let update = script_recipe.compile(
        &dtd,
        &ann,
        alpha.len(),
        &doc,
        seed ^ mix.rotate_left(17),
        &mut gen,
    );
    let deterministic = alpha
        .syms()
        .filter(|&s| dtd.has_rule(s))
        .all(|s| dtd.content_model(s).is_deterministic());
    Ok(EnumeratedInstance {
        name: recipe.to_string(),
        recipe: recipe.clone(),
        alpha,
        dtd,
        ann,
        doc,
        update,
        gen,
        recursive: dtd_recipe.recursive,
        deterministic,
    })
}

/// Compiles every recipe of the budget, skipping none: the enumerated
/// sweep. (All budgeted recipes compile; a recipe that does not is a bug
/// and surfaces as a panic in the tests that consume this.)
pub fn enumerate_instances(budget: &EnumBudget) -> Vec<EnumeratedInstance> {
    enumerate_recipes(budget)
        .iter()
        .map(|r| instance_from_recipe(r).expect("budgeted recipe compiles"))
        .collect()
}

/// A deterministic *random* annotation over an enumerated DTD family —
/// bridges the enumerated families with the sampling generators (used by
/// the randomized suites to widen coverage beyond the five patterns).
pub fn random_annotation_for(alpha: &Alphabet, hide_prob: f64, seed: u64) -> Annotation {
    generate_annotation(alpha, hide_prob, seed, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sexp_roundtrips_through_display_and_parse() {
        for s in [
            "A",
            "(seq A B)",
            "(alt (star A) (opt B))",
            "(instance (dtd (seq A B) 3 flat) (ann none) (doc 24 4 3607) (script nop))",
        ] {
            let parsed: Sexp = s.parse().unwrap();
            assert_eq!(parsed.to_string(), s);
            let reparsed: Sexp = parsed.to_string().parse().unwrap();
            assert_eq!(parsed, reparsed);
        }
        assert!("(unclosed".parse::<Sexp>().is_err());
        assert!(")".parse::<Sexp>().is_err());
        assert!("a b".parse::<Sexp>().is_err());
    }

    #[test]
    fn metrics_measure_the_ruler_way() {
        let s: Sexp = "(seq (star A) (alt A B))".parse().unwrap();
        assert_eq!(s.measure(Metric::Atoms), 6); // seq star A alt A B
        assert_eq!(s.measure(Metric::Lists), 3);
        assert_eq!(s.measure(Metric::Depth), 2);
        assert_eq!(s.count_heads("alt"), 1);
        assert!(s.contains_atom("B"));
        assert!(!s.contains_atom("C"));
    }

    #[test]
    fn plug_is_the_cross_product_per_occurrence() {
        let s: Sexp = "(seq X X)".parse().unwrap();
        let pegs: Vec<Sexp> = ["A", "B"].iter().map(|p| p.parse().unwrap()).collect();
        let plugged = s.plug("X", &pegs);
        assert_eq!(plugged.len(), 4);
        let strs: Vec<String> = plugged.iter().map(|t| t.to_string()).collect();
        assert_eq!(strs, ["(seq A A)", "(seq A B)", "(seq B A)", "(seq B B)"]);
    }

    #[test]
    fn workload_force_dedups_and_preserves_order() {
        let wl = Workload::new(["A", "B", "A"]).append(Workload::new(["B", "C"]));
        let forced: Vec<String> = wl.force().iter().map(|t| t.to_string()).collect();
        assert_eq!(forced, ["A", "B", "C"]);
    }

    #[test]
    fn two_round_shapes_are_the_fourteen_canonical_families() {
        let shapes = rule_shapes(2, 4).force();
        assert_eq!(shapes.len(), 14);
        // sanity: everything is ground and atom-bounded
        for s in &shapes {
            assert!(!s.contains_atom("X"), "{s}");
            assert!(s.measure(Metric::Atoms) <= 4, "{s}");
        }
        // and the signature members are present
        let strs: Vec<String> = shapes.iter().map(|t| t.to_string()).collect();
        for want in ["A", "(seq A B)", "(alt A B)", "(star A)", "(opt B)"] {
            assert!(strs.iter().any(|s| s == want), "missing {want}");
        }
    }

    #[test]
    fn three_rounds_strictly_extend_two() {
        let two = rule_shapes(2, 4).force().len();
        let three = rule_shapes(3, 4).force().len();
        assert!(three > two, "{three} vs {two}");
    }

    #[test]
    fn four_rounds_strictly_extend_three_and_stay_bounded() {
        let three = rule_shapes(3, 5).force();
        let four = rule_shapes(4, 5).force();
        assert!(
            four.len() > three.len(),
            "{} vs {}",
            four.len(),
            three.len()
        );
        // everything ground and atom-bounded — the nightly budget's
        // shape space stays enumerable
        for s in &four {
            assert!(!s.contains_atom("X"), "{s}");
            assert!(s.measure(Metric::Atoms) <= 5, "{s}");
        }
    }

    #[test]
    fn layered_families_compile_satisfiable() {
        for shape in rule_shapes(2, 4).force() {
            let recipe = DtdRecipe {
                shape,
                layers: 3,
                recursive: false,
            };
            let (alpha, dtd) = recipe.compile();
            let sizes = min_sizes(&dtd, alpha.len());
            for s in alpha.syms() {
                assert!(
                    sizes.is_satisfiable(s),
                    "{}: {}",
                    recipe.to_sexp(),
                    alpha.name(s)
                );
            }
        }
    }

    #[test]
    fn recursive_families_compile_satisfiable_and_self_refer() {
        let recipe = DtdRecipe {
            shape: "(seq A (star B))".parse().unwrap(),
            layers: 2,
            recursive: true,
        };
        let (alpha, dtd) = recipe.compile();
        let sizes = min_sizes(&dtd, alpha.len());
        for s in alpha.syms() {
            assert!(sizes.is_satisfiable(s));
        }
        // l0's content model must accept a word mentioning l0 itself
        let l0 = alpha.get("l0").unwrap();
        let l1 = alpha.get("l1").unwrap();
        assert!(dtd.content_model(l0).accepts(&[l1, l0]));
        assert!(dtd.content_model(l0).accepts(&[])); // and is nullable
    }

    #[test]
    fn ann_patterns_compile_to_the_documented_pair_sets() {
        let (alpha, dtd) = DtdRecipe {
            shape: "(seq A B)".parse().unwrap(),
            layers: 3,
            recursive: false,
        }
        .compile();
        let n = alpha.len(); // 4 labels: l0..l3
        assert_eq!(n, 4);
        let l: Vec<Sym> = alpha.syms().collect();
        let none = AnnPattern::None.compile(&alpha, &dtd);
        assert_eq!(none.hidden_pairs(), 0);
        let run = AnnPattern::RootRun(2).compile(&alpha, &dtd);
        assert_eq!(run.hidden_pairs(), 2);
        assert!(!run.is_visible(l[0], l[1]));
        assert!(!run.is_visible(l[1], l[2]));
        let alt = AnnPattern::Alternate.compile(&alpha, &dtd);
        assert_eq!(alt.hidden_pairs(), 2 * n); // classes l1, l3 under every parent
        let leaves = AnnPattern::Leaves.compile(&alpha, &dtd);
        assert_eq!(leaves.hidden_pairs(), n); // only l3 is rule-less
        assert!(!leaves.is_visible(l[2], l[3]));
        let deep = AnnPattern::Deep.compile(&alpha, &dtd);
        assert_eq!(deep.hidden_pairs(), (n - 1) * n);
        assert!(deep.is_visible(l[0], l[1]));
        assert!(!deep.is_visible(l[1], l[2]));
        // mix 2 2: the root-run pairs (l0,l1), (l1,l2) plus class l2
        // under every parent — (l1,l2) is counted once
        let mix = AnnPattern::Mix(2, 2).compile(&alpha, &dtd);
        assert_eq!(mix.hidden_pairs(), 2 + n - 1);
        assert!(!mix.is_visible(l[0], l[1]));
        assert!(!mix.is_visible(l[3], l[2]));
        assert!(mix.is_visible(l[2], l[3]));
    }

    #[test]
    fn mix_pattern_roundtrips_and_rejects_zero_stride() {
        let mix = AnnPattern::Mix(2, 3);
        let s = mix.to_sexp();
        assert_eq!(s.to_string(), "(ann mix 2 3)");
        assert_eq!(AnnPattern::from_sexp(&s).unwrap(), mix);
        assert!(AnnPattern::from_sexp(&"(ann mix 1 0)".parse().unwrap()).is_err());
    }

    #[test]
    fn enumerated_recipes_hit_the_default_floor() {
        let recipes = enumerate_recipes(&EnumBudget::default());
        assert!(recipes.len() >= 200, "only {} recipes", recipes.len());
        // all distinct by construction
        let mut seen = std::collections::HashSet::new();
        for r in &recipes {
            assert!(seen.insert(r.to_string()), "duplicate {r}");
        }
        // and the three tentpole regimes are all represented
        for needle in ["rec)", "(ann deep)", "(alt"] {
            assert!(
                recipes.iter().any(|r| r.to_string().contains(needle)),
                "no recipe matches {needle:?}"
            );
        }
    }

    #[test]
    fn instances_compile_valid_and_deterministically() {
        let budget = EnumBudget::default();
        let recipes = enumerate_recipes(&budget);
        // spot-check a deterministic spread (full sweep lives in the
        // integration suite)
        for r in recipes.iter().step_by(37) {
            let a = instance_from_recipe(r).unwrap();
            let b = instance_from_recipe(r).unwrap();
            assert!(a.dtd.is_valid(&a.doc), "{r}");
            assert_eq!(a.doc, b.doc, "{r}");
            assert_eq!(a.update, b.update, "{r}");
            assert_eq!(a.name, r.to_string());
            xvu_edit::check_is_update_of(&a.update, &extract_view(&a.ann, &a.doc))
                .unwrap_or_else(|e| panic!("{r}: {e}"));
        }
    }

    #[test]
    fn sibling_recipes_get_distinct_documents() {
        let budget = EnumBudget::default();
        let a = instance_from_recipe(
            &"(instance (dtd (seq A B) 3 flat) (ann none) (doc 24 4 3607) (script nop))"
                .parse()
                .unwrap(),
        )
        .unwrap();
        let b = instance_from_recipe(
            &"(instance (dtd (star A) 3 flat) (ann none) (doc 24 4 3607) (script nop))"
                .parse()
                .unwrap(),
        )
        .unwrap();
        assert_ne!(a.doc, b.doc, "stable_hash must separate sibling recipes");
        let _ = budget;
    }

    #[test]
    fn regimes_classify_the_tentpole_families() {
        let mk = |s: &str| instance_from_recipe(&s.parse().unwrap()).unwrap();
        assert_eq!(
            mk("(instance (dtd (seq A (star B)) 3 rec) (ann none) (doc 24 4 7) (script nop))")
                .regime(),
            "deep-recursion"
        );
        assert_eq!(
            mk("(instance (dtd (alt A B) 3 flat) (ann none) (doc 24 4 7) (script nop))").regime(),
            "wide-alternation"
        );
        assert_eq!(
            mk("(instance (dtd (seq A B) 3 flat) (ann deep) (doc 24 4 7) (script nop))").regime(),
            "heavy-hiding"
        );
        assert_eq!(
            mk("(instance (dtd (seq A B) 3 flat) (ann none) (doc 24 4 7) (script nop))").regime(),
            "plain"
        );
    }

    #[test]
    fn dtd_from_rules_builds_named_schemas() {
        let mut alpha = Alphabet::new();
        let dtd = dtd_from_rules(
            &mut alpha,
            &[
                ("config", "(star host)"),
                ("host", "(seq name (seq (star iface) (star cred)))"),
                ("iface", "(star addr)"),
                ("cred", "(seq user secret)"),
            ],
        );
        let sizes = min_sizes(&dtd, alpha.len());
        for s in alpha.syms() {
            assert!(sizes.is_satisfiable(s), "{}", alpha.name(s));
        }
        assert!(dtd.has_rule(alpha.get("config").unwrap()));
        assert!(!dtd.has_rule(alpha.get("secret").unwrap()));
    }

    #[test]
    fn stable_hash_is_stable() {
        assert_eq!(stable_hash("abc"), stable_hash("abc"));
        assert_ne!(stable_hash("abc"), stable_hash("abd"));
        // pinned value: the replay contract depends on this never drifting
        assert_eq!(stable_hash(""), 0xcbf2_9ce4_8422_2325);
    }
}
