//! Small-edit churn streams: localized random view updates against an
//! evolving document.
//!
//! The repeated-update serving path (`xvu_propagate`'s `Session`) is
//! designed for the regime where a large document absorbs a long stream
//! of *small* updates — each touching a handful of nodes, each committed
//! before the next arrives. [`ChurnStream`] reproduces that regime: every
//! call to [`ChurnStream::next_update`] picks one random anchor node of
//! the current view and emits a valid view update whose operations all
//! happen among that anchor's children (insertions of small view-legal
//! fragments, deletions that keep the child word in the view language).
//!
//! Unlike [`crate::generate_update`], which scatters operations across
//! the whole document, churn updates are *localized* — the shape that
//! makes incremental propagation (dirty-region caching) observable — and
//! the stream is meant to be replayed against an evolving document:
//! generate against `session.document()`, propagate, commit, repeat.
//! Deterministic in the seed.

use crate::docgen::{generate_doc, DocGenConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xvu_dtd::{min_sizes, Dtd};
use xvu_edit::{EditOp, Script, UpdateBuilder};
use xvu_tree::{DocTree, NodeId, NodeIdGen, Sym};
use xvu_view::{derive_view_dtd, extract_view, Annotation};

/// Knobs for a [`ChurnStream`].
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Operations to aim for per update (all at one anchor).
    pub ops: usize,
    /// Depth of inserted fragments (small by design: churn is about many
    /// small edits, not bulk loads).
    pub insert_depth: usize,
    /// Probability that an operation is a deletion.
    pub delete_bias: f64,
    /// Anchor/operation attempts before settling for fewer operations.
    pub attempts: usize,
    /// Probability that a [`ChurnStream::next_event`] step is an idle gap
    /// ([`ChurnEvent::Idle`]) instead of an edit. `0.0` (the default)
    /// reproduces the pure-edit stream.
    pub idle_bias: f64,
    /// Upper bound on the length of one idle gap, in abstract ticks
    /// (drawn uniformly from `1..=max_idle_ticks`).
    pub max_idle_ticks: u64,
    /// Probability that a [`ChurnStream::next_event`] step closes the
    /// client session ([`ChurnEvent::Close`]); the next step reopens it
    /// ([`ChurnEvent::Reopen`]). `0.0` (the default) never closes.
    pub close_bias: f64,
}

impl Default for ChurnConfig {
    fn default() -> ChurnConfig {
        ChurnConfig {
            ops: 2,
            insert_depth: 1,
            delete_bias: 0.35,
            attempts: 40,
            idle_bias: 0.0,
            max_idle_ticks: 4,
            close_bias: 0.0,
        }
    }
}

/// One step of a full client lifecycle, emitted by
/// [`ChurnStream::next_event`]: sessions alternate edits with think-time
/// idle gaps and occasionally close and reopen — the ROADMAP's
/// "interleaved open/churn/idle/close" shape in one stream.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnEvent {
    /// A localized view update against the current document (exactly what
    /// [`ChurnStream::next_update`] emits).
    Edit(Script),
    /// The client thinks for the given number of abstract ticks; the
    /// document does not change.
    Idle(u64),
    /// The client closes its session (dropping any serving-side state);
    /// the committed document persists.
    Close,
    /// The client reopens a session on the same document. Emitted as the
    /// first event after a [`ChurnEvent::Close`], never otherwise.
    Reopen,
}

/// A deterministic stream of localized small view updates over a fixed
/// `(D, A)` pair. See the module docs for the intended replay loop.
#[derive(Clone, Debug)]
pub struct ChurnStream {
    ann: Annotation,
    view_dtd: Dtd,
    insertable: Vec<Sym>,
    alphabet_len: usize,
    cfg: ChurnConfig,
    rng: StdRng,
    closed: bool,
}

impl ChurnStream {
    /// Prepares a stream for `(dtd, ann)`: derives the view DTD once and
    /// precomputes which labels can root a view-legal inserted fragment.
    pub fn new(
        dtd: &Dtd,
        ann: &Annotation,
        alphabet_len: usize,
        cfg: ChurnConfig,
        seed: u64,
    ) -> ChurnStream {
        let view_dtd = derive_view_dtd(dtd, ann, alphabet_len);
        let view_sizes = min_sizes(&view_dtd, alphabet_len);
        let insertable: Vec<Sym> = (0..alphabet_len)
            .map(Sym::from_index)
            .filter(|&s| view_sizes.is_satisfiable(s))
            .collect();
        ChurnStream {
            ann: ann.clone(),
            view_dtd,
            insertable,
            alphabet_len,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            closed: false,
        }
    }

    /// Prepares a stream driving an [enumerated
    /// family](crate::enumo::EnumeratedInstance): the instance's `(D, A)`
    /// pair, with the recipe's stable hash folded into the seed so
    /// sibling families churn differently even under one suite-level
    /// seed. Replay loop and determinism are exactly as for
    /// [`ChurnStream::new`].
    pub fn for_enumerated(
        inst: &crate::enumo::EnumeratedInstance,
        cfg: ChurnConfig,
        seed: u64,
    ) -> ChurnStream {
        ChurnStream::new(
            &inst.dtd,
            &inst.ann,
            inst.alpha.len(),
            cfg,
            seed ^ crate::enumo::stable_hash(&inst.name),
        )
    }

    /// Emits the next **lifecycle event** of a full client session:
    /// mostly edits (see [`ChurnStream::next_update`]), interleaved with
    /// idle gaps with probability [`ChurnConfig::idle_bias`] and
    /// close/reopen cycles with probability [`ChurnConfig::close_bias`].
    /// After a [`ChurnEvent::Close`] the next event is always
    /// [`ChurnEvent::Reopen`] — the stream models one client's whole
    /// open → churn → idle → close history over one document.
    ///
    /// With the default configuration (both biases `0.0`) every event is
    /// an edit, so `next_event` degenerates to `next_update`.
    /// Deterministic in the stream's seed, like everything else here.
    pub fn next_event(&mut self, doc: &DocTree, gen: &mut NodeIdGen) -> ChurnEvent {
        if self.closed {
            self.closed = false;
            return ChurnEvent::Reopen;
        }
        // zero-bias draws are skipped entirely (not just always-false) so
        // the default configuration consumes exactly the same RNG stream
        // as `next_update` — next_event is then a drop-in replacement
        if self.cfg.close_bias > 0.0 && self.rng.random_bool(self.cfg.close_bias) {
            self.closed = true;
            return ChurnEvent::Close;
        }
        if self.cfg.idle_bias > 0.0 && self.rng.random_bool(self.cfg.idle_bias) {
            let ticks = self.rng.random_range(1..=self.cfg.max_idle_ticks.max(1));
            return ChurnEvent::Idle(ticks);
        }
        ChurnEvent::Edit(self.next_update(doc, gen))
    }

    /// Emits the next update of the stream against `doc`'s view: up to
    /// `cfg.ops` operations, all among one randomly chosen anchor node's
    /// children. Fresh identifiers come from `gen`, which callers should
    /// position past the serving session's high-water mark
    /// (`session.id_gen()`). Always returns a well-formed view update —
    /// the identity update if the view language leaves no room anywhere.
    pub fn next_update(&mut self, doc: &DocTree, gen: &mut NodeIdGen) -> Script {
        let view = extract_view(&self.ann, doc);
        let mut builder = UpdateBuilder::new(&view);
        let anchors: Vec<NodeId> = builder.script().preorder().collect();
        let a_off = self.rng.random_range(0..anchors.len());
        for a_idx in 0..anchors.len() {
            let anchor = anchors[(a_off + a_idx) % anchors.len()];
            let mut committed = 0usize;
            let mut attempts_left = self.cfg.ops * self.cfg.attempts;
            while committed < self.cfg.ops && attempts_left > 0 {
                attempts_left -= 1;
                let ok = if self.rng.random_bool(self.cfg.delete_bias) {
                    self.try_delete_at(&mut builder, anchor)
                } else {
                    self.try_insert_at(&mut builder, anchor, gen)
                };
                if ok {
                    committed += 1;
                }
            }
            if committed > 0 {
                break; // this anchor took the whole update; stay local
            }
        }
        builder.finish()
    }

    /// Attempts to delete one child of `anchor` such that the output
    /// child word stays in the view language.
    fn try_delete_at(&mut self, builder: &mut UpdateBuilder, anchor: NodeId) -> bool {
        let script = builder.script();
        let candidates: Vec<NodeId> = script
            .children(anchor)
            .iter()
            .copied()
            .filter(|&c| script.label(c).op != EditOp::Del)
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let anchor_label = script.label(anchor).label;
        let offset = self.rng.random_range(0..candidates.len());
        for idx in 0..candidates.len() {
            let victim = candidates[(offset + idx) % candidates.len()];
            let word: Vec<Sym> = script
                .children(anchor)
                .iter()
                .filter(|&&c| c != victim && script.label(c).op != EditOp::Del)
                .map(|&c| script.label(c).label)
                .collect();
            if self.view_dtd.content_model(anchor_label).accepts(&word) {
                return builder.delete(victim).is_ok();
            }
        }
        false
    }

    /// Attempts to insert one small view-legal fragment among `anchor`'s
    /// children.
    fn try_insert_at(
        &mut self,
        builder: &mut UpdateBuilder,
        anchor: NodeId,
        gen: &mut NodeIdGen,
    ) -> bool {
        if self.insertable.is_empty() {
            return false;
        }
        let script = builder.script();
        let anchor_label = script.label(anchor).label;
        let arity = script.children(anchor).len();
        let pos_off = self.rng.random_range(0..=arity);
        for pos_idx in 0..=arity {
            let pos = (pos_off + pos_idx) % (arity + 1);
            let y_off = self.rng.random_range(0..self.insertable.len());
            for y_idx in 0..self.insertable.len() {
                let y = self.insertable[(y_off + y_idx) % self.insertable.len()];
                // hypothetical output word of the anchor
                let mut word: Vec<Sym> = Vec::with_capacity(arity + 1);
                let mut out_pos = 0usize;
                for (i, &c) in script.children(anchor).iter().enumerate() {
                    if i == pos {
                        out_pos = word.len();
                    }
                    if script.label(c).op != EditOp::Del {
                        word.push(script.label(c).label);
                    }
                }
                if pos == arity {
                    out_pos = word.len();
                }
                word.insert(out_pos, y);
                if !self.view_dtd.content_model(anchor_label).accepts(&word) {
                    continue;
                }
                let frag_cfg = DocGenConfig {
                    max_depth: self.cfg.insert_depth,
                    max_children: 3,
                    max_nodes: 20,
                    ..DocGenConfig::default()
                };
                let frag_seed = self.rng.random_range(0..u64::MAX);
                let fragment = generate_doc(
                    &self.view_dtd,
                    self.alphabet_len,
                    y,
                    &frag_cfg,
                    frag_seed,
                    gen,
                );
                return builder.insert(anchor, pos, fragment).is_ok();
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{hospital, hospital_doc, Hospital};
    use xvu_edit::{check_is_update_of, cost, input_tree, output_tree};

    #[test]
    fn churn_updates_are_valid_localized_view_updates() {
        let Hospital { alpha, dtd, ann } = hospital();
        let h = Hospital {
            alpha: alpha.clone(),
            dtd: dtd.clone(),
            ann: ann.clone(),
        };
        let mut gen = NodeIdGen::new();
        let mut doc = hospital_doc(&h, 3, 8, &mut gen);
        let mut stream = ChurnStream::new(&dtd, &ann, alpha.len(), ChurnConfig::default(), 7);
        let mut nontrivial = 0;
        for step in 0..12 {
            let view = extract_view(&ann, &doc);
            let u = stream.next_update(&doc, &mut gen);
            check_is_update_of(&u, &view).unwrap();
            assert_eq!(input_tree(&u).unwrap(), view, "step {step}");
            let out = output_tree(&u).unwrap();
            let view_dtd = derive_view_dtd(&dtd, &ann, alpha.len());
            view_dtd.validate(&out).unwrap();
            if cost(&u) > 0 {
                nontrivial += 1;
            }
            // churn is *localized*: all non-Nop nodes share one parent (or
            // are that parent's inserted descendants)
            let mut touched_parents: Vec<NodeId> = u
                .preorder()
                .filter(|&n| u.label(n).op != EditOp::Nop)
                .filter_map(|n| u.parent(n))
                .filter(|&p| u.label(p).op == EditOp::Nop)
                .collect();
            touched_parents.dedup();
            assert!(touched_parents.len() <= 1, "step {step}: not localized");
            // evolve the document on the view side: churn replays against
            // whatever the previous step produced
            doc = apply_view_edit(&doc, &ann, &u);
        }
        assert!(nontrivial >= 8, "only {nontrivial}/12 updates non-trivial");
    }

    /// Applies a view update directly to the source's visible part (good
    /// enough to evolve the document for generator tests — propagation
    /// semantics are exercised in `xvu_propagate`'s own suites).
    fn apply_view_edit(doc: &DocTree, ann: &Annotation, u: &Script) -> DocTree {
        let mut out = doc.clone();
        let mut stack = vec![u.root()];
        while let Some(n) = stack.pop() {
            for &c in u.children(n) {
                match u.label(c).op {
                    EditOp::Nop => stack.push(c),
                    EditOp::Del => {
                        out.detach_subtree(c).unwrap();
                    }
                    EditOp::Ins => {
                        // append at the parent's end: positions among
                        // hidden siblings are not meaningful here, and the
                        // generator tests only need a valid evolving doc
                        let frag = u.subtree(c).map_labels(|_, l| l.label);
                        let arity = out.children(n).len();
                        out.attach_subtree(n, arity, frag).unwrap();
                    }
                }
            }
        }
        debug_assert!(extract_view(ann, &out).size() > 0);
        out
    }

    #[test]
    fn lifecycle_events_cover_open_churn_idle_close() {
        let Hospital { alpha, dtd, ann } = hospital();
        let h = Hospital {
            alpha: alpha.clone(),
            dtd: dtd.clone(),
            ann: ann.clone(),
        };
        let mut gen = NodeIdGen::new();
        let doc = hospital_doc(&h, 2, 5, &mut gen);
        let cfg = ChurnConfig {
            idle_bias: 0.3,
            close_bias: 0.15,
            max_idle_ticks: 3,
            ..ChurnConfig::default()
        };
        let mut stream = ChurnStream::new(&dtd, &ann, alpha.len(), cfg, 11);
        let (mut edits, mut idles, mut closes, mut reopens) = (0, 0, 0, 0);
        let mut closed = false;
        for _ in 0..120 {
            let ev = stream.next_event(&doc, &mut gen);
            match ev {
                ChurnEvent::Edit(u) => {
                    assert!(!closed, "edit while closed");
                    check_is_update_of(&u, &extract_view(&ann, &doc)).unwrap();
                    edits += 1;
                }
                ChurnEvent::Idle(t) => {
                    assert!(!closed, "idle while closed");
                    assert!((1..=3).contains(&t), "idle ticks out of range: {t}");
                    idles += 1;
                }
                ChurnEvent::Close => {
                    assert!(!closed, "double close");
                    closed = true;
                    closes += 1;
                }
                ChurnEvent::Reopen => {
                    assert!(closed, "reopen without close");
                    closed = false;
                    reopens += 1;
                }
            }
        }
        assert!(edits > 0 && idles > 0 && closes > 0 && reopens > 0);
        // every close is followed (eventually) by exactly one reopen
        assert!(
            closes - reopens <= 1,
            "closes {closes} vs reopens {reopens}"
        );
    }

    #[test]
    fn default_config_next_event_is_pure_edits() {
        let Hospital { alpha, dtd, ann } = hospital();
        let h = Hospital {
            alpha: alpha.clone(),
            dtd: dtd.clone(),
            ann: ann.clone(),
        };
        let mut gen = NodeIdGen::new();
        let doc = hospital_doc(&h, 2, 4, &mut gen);
        // same seed: next_event with default biases replays next_update
        let mut by_event = ChurnStream::new(&dtd, &ann, alpha.len(), ChurnConfig::default(), 5);
        let mut by_update = ChurnStream::new(&dtd, &ann, alpha.len(), ChurnConfig::default(), 5);
        let mut g1 = gen.clone();
        let mut g2 = gen.clone();
        for _ in 0..6 {
            match by_event.next_event(&doc, &mut g1) {
                ChurnEvent::Edit(u) => assert_eq!(u, by_update.next_update(&doc, &mut g2)),
                other => panic!("default config emitted {other:?}"),
            }
        }
    }

    #[test]
    fn churn_is_deterministic_in_the_seed() {
        let Hospital { alpha, dtd, ann } = hospital();
        let h = Hospital {
            alpha: alpha.clone(),
            dtd: dtd.clone(),
            ann: ann.clone(),
        };
        let mut gen = NodeIdGen::new();
        let doc = hospital_doc(&h, 2, 4, &mut gen);
        let mut s1 = ChurnStream::new(&dtd, &ann, alpha.len(), ChurnConfig::default(), 99);
        let mut s2 = ChurnStream::new(&dtd, &ann, alpha.len(), ChurnConfig::default(), 99);
        let mut g1 = gen.clone();
        let mut g2 = gen.clone();
        for _ in 0..5 {
            assert_eq!(s1.next_update(&doc, &mut g1), s2.next_update(&doc, &mut g2));
        }
        let mut s3 = ChurnStream::new(&dtd, &ann, alpha.len(), ChurnConfig::default(), 100);
        let mut g3 = gen.clone();
        let differs = (0..5).any(|_| {
            s3.next_update(&doc, &mut g3) != {
                let mut g = gen.clone();
                let mut s = ChurnStream::new(&dtd, &ann, alpha.len(), ChurnConfig::default(), 99);
                s.next_update(&doc, &mut g)
            }
        });
        assert!(differs, "different seeds should diverge");
    }
}
