//! Node identifiers and tree nodes.

use std::fmt;

/// A persistent, globally unique node identifier.
///
/// Identifiers carry the correspondence between the nodes of a source
/// document, its view, and the input/output trees of editing scripts; tree
/// equality in the paper is identifier-sensitive. Identifiers are plain
/// `u64` values allocated from a [`NodeIdGen`]; they are *not* required to
/// form a prefix-closed set (the paper explicitly drops that convention
/// because updates insert and delete nodes).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u64);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A monotone allocator of fresh [`NodeId`]s.
///
/// A single generator should be shared across every tree participating in a
/// view-update instance so that "fresh node" (used when materialising
/// invisible subtrees) genuinely means *not used anywhere else*.
#[derive(Clone, Debug, Default)]
pub struct NodeIdGen {
    next: u64,
}

impl NodeIdGen {
    /// A generator starting at identifier `0`.
    pub fn new() -> NodeIdGen {
        NodeIdGen { next: 0 }
    }

    /// A generator whose first fresh identifier is `start`.
    pub fn starting_at(start: u64) -> NodeIdGen {
        NodeIdGen { next: start }
    }

    /// Allocates a fresh identifier.
    pub fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next = self
            .next
            .checked_add(1)
            .expect("node identifier space exhausted");
        id
    }

    /// Ensures all future identifiers are strictly greater than `id`.
    ///
    /// Used after constructing trees with explicit identifiers (paper
    /// fixtures, parsed `label#id` terms) so fresh nodes never collide.
    pub fn bump_past(&mut self, id: NodeId) {
        if id.0 >= self.next {
            self.next = id.0 + 1;
        }
    }

    /// The next identifier that would be allocated (without allocating it).
    pub fn peek(&self) -> NodeId {
        NodeId(self.next)
    }

    /// Advances this generator to at least `other`'s frontier, so every
    /// future identifier is fresh with respect to *both* histories.
    ///
    /// Used when a derived generator (e.g. one rebuilt from a new document)
    /// must stay monotone with respect to an older generator whose
    /// identifiers may no longer appear in any tree — identifiers are never
    /// recycled, even for deleted nodes.
    pub fn merge(&mut self, other: &NodeIdGen) {
        self.next = self.next.max(other.next);
    }
}

/// A single tree node: identifier, label, parent link, ordered children.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node<L> {
    /// The node's persistent identifier.
    pub id: NodeId,
    /// The node's label.
    pub label: L,
    /// Parent identifier; `None` for the root.
    pub parent: Option<NodeId>,
    /// Ordered children (the `<_t` sibling order).
    pub children: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_distinct_and_increasing() {
        let mut g = NodeIdGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn bump_past_prevents_collisions() {
        let mut g = NodeIdGen::new();
        g.bump_past(NodeId(41));
        assert_eq!(g.fresh(), NodeId(42));
        // bump below the current frontier is a no-op
        g.bump_past(NodeId(3));
        assert_eq!(g.fresh(), NodeId(43));
    }

    #[test]
    fn starting_at_honours_start() {
        let mut g = NodeIdGen::starting_at(100);
        assert_eq!(g.fresh(), NodeId(100));
    }

    #[test]
    fn merge_takes_the_later_frontier() {
        let mut g = NodeIdGen::starting_at(10);
        g.merge(&NodeIdGen::starting_at(100));
        assert_eq!(g.fresh(), NodeId(100));
        // merging an older generator is a no-op
        g.merge(&NodeIdGen::starting_at(5));
        assert_eq!(g.fresh(), NodeId(101));
        // the empty generator never rewinds anything
        g.merge(&NodeIdGen::new());
        assert_eq!(g.fresh(), NodeId(102));
    }

    #[test]
    fn peek_does_not_allocate() {
        let mut g = NodeIdGen::new();
        assert_eq!(g.peek(), NodeId(0));
        assert_eq!(g.peek(), NodeId(0));
        assert_eq!(g.fresh(), NodeId(0));
        assert_eq!(g.peek(), NodeId(1));
    }
}
