//! Dense arena positions and slot-indexed side tables.
//!
//! A [`Tree`](crate::Tree) stores its nodes in a contiguous slab; a
//! [`Slot`] is a position in that slab. Slots exist so that per-node side
//! tables — the dynamic-programming tables of the propagation algorithm —
//! can be plain `Vec`s instead of `HashMap<NodeId, _>`s: resolve an
//! identifier to a slot once, then every table access is an array index.
//!
//! * [`SlotIndex`] maps persistent [`NodeId`]s to slots. Identifiers are
//!   allocated monotonically from a [`crate::NodeIdGen`], so in practice
//!   they are small and dense; the index exploits this with a direct
//!   `Vec`-backed table and falls back to a hash map only for outlier
//!   identifiers far beyond the populated range.
//! * [`SlotMap<T>`] is a `Vec<Option<T>>` keyed by slot.
//! * [`SlotSet`] is a bitset keyed by slot.
//!
//! **Stability:** a node's slot is stable while the tree is only *read* or
//! *grown* (`add_child*`, `attach_subtree`). Removing nodes
//! (`detach_subtree`) may relocate other nodes' slots; side tables built
//! before a removal must not be used after it. [`NodeId`]s, by contrast,
//! are persistent across all mutations — they are the identity, slots are
//! the address.

use crate::node::NodeId;
use std::collections::HashMap;
use std::fmt;

/// A position in a tree's node slab.
///
/// Slots are dense (`0..tree.size()`), suitable for direct `Vec` indexing,
/// and only meaningful for the tree that handed them out — and only until
/// that tree's next node removal. Obtain one with
/// [`Tree::slot`](crate::Tree::slot).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot(u32);

impl Slot {
    /// Builds a slot from a raw index.
    #[inline]
    pub fn new(ix: u32) -> Slot {
        Slot(ix)
    }

    /// The dense index of this slot.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// Sentinel for a vacant entry in the dense table.
const VACANT: u32 = u32::MAX;

/// A `NodeId → Slot` index: dense `Vec` for identifiers near the populated
/// range, hash-map fallback for outliers.
///
/// Cloneable, so consumers that outlive a borrow of the tree (e.g. a
/// propagation forest keyed by the update script's nodes) can snapshot the
/// resolution and keep O(1) lookups without re-hashing identifiers.
#[derive(Clone, Debug, Default)]
pub struct SlotIndex {
    /// `dense[id.0] = slot` for identifiers below the dense horizon
    /// (`VACANT` when absent).
    dense: Vec<u32>,
    /// Outlier identifiers (far beyond the populated range).
    sparse: HashMap<u64, u32>,
    /// Number of entries.
    len: usize,
}

impl SlotIndex {
    /// An empty index.
    pub fn new() -> SlotIndex {
        SlotIndex::default()
    }

    /// Number of identifiers indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How far the dense table may grow for the current entry count:
    /// generously past the populated range, but never unboundedly beyond
    /// it, so one adversarial huge identifier cannot balloon memory.
    #[inline]
    fn dense_horizon(&self) -> u64 {
        (self.len as u64 + 1).saturating_mul(4).max(1024)
    }

    /// Whether `raw` addresses the dense table. Compared in `u64` *before*
    /// any `usize` cast: on 32-bit targets a truncating cast would alias
    /// huge identifiers onto small ones.
    #[inline]
    fn in_dense(&self, raw: u64) -> bool {
        raw < self.dense.len() as u64
    }

    /// The slot of `id`, if indexed.
    #[inline]
    pub fn slot(&self, id: NodeId) -> Option<Slot> {
        let raw = id.0;
        // A dense entry (even a vacant one) is authoritative: ids inside
        // the dense range are never stored sparsely.
        if self.in_dense(raw) {
            let s = self.dense[raw as usize];
            return (s != VACANT).then_some(Slot(s));
        }
        if self.sparse.is_empty() {
            return None;
        }
        self.sparse.get(&raw).copied().map(Slot)
    }

    /// Whether `id` is indexed.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.slot(id).is_some()
    }

    /// Inserts or updates the slot of `id`.
    pub fn insert(&mut self, id: NodeId, slot: Slot) {
        let raw = id.0;
        if self.in_dense(raw) {
            if self.dense[raw as usize] == VACANT {
                self.len += 1;
            }
            self.dense[raw as usize] = slot.0;
        } else if raw < self.dense_horizon() {
            let was_sparse = self.sparse.remove(&raw).is_some();
            self.dense.resize(raw as usize + 1, VACANT);
            // Sparse entries are only for ids *beyond* the dense range;
            // growing the range must pull the newly covered ones in, or
            // the (vacant) dense entries would shadow them.
            if !self.sparse.is_empty() {
                let limit = self.dense.len() as u64;
                let covered: Vec<u64> = self
                    .sparse
                    .keys()
                    .filter(|&&k| k < limit)
                    .copied()
                    .collect();
                for k in covered {
                    let v = self.sparse.remove(&k).expect("key just listed");
                    self.dense[k as usize] = v;
                }
            }
            self.dense[raw as usize] = slot.0;
            if !was_sparse {
                self.len += 1;
            }
        } else if self.sparse.insert(raw, slot.0).is_none() {
            self.len += 1;
        }
    }

    /// The dense table as stored (`VACANT` = `u32::MAX` for holes) — the
    /// raw image the snapshot encoder copies out verbatim.
    pub(crate) fn dense_raw(&self) -> &[u32] {
        &self.dense
    }

    /// The sparse outlier entries as stored.
    pub(crate) fn sparse_raw(&self) -> &HashMap<u64, u32> {
        &self.sparse
    }

    /// Rebuilds an index from a decoded image. `len` must count exactly
    /// the non-vacant dense entries plus the sparse entries, and sparse
    /// keys must lie beyond the dense range (the dense table is
    /// authoritative for identifiers it covers); the snapshot decoder
    /// enforces both before calling and validates the result against the
    /// arena afterwards.
    pub(crate) fn from_raw_parts(
        dense: Vec<u32>,
        sparse: HashMap<u64, u32>,
        len: usize,
    ) -> SlotIndex {
        SlotIndex { dense, sparse, len }
    }

    /// Removes `id`, returning its slot.
    pub fn remove(&mut self, id: NodeId) -> Option<Slot> {
        let raw = id.0;
        if self.in_dense(raw) {
            let s = &mut self.dense[raw as usize];
            if *s != VACANT {
                let old = *s;
                *s = VACANT;
                self.len -= 1;
                return Some(Slot(old));
            }
            return None;
        }
        let removed = self.sparse.remove(&raw).map(Slot);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }
}

/// A side table `Slot → T`, backed by a plain `Vec`.
///
/// The dense replacement for `HashMap<NodeId, T>` throughout the
/// propagation stack: resolve identifiers to slots once, then every access
/// is an array index. Missing entries cost one `Option` discriminant, not
/// a hash probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotMap<T> {
    data: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for SlotMap<T> {
    fn default() -> SlotMap<T> {
        SlotMap {
            data: Vec::new(),
            len: 0,
        }
    }
}

impl<T> SlotMap<T> {
    /// An empty table.
    pub fn new() -> SlotMap<T> {
        SlotMap::default()
    }

    /// An empty table pre-sized for slots `0..n` (typically
    /// `tree.size()`), so inserts never reallocate.
    pub fn with_capacity(n: usize) -> SlotMap<T> {
        let mut data = Vec::new();
        data.resize_with(n, || None);
        SlotMap { data, len: 0 }
    }

    /// Number of occupied entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry is occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entry at `slot`, if occupied.
    #[inline]
    pub fn get(&self, slot: Slot) -> Option<&T> {
        self.data.get(slot.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the entry at `slot`.
    #[inline]
    pub fn get_mut(&mut self, slot: Slot) -> Option<&mut T> {
        self.data.get_mut(slot.index()).and_then(Option::as_mut)
    }

    /// Whether `slot` is occupied.
    #[inline]
    pub fn contains(&self, slot: Slot) -> bool {
        self.get(slot).is_some()
    }

    /// Inserts a value, returning the previous occupant.
    pub fn insert(&mut self, slot: Slot, value: T) -> Option<T> {
        if slot.index() >= self.data.len() {
            self.data.resize_with(slot.index() + 1, || None);
        }
        let old = self.data[slot.index()].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the entry at `slot`.
    pub fn remove(&mut self, slot: Slot) -> Option<T> {
        let old = self.data.get_mut(slot.index()).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Iterates over occupied entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Slot, &T)> {
        self.data
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (Slot(i as u32), v)))
    }

    /// Iterates over occupied values in slot order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.data.iter().filter_map(Option::as_ref)
    }
}

impl<T> std::ops::Index<Slot> for SlotMap<T> {
    type Output = T;

    /// # Panics
    /// Panics if `slot` is unoccupied.
    #[inline]
    fn index(&self, slot: Slot) -> &T {
        self.get(slot)
            .unwrap_or_else(|| panic!("{slot:?} unoccupied in side table"))
    }
}

/// A set of slots, backed by a bitset.
///
/// The dense replacement for `HashSet<NodeId>` on the propagation hot
/// path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlotSet {
    bits: Vec<u64>,
    len: usize,
}

impl SlotSet {
    /// An empty set.
    pub fn new() -> SlotSet {
        SlotSet::default()
    }

    /// An empty set pre-sized for slots `0..n`.
    pub fn with_capacity(n: usize) -> SlotSet {
        SlotSet {
            bits: vec![0; n.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of slots in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `slot`; returns whether it was newly added.
    pub fn insert(&mut self, slot: Slot) -> bool {
        let (w, b) = (slot.index() / 64, slot.index() % 64);
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        let fresh = self.bits[w] & mask == 0;
        self.bits[w] |= mask;
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes `slot`; returns whether it was present.
    pub fn remove(&mut self, slot: Slot) -> bool {
        let (w, b) = (slot.index() / 64, slot.index() % 64);
        let Some(word) = self.bits.get_mut(w) else {
            return false;
        };
        let mask = 1u64 << b;
        let present = *word & mask != 0;
        *word &= !mask;
        if present {
            self.len -= 1;
        }
        present
    }

    /// Whether `slot` is in the set.
    #[inline]
    pub fn contains(&self, slot: Slot) -> bool {
        let (w, b) = (slot.index() / 64, slot.index() % 64);
        self.bits.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Iterates over the slots in the set, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Slot> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1 << b) != 0)
                .map(move |b| Slot((w * 64 + b) as u32))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_dense_round_trip() {
        let mut ix = SlotIndex::new();
        for i in 0..100u64 {
            ix.insert(NodeId(i), Slot(i as u32 * 2));
        }
        assert_eq!(ix.len(), 100);
        for i in 0..100u64 {
            assert_eq!(ix.slot(NodeId(i)), Some(Slot(i as u32 * 2)));
        }
        assert_eq!(ix.slot(NodeId(100)), None);
        assert_eq!(ix.remove(NodeId(50)), Some(Slot(100)));
        assert_eq!(ix.slot(NodeId(50)), None);
        assert_eq!(ix.len(), 99);
    }

    #[test]
    fn index_outliers_fall_back_to_sparse() {
        let mut ix = SlotIndex::new();
        ix.insert(NodeId(0), Slot(0));
        // far beyond any dense horizon
        ix.insert(NodeId(u64::MAX - 1), Slot(1));
        assert_eq!(ix.slot(NodeId(u64::MAX - 1)), Some(Slot(1)));
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.remove(NodeId(u64::MAX - 1)), Some(Slot(1)));
        assert_eq!(ix.len(), 1);
        // memory stays bounded: the dense table never chased the outlier
        assert!(ix.dense.len() <= 1024);
    }

    #[test]
    fn index_growth_migrates_covered_sparse_entries() {
        // Regression: an id lands in the sparse fallback while the dense
        // range is small; once enough inserts grow the dense range over
        // it, lookups must still find it.
        let mut ix = SlotIndex::new();
        ix.insert(NodeId(2050), Slot(0)); // beyond the initial horizon
        for i in 0..600u64 {
            ix.insert(NodeId(i), Slot(i as u32 + 1));
        }
        // horizon now well past 2050; insert something near it
        ix.insert(NodeId(2049), Slot(9999));
        assert_eq!(ix.slot(NodeId(2050)), Some(Slot(0)));
        assert_eq!(ix.slot(NodeId(2049)), Some(Slot(9999)));
        assert_eq!(ix.len(), 602);
        assert_eq!(ix.remove(NodeId(2050)), Some(Slot(0)));
        assert_eq!(ix.len(), 601);
    }

    #[test]
    fn index_update_in_place() {
        let mut ix = SlotIndex::new();
        ix.insert(NodeId(7), Slot(3));
        ix.insert(NodeId(7), Slot(9));
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.slot(NodeId(7)), Some(Slot(9)));
    }

    #[test]
    fn slot_map_basics() {
        let mut m: SlotMap<&str> = SlotMap::with_capacity(4);
        assert!(m.is_empty());
        assert_eq!(m.insert(Slot(2), "two"), None);
        assert_eq!(m.insert(Slot(2), "deux"), Some("two"));
        m.insert(Slot(9), "nine"); // beyond capacity: grows
        assert_eq!(m.len(), 2);
        assert_eq!(m[Slot(2)], "deux");
        assert_eq!(m.get(Slot(3)), None);
        assert!(m.contains(Slot(9)));
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(Slot(2), &"deux"), (Slot(9), &"nine")]);
        assert_eq!(m.remove(Slot(2)), Some("deux"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unoccupied")]
    fn slot_map_index_panics_on_vacant() {
        let m: SlotMap<u32> = SlotMap::new();
        let _ = m[Slot(0)];
    }

    #[test]
    fn slot_set_basics() {
        let mut s = SlotSet::with_capacity(10);
        assert!(s.insert(Slot(3)));
        assert!(!s.insert(Slot(3)));
        assert!(s.insert(Slot(130))); // beyond capacity: grows
        assert_eq!(s.len(), 2);
        assert!(s.contains(Slot(3)));
        assert!(!s.contains(Slot(4)));
        assert!(!s.contains(Slot(4000)));
        let all: Vec<_> = s.iter().collect();
        assert_eq!(all, vec![Slot(3), Slot(130)]);
        assert!(s.remove(Slot(3)));
        assert!(!s.remove(Slot(3)));
        assert_eq!(s.len(), 1);
    }
}
