//! Ordered, labeled trees with persistent node identifiers.
//!
//! This crate implements the tree data model of Section 2 of
//! *"The View Update Problem for XML"* (Staworko, Boneva, Groz; EDBT/ICDT
//! Workshops 2010). A tree over an alphabet `Σ` is a structure
//! `t = (Σ, N_t, ↓_t, <_t, λ_t)` where `N_t` is a finite set of **node
//! identifiers**, `↓_t` the descendant relation, `<_t` the following-sibling
//! relation, and `λ_t : N_t → Σ` the labeling.
//!
//! Two properties of this model drive the design:
//!
//! * **Node identifiers are persistent and global.** Identifiers are the
//!   bridge between a source document, its view, and the trees produced by
//!   editing scripts; equality of trees is identifier-sensitive and must not
//!   be confused with isomorphism. [`NodeId`]s are therefore explicit values
//!   allocated from a [`NodeIdGen`], never implicit array indices.
//! * **Trees are ordered and ranked-free.** Every node carries an ordered
//!   sequence of children of arbitrary length; sibling order is semantically
//!   meaningful (it is what DTD content models constrain).
//!
//! # Storage: arena + slots + persistent identifiers
//!
//! Persistent identifiers are the *identity* of a node; they are **not**
//! its address. Nodes are stored in a contiguous arena (`Vec<Node<L>>`)
//! addressed by dense [`Slot`]s, with a [`SlotIndex`] resolving
//! identifiers to slots — a direct `Vec`-backed table for the (monotone,
//! near-dense) identifiers a [`NodeIdGen`] mints, with a hash fallback
//! only for pathological outliers. Algorithms that keep per-node state
//! (the propagation stack's dynamic-programming tables) resolve ids to
//! slots once and then use [`SlotMap`]/[`SlotSet`] side tables: plain
//! `Vec`/bitset indexing instead of `HashMap<NodeId, _>` probes.
//!
//! Amortized per-step cost of the core operations:
//!
//! | operation | cost |
//! |-----------|------|
//! | [`Tree::node`] / [`Tree::label`] / [`Tree::children`] / [`Tree::parent`] (by id) | O(1) |
//! | [`Tree::node_at`] / [`Tree::id_at`] (by slot) | O(1), no id resolution |
//! | [`Tree::slot`] / [`Tree::contains`] | O(1) |
//! | [`Tree::add_child`] / [`Tree::add_child_with_id`] | O(1) amortized |
//! | [`Tree::preorder`] / [`Tree::postorder`] (per step) | O(1) amortized |
//! | [`Tree::attach_subtree`] | O(&#124;sub&#124;) |
//! | [`Tree::detach_subtree`] | O(&#124;sub&#124;) |
//! | [`SlotMap`]/[`SlotSet`] access | O(1) |
//!
//! Slots are stable while the tree only grows; removing nodes relocates
//! slots (never identifiers) — see [`slot`] for the exact contract.
//!
//! # Change tracking
//!
//! Every tree carries a mutation clock ([`Tree::epoch`]) and per-slot
//! version stamps ([`Tree::version`]) bumped by structural mutations, plus
//! an opt-in dirty journal ([`Tree::set_change_tracking`]) recording the
//! nodes whose child word changed. Consumers holding per-subtree caches
//! (the propagation engine's session cache) drain the journal —
//! [`Tree::take_changed_parents`] / [`Tree::drain_dirty_to_root`] — to
//! invalidate exactly the changed region. Stamps and journal never
//! participate in equality or serialization.
//!
//! The tree type is generic in its label type: documents are
//! `Tree<Sym>` (see [`Sym`], interned via [`Alphabet`]) while editing
//! scripts in the `xvu_edit` crate reuse the same structure over an edit
//! alphabet.
//!
//! # Paper cross-reference
//!
//! | paper (§2, Preliminaries) | here |
//! |---------------------------|------|
//! | alphabet `Σ` | [`Alphabet`], [`Sym`] |
//! | node identifiers `N_t` | [`NodeId`], allocated by [`NodeIdGen`] |
//! | trees `(Σ, N_t, ↓_t, <_t, λ_t)` | [`Tree`]; documents are [`DocTree`] = `Tree<Sym>` |
//! | term notation `r(a, b(c))` | [`parse_term`] / [`to_term`] (`#id`-annotated: [`parse_term_with_ids`] / [`to_term_with_ids`]) |
//! | identifier-sensitive equality vs isomorphism | `Tree == Tree` vs [`Tree::isomorphic`] |
//!
//! # Example
//!
//! ```
//! use xvu_tree::{Alphabet, NodeIdGen, parse_term};
//!
//! let mut alpha = Alphabet::new();
//! let mut gen = NodeIdGen::new();
//! let t = parse_term(&mut alpha, &mut gen, "r(a, b(c), a)").unwrap();
//! assert_eq!(t.size(), 5);
//! let r = alpha.get("r").unwrap();
//! assert_eq!(t.label(t.root()), r);
//! ```

// The `mmap` feature carries the one unsafe module in the workspace (the
// raw mmap(2) fast path in `snapshot`); the default build forbids unsafe
// outright, and even with the feature on, unsafe is denied everywhere
// except that explicitly-allowed module.
#![cfg_attr(not(feature = "mmap"), forbid(unsafe_code))]
#![cfg_attr(feature = "mmap", deny(unsafe_code))]
#![warn(missing_docs)]

mod alphabet;
mod build;
mod error;
mod intern;
mod iter;
pub mod legacy;
mod node;
pub mod slot;
pub mod snapshot;
mod term;
mod tree;

pub use alphabet::{Alphabet, Sym};
pub use build::TreeBuilder;
pub use error::TreeError;
pub use intern::{InternId, Interner};
pub use iter::{Postorder, Preorder};
pub use legacy::{from_legacy_json, to_legacy_json};
pub use node::{Node, NodeId, NodeIdGen};
pub use slot::{Slot, SlotIndex, SlotMap, SlotSet};
pub use snapshot::{CorpusBuilder, CorpusEntry, SnapshotError, SnapshotFile};
pub use term::{parse_term, parse_term_with_ids, to_term, to_term_with_ids};
pub use tree::{DocTree, Tree};
