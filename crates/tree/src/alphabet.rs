//! Interned label alphabets.
//!
//! The paper fixes a finite alphabet `Σ` of node labels. Labels occur in
//! every node, every automaton transition, and every annotation entry, so we
//! intern them once into dense [`Sym`] handles and index auxiliary tables
//! (minimal-tree sizes, annotations, insertlets) by `Sym::index()`.

use std::collections::HashMap;
use std::fmt;

/// An interned node label — an element of the alphabet `Σ`.
///
/// `Sym` is a dense handle into an [`Alphabet`]; two `Sym`s compare equal iff
/// they were interned from the same string in the same alphabet. The numeric
/// index is stable for the lifetime of the alphabet and suitable for `Vec`
/// indexing.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Sym(u32);

impl Sym {
    /// The dense index of this symbol within its alphabet.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a symbol from a raw index. The caller is responsible for the
    /// index being valid for the intended alphabet.
    ///
    /// This is the infallible fast path for hot loops iterating a known
    /// `0..alphabet_len` range: out-of-range indices are caught by a debug
    /// assertion only. Use [`Sym::try_from_index`] whenever the index is
    /// not trivially bounded (parsed input, external tables).
    #[inline]
    pub fn from_index(ix: usize) -> Sym {
        debug_assert!(
            u32::try_from(ix).is_ok(),
            "symbol index {ix} exceeds u32::MAX"
        );
        Sym(ix as u32)
    }

    /// Checked counterpart of [`Sym::from_index`]: `None` when the index
    /// does not fit the symbol representation.
    #[inline]
    pub fn try_from_index(ix: usize) -> Option<Sym> {
        u32::try_from(ix).ok().map(Sym)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A finite alphabet `Σ` interning label strings to [`Sym`] handles.
///
/// Interning is append-only: symbols are never removed, so indices handed
/// out remain valid. An alphabet is typically built once (from a DTD, a
/// term, or a workload generator) and then shared by reference.
#[derive(Clone, Debug, Default)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Alphabet {
        Alphabet::default()
    }

    /// Creates an alphabet pre-populated with the given labels, in order.
    pub fn from_labels<I, S>(labels: I) -> Alphabet
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut a = Alphabet::new();
        for l in labels {
            a.intern(l.as_ref());
        }
        a
    }

    /// Interns a label, returning its symbol. Idempotent.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&ix) = self.index.get(name) {
            return Sym(ix);
        }
        let ix = u32::try_from(self.names.len()).expect("alphabet larger than u32::MAX");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), ix);
        Sym(ix)
    }

    /// Looks up a previously interned label.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.index.get(name).map(|&ix| Sym(ix))
    }

    /// The string name of a symbol.
    ///
    /// # Panics
    /// Panics if `sym` does not belong to this alphabet.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in interning order.
    pub fn syms(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..self.names.len() as u32).map(Sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.intern("r");
        let y = a.intern("r");
        assert_eq!(x, y);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn distinct_labels_get_distinct_syms() {
        let mut a = Alphabet::new();
        let r = a.intern("r");
        let b = a.intern("b");
        assert_ne!(r, b);
        assert_eq!(a.name(r), "r");
        assert_eq!(a.name(b), "b");
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        let a = Alphabet::from_labels(["r", "a", "b"]);
        let syms: Vec<usize> = a.syms().map(Sym::index).collect();
        assert_eq!(syms, vec![0, 1, 2]);
    }

    #[test]
    fn get_returns_none_for_unknown() {
        let a = Alphabet::from_labels(["x"]);
        assert!(a.get("y").is_none());
        assert!(a.get("x").is_some());
    }

    #[test]
    fn from_index_round_trips() {
        let a = Alphabet::from_labels(["p", "q"]);
        let q = a.get("q").unwrap();
        assert_eq!(Sym::from_index(q.index()), q);
    }
}
