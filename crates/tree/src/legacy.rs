//! The legacy `{nodes: map, root}` JSON wire format, deterministic.
//!
//! This is the historical serde representation of a document tree —
//! `{"nodes": {"<id>": {"id": …, "label": …, "parent": …, "children":
//! […]}, …}, "root": <id>}` — hand-rolled so it is available without the
//! `serde` feature (the `serde` impls on [`Tree`] speak the same shape).
//! Historically the node map was collected into a `HashMap`, so the
//! serialized bytes varied run-to-run with hash iteration order;
//! [`to_legacy_json`] emits entries **sorted by [`NodeId`]**, making the
//! bytes a pure function of the tree. [`from_legacy_json`] accepts both
//! orderings (any key order, arbitrary whitespace), so old payloads keep
//! loading.
//!
//! This codec is the "serde" baseline of the load-path benchmarks: it
//! re-parses text, re-hashes every identifier, and rebuilds the arena
//! node by node — exactly the per-node costs the flat
//! [`crate::snapshot`] format deletes.

use crate::alphabet::Sym;
use crate::node::{Node, NodeId};
use crate::tree::{DocTree, Tree};
use crate::TreeError;

/// Serializes `tree` in the legacy JSON wire shape with the node map
/// sorted by identifier: equal trees produce byte-identical output.
pub fn to_legacy_json(tree: &DocTree) -> String {
    let mut nodes: Vec<&Node<Sym>> = tree.slots().map(|s| tree.node_at(s)).collect();
    nodes.sort_unstable_by_key(|n| n.id);
    let mut out = String::with_capacity(nodes.len() * 48 + 32);
    out.push_str("{\"nodes\":{");
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&n.id.0.to_string());
        out.push_str("\":{\"id\":");
        out.push_str(&n.id.0.to_string());
        out.push_str(",\"label\":");
        out.push_str(&n.label.index().to_string());
        out.push_str(",\"parent\":");
        match n.parent {
            Some(p) => out.push_str(&p.0.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"children\":[");
        for (j, c) in n.children.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&c.0.to_string());
        }
        out.push_str("]}");
    }
    out.push_str("},\"root\":");
    out.push_str(&tree.root().0.to_string());
    out.push('}');
    out
}

/// Parses the legacy JSON wire shape back into a tree.
///
/// Accepts arbitrary whitespace and any key order inside objects (what
/// a generic JSON serializer may emit); the decoded tree is
/// [`Tree::validate`]d, so structurally broken payloads yield a typed
/// [`TreeError`].
pub fn from_legacy_json(src: &str) -> Result<DocTree, TreeError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.ws();
    p.expect(b'{')?;
    let mut nodes: Option<Vec<Node<Sym>>> = None;
    let mut root: Option<u64> = None;
    loop {
        p.ws();
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match key.as_str() {
            "nodes" => nodes = Some(p.node_map()?),
            "root" => root = Some(p.u64()?),
            other => return Err(p.err(format!("unexpected key {other:?}"))),
        }
        p.ws();
        match p.next()? {
            b',' => continue,
            b'}' => break,
            c => return Err(p.err(format!("expected ',' or '}}', got {:?}", c as char))),
        }
    }
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after document".into()));
    }
    let nodes = nodes.ok_or_else(|| p.err("missing \"nodes\"".into()))?;
    let root = root.ok_or_else(|| p.err("missing \"root\"".into()))?;
    let mut tree: DocTree = Tree::empty_with_root(NodeId(root));
    for node in nodes {
        tree.push_node(node);
    }
    // `validate` resolves the root unconditionally; check it exists first
    if !tree.contains(NodeId(root)) {
        return Err(TreeError::Inconsistent(format!(
            "root {root} is not among the nodes"
        )));
    }
    tree.validate()?;
    Ok(tree)
}

/// A minimal recursive-descent parser for exactly the legacy shape.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: String) -> TreeError {
        TreeError::Parse { at: self.pos, msg }
    }

    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Result<u8, TreeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, want: u8) -> Result<(), TreeError> {
        let got = self.next()?;
        if got != want {
            return Err(self.err(format!(
                "expected {:?}, got {:?}",
                want as char, got as char
            )));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, TreeError> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.next()? {
                b'"' => break,
                b'\\' => return Err(self.err("escapes are not used by this format".into())),
                _ => {}
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos - 1])
            .map(str::to_owned)
            .map_err(|_| self.err("invalid UTF-8 in string".into()))
    }

    fn u64(&mut self) -> Result<u64, TreeError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number".into()));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are UTF-8")
            .parse()
            .map_err(|e| self.err(format!("number out of range: {e}")))
    }

    /// `null` or a `u64`.
    fn opt_u64(&mut self) -> Result<Option<u64>, TreeError> {
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(None);
        }
        self.u64().map(Some)
    }

    fn u64_array(&mut self) -> Result<Vec<u64>, TreeError> {
        self.expect(b'[')?;
        self.ws();
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.ws();
            out.push(self.u64()?);
            self.ws();
            match self.next()? {
                b',' => continue,
                b']' => break,
                c => return Err(self.err(format!("expected ',' or ']', got {:?}", c as char))),
            }
        }
        Ok(out)
    }

    fn node(&mut self) -> Result<Node<Sym>, TreeError> {
        self.expect(b'{')?;
        let (mut id, mut label, mut children) = (None, None, None);
        let mut parent: Option<Option<u64>> = None;
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            match key.as_str() {
                "id" => id = Some(self.u64()?),
                "label" => label = Some(self.u64()?),
                "parent" => parent = Some(self.opt_u64()?),
                "children" => children = Some(self.u64_array()?),
                other => return Err(self.err(format!("unexpected node key {other:?}"))),
            }
            self.ws();
            match self.next()? {
                b',' => continue,
                b'}' => break,
                c => return Err(self.err(format!("expected ',' or '}}', got {:?}", c as char))),
            }
        }
        let id = id.ok_or_else(|| self.err("node missing \"id\"".into()))?;
        let label = label.ok_or_else(|| self.err("node missing \"label\"".into()))?;
        let label = usize::try_from(label)
            .ok()
            .and_then(Sym::try_from_index)
            .ok_or_else(|| self.err(format!("label index {label} out of symbol range")))?;
        let parent = parent.ok_or_else(|| self.err("node missing \"parent\"".into()))?;
        let children = children.ok_or_else(|| self.err("node missing \"children\"".into()))?;
        Ok(Node {
            id: NodeId(id),
            label,
            parent: parent.map(NodeId),
            children: children.into_iter().map(NodeId).collect(),
        })
    }

    fn node_map(&mut self) -> Result<Vec<Node<Sym>>, TreeError> {
        self.expect(b'{')?;
        self.ws();
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.ws();
            let key = self.string()?;
            let key: u64 = key
                .parse()
                .map_err(|_| self.err(format!("node map key {key:?} is not an identifier")))?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let node = self.node()?;
            if node.id.0 != key {
                return Err(self.err(format!(
                    "node map key {key} disagrees with node id {}",
                    node.id
                )));
            }
            out.push(node);
            self.ws();
            match self.next()? {
                b',' => continue,
                b'}' => break,
                c => return Err(self.err(format!("expected ',' or '}}', got {:?}", c as char))),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_term_with_ids, Alphabet, NodeIdGen};

    fn doc(src: &str) -> DocTree {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        parse_term_with_ids(&mut alpha, &mut gen, src).unwrap()
    }

    #[test]
    fn wire_bytes_are_pinned_and_sorted_by_id() {
        // r#0(a#2, b#1): arena order is 0,2,1 but the wire sorts by id —
        // the exact bytes are pinned so the format cannot drift
        let t = doc("r#0(a#2, b#1)");
        assert_eq!(
            to_legacy_json(&t),
            "{\"nodes\":{\
             \"0\":{\"id\":0,\"label\":0,\"parent\":null,\"children\":[2,1]},\
             \"1\":{\"id\":1,\"label\":2,\"parent\":0,\"children\":[]},\
             \"2\":{\"id\":2,\"label\":1,\"parent\":0,\"children\":[]}\
             },\"root\":0}"
        );
    }

    #[test]
    fn serialization_is_deterministic_across_arena_orders() {
        // same tree assembled in two different arena orders
        let a = doc("r#0(a#1(b#3), a#2)");
        let mut b = doc("r#0(a#1, a#2)");
        b.add_child_with_id(NodeId(1), NodeId(3), a.label(NodeId(3)))
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(to_legacy_json(&a), to_legacy_json(&b));
    }

    #[test]
    fn round_trip_is_identifier_exact() {
        let t = doc("r#0(a#5(c#9, c#2), b#7)");
        let u = from_legacy_json(&to_legacy_json(&t)).unwrap();
        assert_eq!(t, u);
        u.validate().unwrap();
    }

    #[test]
    fn parser_accepts_whitespace_and_any_key_order() {
        let src = r#" { "root" : 0 , "nodes" : {
            "1" : { "children": [], "parent": 0, "id": 1, "label": 1 },
            "0" : { "id": 0, "label": 0, "parent": null, "children": [ 1 ] }
        } } "#;
        let t = from_legacy_json(src).unwrap();
        assert_eq!(t.size(), 2);
        assert_eq!(t.root(), NodeId(0));
        t.validate().unwrap();
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"nodes\":{},\"root\":0}",                  // empty tree
            "{\"nodes\":{\"0\":{\"id\":1,\"label\":0,\"parent\":null,\"children\":[]}},\"root\":0}", // key/id clash
            "{\"nodes\":{\"0\":{\"id\":0,\"label\":0,\"parent\":null,\"children\":[9]}},\"root\":0}", // dangling child
            "{\"nodes\":{\"0\":{\"id\":0,\"label\":0,\"parent\":null,\"children\":[]}},\"root\":0} x", // trailing
            "{\"nodes\":{\"0\":{\"id\":0,\"label\":99999999999,\"parent\":null,\"children\":[]}},\"root\":0}", // label range
        ] {
            assert!(from_legacy_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
