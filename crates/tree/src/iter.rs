//! Tree traversal iterators.
//!
//! Both traversals chase arena slots: each visited identifier is resolved
//! to its [`Slot`] exactly once (when pushed), and every subsequent access
//! is direct arena indexing — no hashing anywhere on the walk.

use crate::node::NodeId;
use crate::slot::Slot;
use crate::tree::Tree;

fn resolve<L>(tree: &Tree<L>, id: NodeId) -> Slot {
    tree.slot(id)
        .unwrap_or_else(|| panic!("node {id} not in tree"))
}

/// Pre-order (document-order) traversal: a node before its children,
/// children in sibling order.
pub struct Preorder<'t, L> {
    tree: &'t Tree<L>,
    stack: Vec<Slot>,
}

impl<'t, L> Preorder<'t, L> {
    pub(crate) fn new(tree: &'t Tree<L>, start: NodeId) -> Preorder<'t, L> {
        Preorder {
            tree,
            stack: vec![resolve(tree, start)],
        }
    }
}

impl<L> Iterator for Preorder<'_, L> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let s = self.stack.pop()?;
        let node = self.tree.node_at(s);
        // Push children reversed so the leftmost child is visited first.
        self.stack
            .extend(node.children.iter().rev().map(|&c| resolve(self.tree, c)));
        Some(node.id)
    }
}

/// Post-order traversal: children (in sibling order) before their parent.
pub struct Postorder<'t, L> {
    tree: &'t Tree<L>,
    // (node, whether its children were already expanded)
    stack: Vec<(Slot, bool)>,
}

impl<'t, L> Postorder<'t, L> {
    pub(crate) fn new(tree: &'t Tree<L>, start: NodeId) -> Postorder<'t, L> {
        Postorder {
            tree,
            stack: vec![(resolve(tree, start), false)],
        }
    }
}

impl<L> Iterator for Postorder<'_, L> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let (s, expanded) = self.stack.pop()?;
            if expanded {
                return Some(self.tree.id_at(s));
            }
            self.stack.push((s, true));
            self.stack.extend(
                self.tree
                    .node_at(s)
                    .children
                    .iter()
                    .rev()
                    .map(|&c| (resolve(self.tree, c), false)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::alphabet::Sym;
    use crate::node::NodeIdGen;
    use crate::tree::Tree;

    fn sym(i: usize) -> Sym {
        Sym::from_index(i)
    }

    #[test]
    fn preorder_is_document_order() {
        // r(a(c, d), b)
        let mut gen = NodeIdGen::new();
        let mut t = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let a = t.add_child(r, &mut gen, sym(1));
        let b = t.add_child(r, &mut gen, sym(2));
        let c = t.add_child(a, &mut gen, sym(3));
        let d = t.add_child(a, &mut gen, sym(4));
        let order: Vec<_> = t.preorder().collect();
        assert_eq!(order, vec![r, a, c, d, b]);
    }

    #[test]
    fn postorder_visits_children_first() {
        let mut gen = NodeIdGen::new();
        let mut t = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let a = t.add_child(r, &mut gen, sym(1));
        let b = t.add_child(r, &mut gen, sym(2));
        let c = t.add_child(a, &mut gen, sym(3));
        let order: Vec<_> = t.postorder().collect();
        assert_eq!(order, vec![c, a, b, r]);
    }

    #[test]
    fn traversals_cover_every_node_once() {
        let mut gen = NodeIdGen::new();
        let mut t = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        for i in 0..5 {
            let c = t.add_child(r, &mut gen, sym(i));
            t.add_child(c, &mut gen, sym(i));
        }
        let pre: Vec<_> = t.preorder().collect();
        let post: Vec<_> = t.postorder().collect();
        assert_eq!(pre.len(), t.size());
        assert_eq!(post.len(), t.size());
        let mut pre_sorted = pre.clone();
        let mut post_sorted = post.clone();
        pre_sorted.sort();
        post_sorted.sort();
        assert_eq!(pre_sorted, post_sorted);
    }

    #[test]
    fn preorder_from_subtree() {
        let mut gen = NodeIdGen::new();
        let mut t = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let a = t.add_child(r, &mut gen, sym(1));
        let c = t.add_child(a, &mut gen, sym(2));
        t.add_child(r, &mut gen, sym(3));
        let order: Vec<_> = t.preorder_from(a).collect();
        assert_eq!(order, vec![a, c]);
    }
}
