//! Term syntax for document trees.
//!
//! The paper denotes trees as terms over `Σ` when node identifiers are
//! irrelevant — e.g. `r(b, a, c)` — and as identifier-annotated pictures in
//! figures. We support both:
//!
//! * `parse_term` reads plain terms, allocating fresh identifiers;
//! * `parse_term_with_ids` additionally accepts `label#id` to pin explicit
//!   identifiers (used to encode the paper's figures exactly).
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! term  ::= label ('#' nat)? ( '(' term (',' term)* ')' )?
//! label ::= [A-Za-z_][A-Za-z0-9_-]*
//! ```

use crate::alphabet::Alphabet;
use crate::error::TreeError;
use crate::node::{NodeId, NodeIdGen};
use crate::tree::{DocTree, Tree};

/// Parses a plain term such as `r(a, b(c), a)`, interning labels and
/// allocating fresh node identifiers from `gen`.
pub fn parse_term(
    alpha: &mut Alphabet,
    gen: &mut NodeIdGen,
    input: &str,
) -> Result<DocTree, TreeError> {
    let mut p = Parser::new(alpha, input, false);
    let t = p.parse(gen)?;
    Ok(t)
}

/// Parses a term in which every node may carry an explicit identifier,
/// e.g. `r#0(a#1, b#2(c#7))`. Nodes without `#id` get fresh identifiers;
/// `gen` is bumped past every explicit identifier so later fresh nodes never
/// collide.
pub fn parse_term_with_ids(
    alpha: &mut Alphabet,
    gen: &mut NodeIdGen,
    input: &str,
) -> Result<DocTree, TreeError> {
    let mut p = Parser::new(alpha, input, true);
    let t = p.parse(gen)?;
    Ok(t)
}

/// Renders a tree as a plain term (identifiers omitted).
pub fn to_term(tree: &DocTree, alpha: &Alphabet) -> String {
    let mut out = String::new();
    write_node(tree, alpha, tree.root(), false, &mut out);
    out
}

/// Renders a tree as an identifier-annotated term (`label#id(...)`).
pub fn to_term_with_ids(tree: &DocTree, alpha: &Alphabet) -> String {
    let mut out = String::new();
    write_node(tree, alpha, tree.root(), true, &mut out);
    out
}

fn write_node(tree: &DocTree, alpha: &Alphabet, n: NodeId, ids: bool, out: &mut String) {
    out.push_str(alpha.name(tree.label(n)));
    if ids {
        out.push('#');
        out.push_str(&n.0.to_string());
    }
    let children = tree.children(n);
    if !children.is_empty() {
        out.push('(');
        for (i, &c) in children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_node(tree, alpha, c, ids, out);
        }
        out.push(')');
    }
}

struct Parser<'a> {
    alpha: &'a mut Alphabet,
    bytes: &'a [u8],
    pos: usize,
    allow_ids: bool,
}

impl<'a> Parser<'a> {
    fn new(alpha: &'a mut Alphabet, input: &'a str, allow_ids: bool) -> Parser<'a> {
        Parser {
            alpha,
            bytes: input.as_bytes(),
            pos: 0,
            allow_ids,
        }
    }

    fn parse(&mut self, gen: &mut NodeIdGen) -> Result<DocTree, TreeError> {
        let t = self.term(gen)?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing input after term"));
        }
        Ok(t)
    }

    fn term(&mut self, gen: &mut NodeIdGen) -> Result<DocTree, TreeError> {
        self.skip_ws();
        let label = self.label()?;
        let sym = self.alpha.intern(&label);
        let id = self.explicit_id(gen)?;
        let mut tree = Tree::leaf_with_id(id, sym);
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            loop {
                let child = self.term(gen)?;
                let pos = tree.children(tree.root()).len();
                tree.attach_subtree(tree.root(), pos, child)?;
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                    }
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or ')'")),
                }
            }
        }
        Ok(tree)
    }

    fn explicit_id(&mut self, gen: &mut NodeIdGen) -> Result<NodeId, TreeError> {
        if self.allow_ids && self.peek() == Some(b'#') {
            self.pos += 1;
            let start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == start {
                return Err(self.err("expected digits after '#'"));
            }
            let digits = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
            let raw: u64 = digits
                .parse()
                .map_err(|_| self.err("node identifier out of range"))?;
            let id = NodeId(raw);
            gen.bump_past(id);
            Ok(id)
        } else {
            Ok(gen.fresh())
        }
    }

    fn label(&mut self) -> Result<String, TreeError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => self.pos += 1,
            _ => return Err(self.err("expected a label")),
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii")
            .to_owned())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> TreeError {
        TreeError::Parse {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_term() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term(&mut alpha, &mut gen, "r(a, b(c), a)").unwrap();
        assert_eq!(t.size(), 5);
        let r = t.root();
        assert_eq!(alpha.name(t.label(r)), "r");
        let kids = t.children(r).to_vec();
        assert_eq!(kids.len(), 3);
        assert_eq!(alpha.name(t.label(kids[1])), "b");
        assert_eq!(t.children(kids[1]).len(), 1);
    }

    #[test]
    fn parse_leaf() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term(&mut alpha, &mut gen, "  x ").unwrap();
        assert_eq!(t.size(), 1);
    }

    #[test]
    fn round_trip_plain() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let src = "r(a, b(c, d), a)";
        let t = parse_term(&mut alpha, &mut gen, src).unwrap();
        assert_eq!(to_term(&t, &alpha), src);
    }

    #[test]
    fn explicit_ids_are_honoured() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, b#7(c#10))").unwrap();
        assert_eq!(t.root(), NodeId(0));
        assert!(t.contains(NodeId(7)));
        assert!(t.contains(NodeId(10)));
        // gen must be bumped past 10
        assert!(gen.peek().0 > 10);
    }

    #[test]
    fn explicit_ids_round_trip() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let src = "r#0(a#1, b#7(c#10))";
        let t = parse_term_with_ids(&mut alpha, &mut gen, src).unwrap();
        assert_eq!(to_term_with_ids(&t, &alpha), src);
    }

    #[test]
    fn duplicate_explicit_ids_rejected() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let r = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, b#1)");
        assert!(matches!(r, Err(TreeError::DuplicateNodeId(_))));
    }

    #[test]
    fn parse_errors_are_located() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        for bad in ["", "r(", "r(a,", "r(a))", "r(a b)", "(a)", "r#x"] {
            let res = parse_term_with_ids(&mut alpha, &mut gen, bad);
            assert!(res.is_err(), "input {bad:?} should fail");
        }
    }

    #[test]
    fn hash_in_plain_mode_is_rejected() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        assert!(parse_term(&mut alpha, &mut gen, "r#0").is_err());
    }

    #[test]
    fn labels_allow_underscore_and_dash() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term(&mut alpha, &mut gen, "patient_record(lab-result)").unwrap();
        assert_eq!(t.size(), 2);
    }
}
