//! Flat binary arena snapshots: a serialized form that **is** the arena.
//!
//! The historical wire formats rebuild a tree node by node: the term and
//! XML readers intern labels and attach subtrees one at a time, and the
//! legacy `{nodes: map, root}` shape ([`crate::legacy`]) hashes every
//! identifier into a map and back out again. This module instead freezes
//! the arena representation itself — slab, slot index, root — into a
//! versioned little-endian byte image, so loading is a single
//! bounds-checked bulk decode: no per-node hashing, no re-indexing, no
//! intermediate `HashMap`.
//!
//! # Layout (format version 1)
//!
//! All integers are little-endian. One tree snapshot is:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "XVUS"
//! 4       2     format version (= 1)
//! 6       1     label-codec tag (= 1: interned syms + UTF-8 string table)
//! 7       1     reserved (= 0)
//! 8       8     node count N (≥ 1)
//! 16      8     child total C (= N - 1)
//! 24      8     root identifier
//! 32      8     label count L
//! 40      24·N  node records in slab order:
//!                 id u64 · parent u64 (u64::MAX = none) · label u32 · child count u32
//! …       8·C   child identifiers, concatenated in slab order
//! …       8     dense slot-table length D
//! …       4·D   dense slot table (u32; u32::MAX = vacant)
//! …       8     sparse entry count S
//! …       12·S  sparse entries (id u64 · slot u32), sorted by id
//! …       …     L label strings (len u32 · UTF-8 bytes), in Sym order
//! last    8     FNV-1a 64 checksum of every preceding byte
//! ```
//!
//! The node records and child array are bulk-copied into the slab; the
//! slot table is bulk-copied into the [`crate::SlotIndex`]; the decoded
//! tree is then checked with [`Tree::validate`] so corrupt bytes surface
//! as a typed [`SnapshotError`], never a panic. Every section length is
//! bounds-checked against the remaining input **before** any allocation,
//! so a forged header cannot OOM the decoder.
//!
//! # Corpus files
//!
//! [`SnapshotFile`] packs many snapshots into one file — a doc-id
//! directory followed by length-prefixed snapshot sections — loaded in
//! one read ([`SnapshotFile::open`]) or, with the `mmap` feature on unix,
//! mapped directly from the page cache (`SnapshotFile::open_mmap`).
//! The default build stays `std`-only and `forbid(unsafe_code)`.

use crate::alphabet::{Alphabet, Sym};
use crate::node::{Node, NodeId};
use crate::slot::SlotIndex;
use crate::tree::{DocTree, Tree};
use crate::TreeError;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// Magic bytes opening a single tree snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"XVUS";
/// Magic bytes opening a corpus file.
pub const CORPUS_MAGIC: [u8; 4] = *b"XVUC";
/// The snapshot format version this build reads and writes.
pub const SNAPSHOT_FORMAT_VERSION: u16 = 1;
/// Label codec 1: labels are interned [`Sym`]s plus a UTF-8 string table.
pub const LABEL_CODEC_INTERNED: u8 = 1;

const HEADER_LEN: usize = 40;
const NODE_RECORD_LEN: usize = 24;
const CORPUS_HEADER_LEN: usize = 16;
const CORPUS_DIR_ENTRY_LEN: usize = 28;
const NO_PARENT: u64 = u64::MAX;
const VACANT: u32 = u32::MAX;

/// A typed decoding/encoding failure. The decoder never panics and never
/// allocates more than the input length justifies; every malformed input
/// maps to one of these variants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before the declared structure did.
    Truncated {
        /// Bytes the current section needed.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The magic bytes are not [`SNAPSHOT_MAGIC`] / [`CORPUS_MAGIC`].
    BadMagic([u8; 4]),
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The label-codec tag is unknown.
    UnsupportedCodec(u8),
    /// The trailing checksum does not match the bytes.
    ChecksumMismatch {
        /// Checksum stored in the snapshot.
        stored: u64,
        /// Checksum recomputed over the input.
        actual: u64,
    },
    /// A declared count or length is impossible for the input size
    /// (allocation guard) or violates a structural invariant.
    Malformed(String),
    /// A slot-table entry points outside the arena.
    SlotOutOfRange {
        /// The offending slot value.
        slot: u32,
        /// Number of nodes in the arena.
        nodes: u64,
    },
    /// A node record names a label index outside the string table.
    LabelOutOfRange {
        /// The offending label index.
        label: u32,
        /// Number of strings in the table.
        labels: u64,
    },
    /// A label string is not valid UTF-8.
    BadUtf8,
    /// The decoded structure fails [`Tree::validate`] (cycles, dangling
    /// children, duplicate identifiers, index disagreement, …).
    Invalid(String),
    /// The tree cannot be encoded (e.g. a node identifier equal to
    /// `u64::MAX`, which collides with the no-parent sentinel).
    Unencodable(String),
    /// An underlying file operation failed.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { need, have } => {
                write!(f, "snapshot truncated: need {need} bytes, have {have}")
            }
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic {m:?}"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::UnsupportedCodec(c) => write!(f, "unsupported label codec {c}"),
            SnapshotError::ChecksumMismatch { stored, actual } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            ),
            SnapshotError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapshotError::SlotOutOfRange { slot, nodes } => {
                write!(f, "slot {slot} out of range for {nodes} nodes")
            }
            SnapshotError::LabelOutOfRange { label, labels } => {
                write!(f, "label index {label} out of range for {labels} labels")
            }
            SnapshotError::BadUtf8 => write!(f, "label table holds invalid UTF-8"),
            SnapshotError::Invalid(msg) => write!(f, "decoded tree is invalid: {msg}"),
            SnapshotError::Unencodable(msg) => write!(f, "tree cannot be encoded: {msg}"),
            SnapshotError::Io(msg) => write!(f, "snapshot i/o: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<TreeError> for SnapshotError {
    fn from(e: TreeError) -> SnapshotError {
        SnapshotError::Invalid(e.to_string())
    }
}

/// The integrity trailer: FNV-1a 64 folded over 8-byte little-endian
/// words (tail zero-padded, length mixed in last). Word folding keeps
/// the checksum a single-digit share of decode time at corpus scale,
/// where the classic byte-at-a-time formulation would dominate it.
fn fnv1a64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        h = (h ^ u64::from_le_bytes(w.try_into().expect("8-byte word"))).wrapping_mul(PRIME);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    // the length breaks ties between inputs differing only in trailing
    // zero bytes, which the padded tail word cannot see
    (h ^ bytes.len() as u64).wrapping_mul(PRIME)
}

// ---------------------------------------------------------------- reader

/// A bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A count that must leave room for `unit` bytes per element: the
    /// allocation guard. Rejects counts whose encoded payload could not
    /// fit in the remaining input, so `Vec::with_capacity` downstream is
    /// always bounded by the input length.
    fn count(&mut self, unit: usize, what: &str) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let budget = (self.remaining() / unit.max(1)) as u64;
        if n > budget {
            return Err(SnapshotError::Malformed(format!(
                "{what} count {n} exceeds what {} remaining bytes can hold",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }
}

// ---------------------------------------------------------------- encode

fn encode_tree(tree: &DocTree, alpha: &Alphabet) -> Result<Vec<u8>, SnapshotError> {
    let n = tree.size();
    let mut max_label = 0usize;
    for slot in tree.slots() {
        let node = tree.node_at(slot);
        if node.id.0 == NO_PARENT {
            return Err(SnapshotError::Unencodable(format!(
                "identifier {} collides with the no-parent sentinel",
                node.id
            )));
        }
        max_label = max_label.max(node.label.index());
    }
    let labels = if n == 0 { 0 } else { max_label + 1 };
    if labels > alpha.len() {
        return Err(SnapshotError::Unencodable(format!(
            "label index {max_label} outside the alphabet ({} symbols)",
            alpha.len()
        )));
    }

    let mut out = Vec::with_capacity(HEADER_LEN + n * (NODE_RECORD_LEN + 8) + 64);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
    out.push(LABEL_CODEC_INTERNED);
    out.push(0);
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(n as u64 - 1).to_le_bytes());
    out.extend_from_slice(&tree.root().0.to_le_bytes());
    out.extend_from_slice(&(labels as u64).to_le_bytes());

    // node records in slab order
    for slot in tree.slots() {
        let node = tree.node_at(slot);
        out.extend_from_slice(&node.id.0.to_le_bytes());
        out.extend_from_slice(&node.parent.map_or(NO_PARENT, |p| p.0).to_le_bytes());
        out.extend_from_slice(&(node.label.index() as u32).to_le_bytes());
        out.extend_from_slice(&(node.children.len() as u32).to_le_bytes());
    }
    // child identifiers, concatenated in slab order
    for slot in tree.slots() {
        for c in &tree.node_at(slot).children {
            out.extend_from_slice(&c.0.to_le_bytes());
        }
    }
    // slot index: dense table (trailing vacants trimmed — lookups past the
    // dense range fall through to sparse, so trimming is semantics-free
    // and keeps the image deterministic), then sparse outliers by id
    let dense = tree.slot_index().dense_raw();
    let dense_used = dense.len() - dense.iter().rev().take_while(|&&s| s == VACANT).count();
    out.extend_from_slice(&(dense_used as u64).to_le_bytes());
    for &s in &dense[..dense_used] {
        out.extend_from_slice(&s.to_le_bytes());
    }
    let mut sparse: Vec<(u64, u32)> = tree
        .slot_index()
        .sparse_raw()
        .iter()
        .map(|(&id, &s)| (id, s))
        .collect();
    sparse.sort_unstable();
    out.extend_from_slice(&(sparse.len() as u64).to_le_bytes());
    for (id, s) in sparse {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&s.to_le_bytes());
    }
    // label string table, in Sym order
    for i in 0..labels {
        let name = alpha.name(Sym::from_index(i));
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }

    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    Ok(out)
}

// ---------------------------------------------------------------- decode

fn decode_tree(bytes: &[u8], alpha: &mut Alphabet) -> Result<DocTree, SnapshotError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic([
            magic[0], magic[1], magic[2], magic[3],
        ]));
    }
    let version = r.u16()?;
    if version != SNAPSHOT_FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let codec = r.take(2)?[0];
    if codec != LABEL_CODEC_INTERNED {
        return Err(SnapshotError::UnsupportedCodec(codec));
    }

    // integrity trailer first: everything after the header is only
    // trusted once the checksum over the whole image matches
    if bytes.len() < HEADER_LEN + 8 {
        return Err(SnapshotError::Truncated {
            need: HEADER_LEN + 8,
            have: bytes.len(),
        });
    }
    let body = &bytes[..bytes.len() - 8];
    let tail = &bytes[bytes.len() - 8..];
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(SnapshotError::ChecksumMismatch { stored, actual });
    }
    let mut r = Reader::new(body);
    r.take(8)?; // magic + version + codec + reserved, validated above

    let node_count = r.u64()?;
    let child_total = r.u64()?;
    let root = NodeId(r.u64()?);
    let label_count = r.u64()?;
    if node_count == 0 {
        return Err(SnapshotError::Malformed("empty tree (0 nodes)".into()));
    }
    if node_count > u64::from(u32::MAX) {
        return Err(SnapshotError::Malformed(format!(
            "{node_count} nodes exceed the u32 slot space"
        )));
    }
    if child_total != node_count - 1 {
        return Err(SnapshotError::Malformed(format!(
            "{node_count} nodes but {child_total} child references (want {})",
            node_count - 1
        )));
    }
    // allocation guards: every section must fit the remaining input
    let need = node_count as usize * NODE_RECORD_LEN;
    if r.remaining() < need {
        return Err(SnapshotError::Malformed(format!(
            "node count {node_count} exceeds what {} remaining bytes can hold",
            r.remaining()
        )));
    }

    let records = r.take(node_count as usize * NODE_RECORD_LEN)?;
    let child_need = child_total as usize * 8;
    if r.remaining() < child_need {
        return Err(SnapshotError::Malformed(format!(
            "child total {child_total} exceeds what {} remaining bytes can hold",
            r.remaining()
        )));
    }
    let child_bytes = r.take(child_need)?;

    // slot index image
    let dense_len = r.count(4, "dense slot table")?;
    let dense_bytes = r.take(dense_len * 4)?;
    let sparse_len = r.count(12, "sparse slot table")?;
    let sparse_bytes = r.take(sparse_len * 12)?;

    // label table → remap into the caller's alphabet (identity when the
    // alphabet already interns the same names at the same indices)
    let mut remap: Vec<Sym> = Vec::with_capacity(label_count.min(r.remaining() as u64) as usize);
    for _ in 0..label_count {
        let len = r.u32()? as usize;
        let raw = r.take(len)?;
        let name = std::str::from_utf8(raw).map_err(|_| SnapshotError::BadUtf8)?;
        remap.push(alpha.intern(name));
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing bytes after the label table",
            r.remaining()
        )));
    }

    // bulk slab decode: one pass over the fixed-width records, children
    // carved sequentially out of the child array
    let mut slab: Vec<Node<Sym>> = Vec::with_capacity(node_count as usize);
    let mut child_pos = 0usize;
    for rec in records.chunks_exact(NODE_RECORD_LEN) {
        let id = u64::from_le_bytes(rec[0..8].try_into().expect("record id"));
        let parent = u64::from_le_bytes(rec[8..16].try_into().expect("record parent"));
        let label = u32::from_le_bytes(rec[16..20].try_into().expect("record label"));
        let n_children = u32::from_le_bytes(rec[20..24].try_into().expect("record child count"));
        let label = *remap
            .get(label as usize)
            .ok_or(SnapshotError::LabelOutOfRange {
                label,
                labels: label_count,
            })?;
        let end = child_pos + n_children as usize * 8;
        if end > child_bytes.len() {
            return Err(SnapshotError::Malformed(format!(
                "node {id} declares {n_children} children past the child array"
            )));
        }
        let children: Vec<NodeId> = child_bytes[child_pos..end]
            .chunks_exact(8)
            .map(|c| NodeId(u64::from_le_bytes(c.try_into().expect("child id"))))
            .collect();
        child_pos = end;
        slab.push(Node {
            id: NodeId(id),
            label,
            parent: (parent != NO_PARENT).then_some(NodeId(parent)),
            children,
        });
    }
    if child_pos != child_bytes.len() {
        return Err(SnapshotError::Malformed(format!(
            "{} child references unclaimed by any node",
            (child_bytes.len() - child_pos) / 8
        )));
    }

    // bulk index decode: the dense table is copied verbatim; sparse
    // entries must lie beyond it (the dense range is authoritative)
    let mut indexed = 0usize;
    let mut dense: Vec<u32> = Vec::with_capacity(dense_len);
    for b in dense_bytes.chunks_exact(4) {
        let s = u32::from_le_bytes(b.try_into().expect("dense slot"));
        if s != VACANT {
            if u64::from(s) >= node_count {
                return Err(SnapshotError::SlotOutOfRange {
                    slot: s,
                    nodes: node_count,
                });
            }
            indexed += 1;
        }
        dense.push(s);
    }
    let mut sparse: HashMap<u64, u32> = HashMap::with_capacity(sparse_len);
    for b in sparse_bytes.chunks_exact(12) {
        let id = u64::from_le_bytes(b[0..8].try_into().expect("sparse id"));
        let s = u32::from_le_bytes(b[8..12].try_into().expect("sparse slot"));
        if (id as usize) < dense.len() || s == VACANT || u64::from(s) >= node_count {
            return Err(SnapshotError::SlotOutOfRange {
                slot: s,
                nodes: node_count,
            });
        }
        if sparse.insert(id, s).is_some() {
            return Err(SnapshotError::Malformed(format!(
                "duplicate sparse index entry for identifier {id}"
            )));
        }
        indexed += 1;
    }
    let index = SlotIndex::from_raw_parts(dense, sparse, indexed);

    let tree = Tree::from_raw_parts(slab, index, root);
    // `validate` resolves the root unconditionally; check it exists first
    if !tree.contains(root) {
        return Err(SnapshotError::Invalid(format!(
            "root {root} is not among the nodes"
        )));
    }
    tree.validate()
        .map_err(|e| SnapshotError::Invalid(e.to_string()))?;
    Ok(tree)
}

impl Tree<Sym> {
    /// Encodes this document as a flat arena snapshot (format version 1).
    ///
    /// `alpha` must be the alphabet the tree's labels were interned in;
    /// the snapshot embeds the label names so decoding into a different
    /// alphabet remaps symbols by name.
    pub fn to_snapshot_bytes(&self, alpha: &Alphabet) -> Result<Vec<u8>, SnapshotError> {
        encode_tree(self, alpha)
    }

    /// Decodes a flat arena snapshot produced by
    /// [`Tree::to_snapshot_bytes`] — a single bounds-checked bulk pass.
    ///
    /// Label names are interned into `alpha` (an identity remap when the
    /// alphabet already holds them at the encoding indices). The decoded
    /// tree is [`Tree::validate`]d, so corrupt input yields a typed
    /// [`SnapshotError`], never a panic or unbounded allocation.
    pub fn from_snapshot_bytes(
        bytes: &[u8],
        alpha: &mut Alphabet,
    ) -> Result<DocTree, SnapshotError> {
        decode_tree(bytes, alpha)
    }
}

// ---------------------------------------------------------------- corpus

/// One entry of a corpus directory: which document lives where.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The document identifier (the serving store's key).
    pub doc_id: u64,
    /// The document's family (engine/schema index).
    pub family: u32,
    offset: usize,
    len: usize,
}

impl CorpusEntry {
    /// Size of this document's snapshot section in bytes.
    pub fn byte_len(&self) -> usize {
        self.len
    }
}

/// Builds a corpus file: a directory of `(doc id, family)` entries plus
/// length-prefixed snapshot sections, closed by a checksum.
#[derive(Debug, Default)]
pub struct CorpusBuilder {
    docs: Vec<(u64, u32, Vec<u8>)>,
}

impl CorpusBuilder {
    /// An empty builder.
    pub fn new() -> CorpusBuilder {
        CorpusBuilder::default()
    }

    /// Number of documents queued so far.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether no documents are queued.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Encodes `tree` and queues it under `doc_id`/`family`.
    pub fn push(
        &mut self,
        doc_id: u64,
        family: u32,
        tree: &DocTree,
        alpha: &Alphabet,
    ) -> Result<(), SnapshotError> {
        let bytes = tree.to_snapshot_bytes(alpha)?;
        self.docs.push((doc_id, family, bytes));
        Ok(())
    }

    /// Queues pre-encoded snapshot bytes under `doc_id`/`family`.
    pub fn push_bytes(&mut self, doc_id: u64, family: u32, bytes: Vec<u8>) {
        self.docs.push((doc_id, family, bytes));
    }

    /// Assembles the corpus image.
    pub fn finish(self) -> Vec<u8> {
        let dir_len = CORPUS_HEADER_LEN + self.docs.len() * CORPUS_DIR_ENTRY_LEN;
        let total: usize = dir_len + self.docs.iter().map(|(_, _, b)| b.len()).sum::<usize>() + 8;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&CORPUS_MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(self.docs.len() as u64).to_le_bytes());
        let mut offset = dir_len;
        for (doc_id, family, bytes) in &self.docs {
            out.extend_from_slice(&doc_id.to_le_bytes());
            out.extend_from_slice(&family.to_le_bytes());
            out.extend_from_slice(&(offset as u64).to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            offset += bytes.len();
        }
        for (_, _, bytes) in &self.docs {
            out.extend_from_slice(bytes);
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }
}

/// The backing bytes of a loaded corpus: owned, or mapped (unix, `mmap`
/// feature).
enum CorpusData {
    Owned(Vec<u8>),
    #[cfg(all(feature = "mmap", unix))]
    Mapped(mmap::Mapped),
}

impl CorpusData {
    fn bytes(&self) -> &[u8] {
        match self {
            CorpusData::Owned(v) => v,
            #[cfg(all(feature = "mmap", unix))]
            CorpusData::Mapped(m) => m.bytes(),
        }
    }
}

impl fmt::Debug for CorpusData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusData::Owned(v) => write!(f, "Owned({} bytes)", v.len()),
            #[cfg(all(feature = "mmap", unix))]
            CorpusData::Mapped(m) => write!(f, "Mapped({} bytes)", m.bytes().len()),
        }
    }
}

/// A whole corpus of flat snapshots, loaded in one read.
///
/// The directory is parsed and bounds-checked once at open; each
/// document decodes lazily out of the shared byte image via
/// [`SnapshotFile::decode`].
#[derive(Debug)]
pub struct SnapshotFile {
    data: CorpusData,
    entries: Vec<CorpusEntry>,
}

impl SnapshotFile {
    /// Parses a corpus image already in memory.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<SnapshotFile, SnapshotError> {
        let entries = parse_corpus_directory(&bytes)?;
        Ok(SnapshotFile {
            data: CorpusData::Owned(bytes),
            entries,
        })
    }

    /// Reads a corpus file in one `read` and parses its directory.
    pub fn open(path: impl AsRef<Path>) -> Result<SnapshotFile, SnapshotError> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.as_ref().display())))?;
        SnapshotFile::from_bytes(bytes)
    }

    /// Maps a corpus file into memory instead of copying it (unix only,
    /// `mmap` feature): the page cache is the corpus, so repeated daemon
    /// starts over the same file touch no heap for the raw image.
    #[cfg(all(feature = "mmap", unix))]
    pub fn open_mmap(path: impl AsRef<Path>) -> Result<SnapshotFile, SnapshotError> {
        let mapped = mmap::Mapped::open(path.as_ref())
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.as_ref().display())))?;
        let entries = parse_corpus_directory(mapped.bytes())?;
        Ok(SnapshotFile {
            data: CorpusData::Mapped(mapped),
            entries,
        })
    }

    /// Number of documents in the corpus.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The directory, in file order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Directory position of `doc_id`, if present.
    pub fn find(&self, doc_id: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.doc_id == doc_id)
    }

    /// The raw snapshot section of the `idx`-th document.
    pub fn doc_bytes(&self, idx: usize) -> &[u8] {
        let e = &self.entries[idx];
        &self.data.bytes()[e.offset..e.offset + e.len]
    }

    /// Decodes the `idx`-th document (see [`Tree::from_snapshot_bytes`]).
    pub fn decode(&self, idx: usize, alpha: &mut Alphabet) -> Result<DocTree, SnapshotError> {
        decode_tree(self.doc_bytes(idx), alpha)
    }
}

fn parse_corpus_directory(bytes: &[u8]) -> Result<Vec<CorpusEntry>, SnapshotError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != CORPUS_MAGIC {
        return Err(SnapshotError::BadMagic([
            magic[0], magic[1], magic[2], magic[3],
        ]));
    }
    let version = r.u16()?;
    if version != SNAPSHOT_FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    r.u16()?; // reserved
    if bytes.len() < CORPUS_HEADER_LEN + 8 {
        return Err(SnapshotError::Truncated {
            need: CORPUS_HEADER_LEN + 8,
            have: bytes.len(),
        });
    }
    let body = &bytes[..bytes.len() - 8];
    let tail = &bytes[bytes.len() - 8..];
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(SnapshotError::ChecksumMismatch { stored, actual });
    }
    let mut r = Reader::new(body);
    r.take(8)?; // header, validated above
    let count = r.count(CORPUS_DIR_ENTRY_LEN, "corpus directory")?;
    let payload_end = body.len();
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let doc_id = r.u64()?;
        let family = r.u32()?;
        let offset = r.u64()?;
        let len = r.u64()?;
        let end = offset.checked_add(len).filter(|&e| e <= payload_end as u64);
        let Some(_) = end else {
            return Err(SnapshotError::Malformed(format!(
                "corpus section for doc {doc_id} ({offset}+{len}) escapes the file"
            )));
        };
        if offset < (CORPUS_HEADER_LEN + count * CORPUS_DIR_ENTRY_LEN) as u64 {
            return Err(SnapshotError::Malformed(format!(
                "corpus section for doc {doc_id} overlaps the directory"
            )));
        }
        entries.push(CorpusEntry {
            doc_id,
            family,
            offset: offset as usize,
            len: len as usize,
        });
    }
    let mut seen: Vec<u64> = entries.iter().map(|e| e.doc_id).collect();
    seen.sort_unstable();
    if seen.windows(2).any(|w| w[0] == w[1]) {
        return Err(SnapshotError::Malformed(
            "duplicate document identifier in corpus directory".into(),
        ));
    }
    Ok(entries)
}

// ---------------------------------------------------------------- mmap

/// Read-only file mapping via raw `mmap(2)`/`munmap(2)` — hand-declared
/// FFI (std already links libc on unix) so the crate stays free of
/// external dependencies; the whole module sits behind the `mmap`
/// feature and the default build remains `forbid(unsafe_code)`.
#[cfg(all(feature = "mmap", unix))]
#[allow(unsafe_code)]
mod mmap {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An owned read-only mapping of a whole file.
    pub struct Mapped {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is immutable for its whole lifetime.
    unsafe impl Send for Mapped {}
    unsafe impl Sync for Mapped {}

    impl Mapped {
        /// Maps `path` read-only. Empty files yield an empty slice
        /// without calling `mmap` (zero-length mappings are EINVAL).
        pub fn open(path: &Path) -> io::Result<Mapped> {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds usize"))?;
            if len == 0 {
                return Ok(Mapped {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: fd is a valid open file, len is its exact size,
            // PROT_READ|MAP_PRIVATE never aliases writable memory, and
            // the pointer is checked against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapped { ptr, len })
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; the borrow cannot outlive the mapping.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapped {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: exactly the region mmap returned, unmapped once.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_term_with_ids, NodeIdGen};

    fn doc(src: &str) -> (DocTree, Alphabet) {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term_with_ids(&mut alpha, &mut gen, src).unwrap();
        (t, alpha)
    }

    /// Recomputes the trailing checksum after tampering with the body.
    fn restamp(bytes: &mut [u8]) {
        let n = bytes.len();
        let sum = fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn round_trip_is_identifier_exact() {
        let (t, alpha) = doc("r#0(a#1(c#3, c#4), b#2, a#5)");
        let bytes = t.to_snapshot_bytes(&alpha).unwrap();
        let mut alpha2 = alpha.clone();
        let u = Tree::from_snapshot_bytes(&bytes, &mut alpha2).unwrap();
        assert_eq!(t, u);
        u.validate().unwrap();
        assert_eq!(alpha2.len(), alpha.len(), "same alphabet: identity remap");
    }

    #[test]
    fn round_trip_into_fresh_alphabet_remaps_by_name() {
        let (t, alpha) = doc("r#0(a#1, b#2)");
        let bytes = t.to_snapshot_bytes(&alpha).unwrap();
        // decoding into an alphabet with different indices remaps labels
        let mut other = Alphabet::new();
        other.intern("zzz");
        other.intern("b");
        let u = Tree::from_snapshot_bytes(&bytes, &mut other).unwrap();
        assert_eq!(other.name(u.label(u.root())), "r");
        let kids = u.children(u.root());
        assert_eq!(other.name(u.label(kids[0])), "a");
        assert_eq!(other.name(u.label(kids[1])), "b");
        // identifiers are untouched by the remap
        assert_eq!(u.root(), NodeId(0));
    }

    #[test]
    fn encoding_is_deterministic() {
        let (t, alpha) = doc("r#0(a#1(c#3), b#2)");
        let a = t.to_snapshot_bytes(&alpha).unwrap();
        let b = t.to_snapshot_bytes(&alpha).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_outlier_identifiers_round_trip() {
        let mut t = Tree::leaf_with_id(NodeId(0), Sym::from_index(0));
        t.add_child_with_id(NodeId(0), NodeId(u64::MAX - 1), Sym::from_index(1))
            .unwrap();
        t.add_child_with_id(NodeId(0), NodeId(1_000_000_000), Sym::from_index(0))
            .unwrap();
        let alpha = Alphabet::from_labels(["r", "a"]);
        let bytes = t.to_snapshot_bytes(&alpha).unwrap();
        let mut alpha2 = alpha.clone();
        let u = Tree::from_snapshot_bytes(&bytes, &mut alpha2).unwrap();
        assert_eq!(t, u);
        u.validate().unwrap();
    }

    #[test]
    fn sentinel_identifier_is_unencodable() {
        let mut t = Tree::leaf_with_id(NodeId(0), Sym::from_index(0));
        t.add_child_with_id(NodeId(0), NodeId(u64::MAX), Sym::from_index(0))
            .unwrap();
        let alpha = Alphabet::from_labels(["r"]);
        assert!(matches!(
            t.to_snapshot_bytes(&alpha),
            Err(SnapshotError::Unencodable(_))
        ));
    }

    // ------------------------------------------------ corrupt inputs

    fn good() -> (Vec<u8>, Alphabet) {
        let (t, alpha) = doc("r#0(a#1(b#2))");
        (t.to_snapshot_bytes(&alpha).unwrap(), alpha)
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let (bytes, mut alpha) = good();
        for cut in [0, 1, 3, 4, 7, 10, HEADER_LEN, bytes.len() - 1] {
            let err = Tree::from_snapshot_bytes(&bytes[..cut], &mut alpha).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let (bytes, mut alpha) = good();
        let mut bad = bytes.clone();
        bad[0] = b'Y';
        assert!(matches!(
            Tree::from_snapshot_bytes(&bad, &mut alpha),
            Err(SnapshotError::BadMagic(_))
        ));
        let mut bad = bytes.clone();
        bad[4] = 0xEE; // version
        assert!(matches!(
            Tree::from_snapshot_bytes(&bad, &mut alpha),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        let mut bad = bytes;
        bad[6] = 9; // label codec
        assert!(matches!(
            Tree::from_snapshot_bytes(&bad, &mut alpha),
            Err(SnapshotError::UnsupportedCodec(9))
        ));
    }

    #[test]
    fn flipped_byte_fails_the_checksum() {
        let (mut bytes, mut alpha) = good();
        bytes[HEADER_LEN + 3] ^= 0x40;
        assert!(matches!(
            Tree::from_snapshot_bytes(&bytes, &mut alpha),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_declared_counts_cannot_allocate() {
        let (bytes, mut alpha) = good();
        // node count far beyond the input: rejected before any allocation
        let mut bad = bytes.clone();
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        bad[16..24].copy_from_slice(&(u64::MAX - 1).to_le_bytes());
        restamp(&mut bad);
        assert!(matches!(
            Tree::from_snapshot_bytes(&bad, &mut alpha),
            Err(SnapshotError::Malformed(_))
        ));
        // child total disagreeing with the node count
        let mut bad = bytes.clone();
        bad[16..24].copy_from_slice(&77u64.to_le_bytes());
        restamp(&mut bad);
        assert!(matches!(
            Tree::from_snapshot_bytes(&bad, &mut alpha),
            Err(SnapshotError::Malformed(_))
        ));
        // label count beyond the remaining bytes: the per-string reads
        // hit a typed truncation, never an oversized reservation
        let mut bad = bytes;
        bad[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        restamp(&mut bad);
        assert!(matches!(
            Tree::from_snapshot_bytes(&bad, &mut alpha),
            Err(SnapshotError::Truncated { .. } | SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn out_of_range_slot_entry_rejected() {
        // 3-node chain, ids 0..2: dense table starts after the header,
        // 3 records, 2 child ids, and the dense length word
        let (mut bytes, mut alpha) = good();
        let dense_at = HEADER_LEN + 3 * NODE_RECORD_LEN + 2 * 8 + 8;
        bytes[dense_at..dense_at + 4].copy_from_slice(&7u32.to_le_bytes());
        restamp(&mut bytes);
        assert!(matches!(
            Tree::from_snapshot_bytes(&bytes, &mut alpha),
            Err(SnapshotError::SlotOutOfRange { slot: 7, nodes: 3 })
        ));
    }

    #[test]
    fn cycle_in_links_is_a_typed_error() {
        // patch a#1's child entry (second child word) from b#2 to a#1:
        // node a becomes reachable twice and b dangles
        let (mut bytes, mut alpha) = good();
        let children_at = HEADER_LEN + 3 * NODE_RECORD_LEN;
        bytes[children_at + 8..children_at + 16].copy_from_slice(&1u64.to_le_bytes());
        restamp(&mut bytes);
        assert!(matches!(
            Tree::from_snapshot_bytes(&bytes, &mut alpha),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn absent_root_is_a_typed_error() {
        let (mut bytes, mut alpha) = good();
        bytes[24..32].copy_from_slice(&99u64.to_le_bytes());
        restamp(&mut bytes);
        assert!(matches!(
            Tree::from_snapshot_bytes(&bytes, &mut alpha),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn label_index_out_of_range_rejected() {
        let (mut bytes, mut alpha) = good();
        // first record's label word (offset 16 within the record)
        let at = HEADER_LEN + 16;
        bytes[at..at + 4].copy_from_slice(&9u32.to_le_bytes());
        restamp(&mut bytes);
        assert!(matches!(
            Tree::from_snapshot_bytes(&bytes, &mut alpha),
            Err(SnapshotError::LabelOutOfRange { label: 9, .. })
        ));
    }

    #[test]
    fn empty_and_trailing_inputs_rejected() {
        let mut alpha = Alphabet::new();
        assert!(matches!(
            Tree::from_snapshot_bytes(&[], &mut alpha),
            Err(SnapshotError::Truncated { .. })
        ));
        let (bytes, mut alpha) = good();
        let mut bad = bytes;
        let at = bad.len() - 8;
        bad.splice(at..at, [0u8; 4]); // junk between labels and checksum
        restamp(&mut bad);
        assert!(matches!(
            Tree::from_snapshot_bytes(&bad, &mut alpha),
            Err(SnapshotError::Malformed(_))
        ));
    }

    // ------------------------------------------------------- corpus

    fn corpus() -> (Vec<u8>, Alphabet) {
        let (t1, alpha) = doc("r#0(a#1, b#2)");
        let mut gen = NodeIdGen::starting_at(10);
        let mut alpha2 = alpha.clone();
        let t2 = parse_term_with_ids(&mut alpha2, &mut gen, "r#10(b#11(a#12))").unwrap();
        let mut b = CorpusBuilder::new();
        b.push(7, 0, &t1, &alpha).unwrap();
        b.push(8, 1, &t2, &alpha2).unwrap();
        (b.finish(), alpha2)
    }

    #[test]
    fn corpus_round_trips() {
        let (bytes, alpha) = corpus();
        let file = SnapshotFile::from_bytes(bytes).unwrap();
        assert_eq!(file.len(), 2);
        assert_eq!(file.entries()[0].doc_id, 7);
        assert_eq!(file.entries()[1].family, 1);
        assert_eq!(file.find(8), Some(1));
        assert_eq!(file.find(9), None);
        let mut a = alpha.clone();
        let t1 = file.decode(0, &mut a).unwrap();
        let t2 = file.decode(1, &mut a).unwrap();
        assert_eq!(t1.root(), NodeId(0));
        assert_eq!(t2.root(), NodeId(10));
        t1.validate().unwrap();
        t2.validate().unwrap();
    }

    #[test]
    fn corpus_open_reads_a_file() {
        let (bytes, alpha) = corpus();
        let path = std::env::temp_dir().join(format!("xvu-corpus-{}.xvus", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let file = SnapshotFile::open(&path).unwrap();
        assert_eq!(file.len(), 2);
        let mut a = alpha.clone();
        file.decode(0, &mut a).unwrap();
        #[cfg(all(feature = "mmap", unix))]
        {
            let mapped = SnapshotFile::open_mmap(&path).unwrap();
            assert_eq!(mapped.len(), 2);
            let mut a = alpha.clone();
            let t_read = file.decode(1, &mut a).unwrap();
            let mut a = alpha.clone();
            let t_map = mapped.decode(1, &mut a).unwrap();
            assert_eq!(t_read, t_map);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corpus_corruption_rejected() {
        let (bytes, _) = corpus();
        // bad magic
        let mut bad = bytes.clone();
        bad[0] = b'Z';
        assert!(matches!(
            SnapshotFile::from_bytes(bad),
            Err(SnapshotError::BadMagic(_))
        ));
        // directory count beyond the input
        let mut bad = bytes.clone();
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        restamp(&mut bad);
        assert!(matches!(
            SnapshotFile::from_bytes(bad),
            Err(SnapshotError::Malformed(_))
        ));
        // a section escaping the file
        let mut bad = bytes.clone();
        let len_at = CORPUS_HEADER_LEN + 20; // first entry's len field
        bad[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        restamp(&mut bad);
        assert!(matches!(
            SnapshotFile::from_bytes(bad),
            Err(SnapshotError::Malformed(_))
        ));
        // duplicate doc id
        let mut bad = bytes.clone();
        let second_id_at = CORPUS_HEADER_LEN + CORPUS_DIR_ENTRY_LEN;
        bad[second_id_at..second_id_at + 8].copy_from_slice(&7u64.to_le_bytes());
        restamp(&mut bad);
        assert!(matches!(
            SnapshotFile::from_bytes(bad),
            Err(SnapshotError::Malformed(_))
        ));
        // truncation
        assert!(SnapshotFile::from_bytes(bytes[..10].to_vec()).is_err());
    }

    #[test]
    fn corpus_of_zero_docs_is_valid() {
        let bytes = CorpusBuilder::new().finish();
        let file = SnapshotFile::from_bytes(bytes).unwrap();
        assert!(file.is_empty());
    }
}
