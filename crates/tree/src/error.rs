//! Error type for tree construction and manipulation.

use crate::node::NodeId;
use std::fmt;

/// Errors raised by tree operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// An operation referred to a node identifier not present in the tree.
    UnknownNode(NodeId),
    /// Attaching a subtree whose identifiers intersect the host tree's.
    DuplicateNodeId(NodeId),
    /// The root of a tree cannot be detached (trees are non-empty).
    CannotDetachRoot,
    /// A child index was out of bounds for a node.
    PositionOutOfBounds {
        /// The node whose children were indexed.
        node: NodeId,
        /// The offending position.
        position: usize,
        /// The node's arity.
        arity: usize,
    },
    /// Parse error in term syntax.
    Parse {
        /// Byte offset of the error in the input.
        at: usize,
        /// Human-readable description.
        msg: String,
    },
    /// Internal consistency violation detected by [`crate::Tree::validate`].
    Inconsistent(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TreeError::DuplicateNodeId(n) => write!(f, "duplicate node identifier {n}"),
            TreeError::CannotDetachRoot => write!(f, "cannot detach the root of a tree"),
            TreeError::PositionOutOfBounds {
                node,
                position,
                arity,
            } => write!(
                f,
                "position {position} out of bounds for node {node} with {arity} children"
            ),
            TreeError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            TreeError::Inconsistent(msg) => write!(f, "inconsistent tree: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}
