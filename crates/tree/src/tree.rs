//! The tree structure itself.

use crate::alphabet::Sym;
use crate::error::TreeError;
use crate::iter::{Postorder, Preorder};
use crate::node::{Node, NodeId, NodeIdGen};
use crate::slot::{Slot, SlotIndex, SlotSet};

/// A document tree: labels are interned alphabet symbols.
pub type DocTree = Tree<Sym>;

/// An ordered, labeled, non-empty tree with persistent node identifiers.
///
/// The structure corresponds to `t = (Σ, N_t, ↓_t, <_t, λ_t)` from the
/// paper: `N_t` is the set of indexed identifiers, the descendant and
/// sibling relations are induced by per-node parent/children links, and
/// `λ_t` is the `label` field.
///
/// **Equality is identifier-sensitive**: `t == u` holds iff the trees have
/// the same node-identifier set, the same labeling, and the same structure
/// — regardless of internal storage order. Use [`Tree::isomorphic`] for
/// identifier-oblivious comparison — the paper stresses that the two
/// notions must not be confused.
///
/// # Storage
///
/// Nodes live in a contiguous arena (`Vec<Node<L>>`) addressed by dense
/// [`Slot`]s; a [`SlotIndex`] resolves persistent [`NodeId`]s to slots.
/// Identifier semantics are exactly those of a node map — ids are the
/// identity, slots are the address — but lookups are array indexing
/// instead of hashing, and per-node side tables can be dense
/// ([`crate::SlotMap`], [`crate::SlotSet`]). Slots are stable under reads
/// and node insertion; removing nodes may relocate slots (see
/// [`crate::slot`] for the stability contract).
///
/// The label type `L` is generic: documents use [`Sym`], editing scripts use
/// an edit alphabet (`xvu_edit`).
///
/// # Change tracking
///
/// Every tree carries a cheap mutation clock: a global [`Tree::epoch`]
/// bumped by each structural mutation, and a per-slot version stamp
/// ([`Tree::version`]) recording the epoch at which a node's child list
/// last changed (or the node was created). On top of the stamps, an
/// opt-in *dirty journal* ([`Tree::set_change_tracking`]) records the
/// identifier of every node whose child word changed; consumers holding
/// per-subtree caches drain it with [`Tree::take_changed_parents`] or
/// [`Tree::drain_dirty_to_root`] to invalidate exactly the changed region
/// instead of discarding everything. Neither stamps nor the journal
/// participate in equality or the serialized form.
#[derive(Clone, Debug)]
pub struct Tree<L> {
    slab: Vec<Node<L>>,
    index: SlotIndex,
    root: NodeId,
    /// Mutation clock: bumped once per structural mutation.
    epoch: u64,
    /// `versions[slot]` = epoch at which that node's child list last
    /// changed (or the node entered the arena). Parallel to `slab`.
    versions: Vec<u64>,
    /// Whether structural mutations are journaled.
    track: bool,
    /// Identifiers of nodes whose child word changed since the last drain
    /// (only while `track`; may contain duplicates until drained).
    journal: Vec<NodeId>,
}

impl<L: PartialEq> PartialEq for Tree<L> {
    fn eq(&self, other: &Tree<L>) -> bool {
        self.root == other.root
            && self.slab.len() == other.slab.len()
            && self.slab.iter().all(|n| other.get(n.id) == Some(n))
    }
}

impl<L: Eq> Eq for Tree<L> {}

impl<L> Tree<L> {
    /// Creates a single-node tree with a fresh identifier.
    pub fn leaf(gen: &mut NodeIdGen, label: L) -> Tree<L> {
        Tree::leaf_with_id(gen.fresh(), label)
    }

    /// Creates a single-node tree with an explicit identifier.
    pub fn leaf_with_id(id: NodeId, label: L) -> Tree<L> {
        let mut tree = Tree::empty_with_root(id);
        tree.push_node(Node {
            id,
            label,
            parent: None,
            children: Vec::new(),
        });
        tree
    }

    /// An arena-less shell with the given root identifier (internal
    /// constructor backing every tree-building code path).
    pub(crate) fn empty_with_root(root: NodeId) -> Tree<L> {
        Tree {
            slab: Vec::new(),
            index: SlotIndex::new(),
            root,
            epoch: 0,
            versions: Vec::new(),
            track: false,
            journal: Vec::new(),
        }
    }

    /// Assembles a tree directly from a decoded arena image: slab in
    /// slot order, a matching identifier index, and the root. Backs the
    /// bulk snapshot decoder (`crate::snapshot`); the caller is expected
    /// to [`Tree::validate`] the result.
    pub(crate) fn from_raw_parts(slab: Vec<Node<L>>, index: SlotIndex, root: NodeId) -> Tree<L> {
        let versions = vec![0; slab.len()];
        Tree {
            slab,
            index,
            root,
            epoch: 0,
            versions,
            track: false,
            journal: Vec::new(),
        }
    }

    /// Appends a node to the arena, indexing its identifier and stamping
    /// it with the current epoch.
    #[inline]
    pub(crate) fn push_node(&mut self, node: Node<L>) -> Slot {
        let slot = Slot::new(u32::try_from(self.slab.len()).expect("tree larger than u32::MAX"));
        self.index.insert(node.id, slot);
        self.slab.push(node);
        self.versions.push(self.epoch);
        slot
    }

    /// Advances the mutation clock and stamps/journals the node at `slot`,
    /// whose child word is about to change (or just changed).
    #[inline]
    fn mark_children_changed(&mut self, slot: Slot) {
        self.epoch += 1;
        self.versions[slot.index()] = self.epoch;
        if self.track {
            self.journal.push(self.slab[slot.index()].id);
        }
    }

    /// The root node identifier.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The number of nodes, `|t|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.slab.len()
    }

    /// Whether `id` is a node of this tree.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.index.contains(id)
    }

    /// The arena slot of `id`, if it is a node of this tree.
    ///
    /// Resolve once, then address the node and any slot-keyed side table
    /// by plain indexing. See [`crate::slot`] for the stability contract.
    #[inline]
    pub fn slot(&self, id: NodeId) -> Option<Slot> {
        self.index.slot(id)
    }

    /// All arena slots, `0..size()`, in arena order.
    #[inline]
    pub fn slots(&self) -> impl Iterator<Item = Slot> {
        (0..self.slab.len() as u32).map(Slot::new)
    }

    /// The identifier→slot index itself.
    ///
    /// Cloneable: consumers whose side tables must outlive a borrow of the
    /// tree (e.g. a propagation forest keyed by update-script nodes)
    /// snapshot it to keep O(1) id resolution.
    #[inline]
    pub fn slot_index(&self) -> &SlotIndex {
        &self.index
    }

    /// The tree's mutation clock: bumped once per structural mutation
    /// ([`Tree::add_child_with_id`], [`Tree::attach_subtree`],
    /// [`Tree::detach_subtree`]). Two equal epochs on the *same* tree
    /// value mean no structural change happened in between.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch at which `id`'s child list last changed (or the node was
    /// created), if `id` is a node of this tree. A node whose version is
    /// older than another node's stamp has not had its child word touched
    /// since.
    #[inline]
    pub fn version(&self, id: NodeId) -> Option<u64> {
        self.index.slot(id).map(|s| self.versions[s.index()])
    }

    /// Enables or disables the dirty journal. Turning tracking on (or
    /// off) clears any journaled entries; with tracking on, every
    /// structural mutation records the identifier of the node whose child
    /// word changed, for [`Tree::take_changed_parents`] /
    /// [`Tree::drain_dirty_to_root`] to drain.
    ///
    /// Tracking is off by default — construction-heavy code paths pay
    /// nothing for it.
    pub fn set_change_tracking(&mut self, on: bool) {
        self.track = on;
        self.journal.clear();
    }

    /// Whether the dirty journal is recording.
    #[inline]
    pub fn is_change_tracking(&self) -> bool {
        self.track
    }

    /// Drains the journal: the identifiers of every node whose child word
    /// changed since the last drain (deduplicated, in first-touched
    /// order). Empty unless [`Tree::set_change_tracking`] is on.
    pub fn take_changed_parents(&mut self) -> Vec<NodeId> {
        let mut seen = SlotSet::with_capacity(self.size());
        let mut out = Vec::new();
        for id in self.journal.drain(..) {
            match self.index.slot(id) {
                // A journaled parent may itself have been removed by a
                // later mutation; report only surviving nodes.
                Some(s) => {
                    if seen.insert(s) {
                        out.push(id);
                    }
                }
                None => continue,
            }
        }
        out
    }

    /// Drains the journal and expands it to the **dirty region**: every
    /// journaled node plus all of its ancestors up to the root
    /// (deduplicated). This is exactly the set of nodes whose *subtree*
    /// changed — the region a subtree-keyed cache must invalidate.
    pub fn drain_dirty_to_root(&mut self) -> Vec<NodeId> {
        let touched = self.take_changed_parents();
        let mut seen = SlotSet::with_capacity(self.size());
        let mut out = Vec::new();
        for id in touched {
            let mut cur = Some(id);
            while let Some(n) = cur {
                let Some(s) = self.index.slot(n) else { break };
                if !seen.insert(s) {
                    break; // this ancestor chain is already marked
                }
                out.push(n);
                cur = self.slab[s.index()].parent;
            }
        }
        out
    }

    /// Borrow a node.
    ///
    /// # Panics
    /// Panics if `id` is not a node of this tree; use [`Tree::get`] for a
    /// fallible lookup.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<L> {
        match self.index.slot(id) {
            Some(s) => &self.slab[s.index()],
            None => panic!("node {id} not in tree"),
        }
    }

    /// Fallible node lookup.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&Node<L>> {
        self.index.slot(id).map(|s| &self.slab[s.index()])
    }

    /// Borrow the node at an arena slot.
    ///
    /// # Panics
    /// Panics if `slot` is out of range for this tree.
    #[inline]
    pub fn node_at(&self, slot: Slot) -> &Node<L> {
        &self.slab[slot.index()]
    }

    /// The identifier of the node at an arena slot.
    ///
    /// # Panics
    /// Panics if `slot` is out of range for this tree.
    #[inline]
    pub fn id_at(&self, slot: Slot) -> NodeId {
        self.slab[slot.index()].id
    }

    /// The label of a node.
    #[inline]
    pub fn label(&self, id: NodeId) -> L
    where
        L: Copy,
    {
        self.node(id).label
    }

    /// The ordered children of a node.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// The parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// The sequence of child labels of `id` — the word that a DTD content
    /// model constrains.
    pub fn child_word(&self, id: NodeId) -> Vec<L>
    where
        L: Copy,
    {
        self.node(id)
            .children
            .iter()
            .map(|&c| self.node(c).label)
            .collect()
    }

    /// All node identifiers, in unspecified order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slab.iter().map(|n| n.id)
    }

    /// Pre-order (document-order) traversal from the root.
    pub fn preorder(&self) -> Preorder<'_, L> {
        Preorder::new(self, self.root)
    }

    /// Pre-order traversal of the subtree rooted at `id`.
    pub fn preorder_from(&self, id: NodeId) -> Preorder<'_, L> {
        Preorder::new(self, id)
    }

    /// Post-order traversal from the root.
    pub fn postorder(&self) -> Postorder<'_, L> {
        Postorder::new(self, self.root)
    }

    /// Appends a fresh leaf child to `parent`, returning its identifier.
    pub fn add_child(&mut self, parent: NodeId, gen: &mut NodeIdGen, label: L) -> NodeId {
        let id = gen.fresh();
        self.add_child_with_id(parent, id, label)
            .expect("fresh id cannot collide");
        id
    }

    /// Appends a leaf child with an explicit identifier.
    pub fn add_child_with_id(
        &mut self,
        parent: NodeId,
        id: NodeId,
        label: L,
    ) -> Result<(), TreeError> {
        let Some(pslot) = self.slot(parent) else {
            return Err(TreeError::UnknownNode(parent));
        };
        if self.contains(id) {
            return Err(TreeError::DuplicateNodeId(id));
        }
        self.mark_children_changed(pslot);
        self.push_node(Node {
            id,
            label,
            parent: Some(parent),
            children: Vec::new(),
        });
        // Slots are stable under insertion, so `pslot` still addresses the
        // parent after the push.
        self.slab[pslot.index()].children.push(id);
        Ok(())
    }

    /// Grafts `sub` as the `position`-th child of `parent`.
    ///
    /// The subtree keeps its identifiers; the identifier sets must be
    /// disjoint.
    pub fn attach_subtree(
        &mut self,
        parent: NodeId,
        position: usize,
        sub: Tree<L>,
    ) -> Result<(), TreeError> {
        let Some(pslot) = self.slot(parent) else {
            return Err(TreeError::UnknownNode(parent));
        };
        let arity = self.slab[pslot.index()].children.len();
        if position > arity {
            return Err(TreeError::PositionOutOfBounds {
                node: parent,
                position,
                arity,
            });
        }
        for id in sub.node_ids() {
            if self.contains(id) {
                return Err(TreeError::DuplicateNodeId(id));
            }
        }
        let sub_root = sub.root;
        self.mark_children_changed(pslot);
        for mut node in sub.slab {
            if node.id == sub_root {
                node.parent = Some(parent);
            }
            self.push_node(node);
        }
        self.slab[pslot.index()].children.insert(position, sub_root);
        Ok(())
    }

    /// Removes and returns the subtree rooted at `id`.
    pub fn detach_subtree(&mut self, id: NodeId) -> Result<Tree<L>, TreeError> {
        if !self.contains(id) {
            return Err(TreeError::UnknownNode(id));
        }
        if id == self.root {
            return Err(TreeError::CannotDetachRoot);
        }
        let parent = self.node(id).parent.expect("non-root has a parent");
        let pslot = self.slot(parent).expect("parent indexed");
        let p = &mut self.slab[pslot.index()];
        let pos = p
            .children
            .iter()
            .position(|&c| c == id)
            .expect("child listed in parent");
        p.children.remove(pos);
        self.mark_children_changed(pslot);

        // Collect the subtree's identifiers before removing anything:
        // removal relocates slots (swap-remove), identifiers never move.
        let mut ids = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            ids.push(n);
            stack.extend(self.node(n).children.iter().copied());
        }

        let mut sub = Tree::empty_with_root(id);
        sub.slab.reserve(ids.len());
        for n in ids {
            let s = self.index.remove(n).expect("subtree node indexed");
            let mut node = self.slab.swap_remove(s.index());
            self.versions.swap_remove(s.index());
            if s.index() < self.slab.len() {
                // A tail node was swapped into the vacated slot; re-point
                // its index entry.
                let moved = self.slab[s.index()].id;
                self.index.insert(moved, s);
            }
            if node.id == id {
                node.parent = None;
            }
            sub.push_node(node);
        }
        Ok(sub)
    }

    /// A clone of the subtree rooted at `id` (identifiers preserved) — the
    /// paper's `t|_n`.
    pub fn subtree(&self, id: NodeId) -> Tree<L>
    where
        L: Clone,
    {
        let mut out = Tree::empty_with_root(id);
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let mut node = self.node(n).clone();
            if n == id {
                node.parent = None;
            }
            stack.extend(node.children.iter().copied());
            out.push_node(node);
        }
        out
    }

    /// The number of nodes in the subtree rooted at `id`, `|t|_n|`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        let mut count = 0usize;
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            count += 1;
            stack.extend(self.node(n).children.iter().copied());
        }
        count
    }

    /// Depth of `id` (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the tree (a leaf-only tree has height 0).
    pub fn height(&self) -> usize {
        self.preorder().map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// Maps the label of every node, preserving identifiers and structure.
    /// The result is a fresh tree: its epoch starts at 0 and change
    /// tracking is off.
    pub fn map_labels<M>(&self, mut f: impl FnMut(NodeId, &L) -> M) -> Tree<M> {
        let slab: Vec<Node<M>> = self
            .slab
            .iter()
            .map(|node| Node {
                id: node.id,
                label: f(node.id, &node.label),
                parent: node.parent,
                children: node.children.clone(),
            })
            .collect();
        let versions = vec![0; slab.len()];
        Tree {
            slab,
            index: self.index.clone(),
            root: self.root,
            epoch: 0,
            versions,
            track: false,
            journal: Vec::new(),
        }
    }

    /// An isomorphic copy of this tree in which every node receives a fresh
    /// identifier from `gen`.
    ///
    /// This is the "each time we use fresh nodes" operation of the paper's
    /// graph traversals: template fragments (minimal witnesses, insertlets)
    /// are instantiated with fresh identifiers on every insertion.
    pub fn with_fresh_ids(&self, gen: &mut NodeIdGen) -> Tree<L>
    where
        L: Clone,
    {
        fn rec<L: Clone>(
            src: &Tree<L>,
            n: NodeId,
            parent: Option<NodeId>,
            gen: &mut NodeIdGen,
            out: &mut Tree<L>,
        ) -> NodeId {
            let id = gen.fresh();
            let slot = out.push_node(Node {
                id,
                label: src.node(n).label.clone(),
                parent,
                children: Vec::new(),
            });
            let mut children = Vec::with_capacity(src.children(n).len());
            for &c in src.children(n) {
                children.push(rec(src, c, Some(id), gen, out));
            }
            // Slots are stable under insertion, so `slot` still addresses
            // this node after the recursive pushes.
            out.slab[slot.index()].children = children;
            id
        }
        let mut out = Tree::empty_with_root(self.root); // placeholder root; fixed below
        out.slab.reserve(self.size());
        let root = rec(self, self.root, None, gen, &mut out);
        out.root = root;
        out
    }

    /// Identifier-oblivious structural equality (same shape, same labels).
    pub fn isomorphic(&self, other: &Tree<L>) -> bool
    where
        L: PartialEq,
    {
        fn rec<L: PartialEq>(a: &Tree<L>, an: NodeId, b: &Tree<L>, bn: NodeId) -> bool {
            let na = a.node(an);
            let nb = b.node(bn);
            na.label == nb.label
                && na.children.len() == nb.children.len()
                && na
                    .children
                    .iter()
                    .zip(nb.children.iter())
                    .all(|(&ca, &cb)| rec(a, ca, b, cb))
        }
        rec(self, self.root, other, other.root)
    }

    /// Checks internal invariants: parent/child agreement, reachability of
    /// exactly the arena from the root, no duplicate children, and
    /// arena/index agreement.
    ///
    /// Intended for tests and debug assertions; all public mutators maintain
    /// these invariants.
    pub fn validate(&self) -> Result<(), TreeError> {
        for (i, node) in self.slab.iter().enumerate() {
            if self.index.slot(node.id).map(Slot::index) != Some(i) {
                return Err(TreeError::Inconsistent(format!(
                    "arena slot {i} holds {} but the index disagrees",
                    node.id
                )));
            }
        }
        if self.index.len() != self.slab.len() {
            return Err(TreeError::Inconsistent(format!(
                "{} nodes in arena, {} identifiers indexed",
                self.slab.len(),
                self.index.len()
            )));
        }
        if self.versions.len() != self.slab.len() {
            return Err(TreeError::Inconsistent(format!(
                "{} nodes in arena, {} version stamps",
                self.slab.len(),
                self.versions.len()
            )));
        }
        if self.node(self.root).parent.is_some() {
            return Err(TreeError::Inconsistent("root has a parent".into()));
        }
        let mut seen = SlotSet::with_capacity(self.size());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let slot = self
                .index
                .slot(n)
                .ok_or_else(|| TreeError::Inconsistent(format!("dangling child {n}")))?;
            if !seen.insert(slot) {
                return Err(TreeError::Inconsistent(format!(
                    "node {n} reachable twice (cycle or shared child)"
                )));
            }
            for &c in &self.slab[slot.index()].children {
                let child = self
                    .get(c)
                    .ok_or_else(|| TreeError::Inconsistent(format!("dangling child {c}")))?;
                if child.parent != Some(n) {
                    return Err(TreeError::Inconsistent(format!(
                        "child {c} does not point back to parent {n}"
                    )));
                }
                stack.push(c);
            }
        }
        if seen.len() != self.slab.len() {
            return Err(TreeError::Inconsistent(format!(
                "{} nodes in arena, {} reachable from root",
                self.slab.len(),
                seen.len()
            )));
        }
        Ok(())
    }
}

/// Serde support, wire-compatible with the historical representation
/// (`{ nodes: map<NodeId, Node>, root: NodeId }`): the arena layout is an
/// implementation detail and never leaks into serialized form, so
/// round-trips are identity and old payloads keep deserializing.
#[cfg(feature = "serde")]
mod serde_impls {
    use super::*;
    use std::collections::BTreeMap;

    /// A `BTreeMap` keeps the node map sorted by [`NodeId`], so equal
    /// trees serialize to identical bytes regardless of arena order or
    /// hash seeding (the historical `HashMap` here made the wire bytes
    /// vary run-to-run). The map shape on the wire is unchanged.
    #[derive(serde::Serialize, serde::Deserialize)]
    struct TreeWire<V> {
        nodes: BTreeMap<NodeId, V>,
        root: NodeId,
    }

    impl<L: serde::Serialize> serde::Serialize for Tree<L> {
        fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            TreeWire {
                nodes: self.slab.iter().map(|n| (n.id, n)).collect(),
                root: self.root,
            }
            .serialize(serializer)
        }
    }

    impl<'de, L: serde::Deserialize<'de>> serde::Deserialize<'de> for Tree<L> {
        fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let wire: TreeWire<Node<L>> = TreeWire::deserialize(deserializer)?;
            let mut tree = Tree::empty_with_root(wire.root);
            tree.slab.reserve(wire.nodes.len());
            for (id, node) in wire.nodes {
                if id != node.id {
                    return Err(serde::de::Error::custom(format!(
                        "node map key {id} disagrees with node id {}",
                        node.id
                    )));
                }
                tree.push_node(node);
            }
            tree.validate()
                .map_err(|e| serde::de::Error::custom(e.to_string()))?;
            Ok(tree)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: usize) -> Sym {
        Sym::from_index(i)
    }

    fn chain3() -> (DocTree, NodeId, NodeId, NodeId) {
        // r(a(b))
        let mut gen = NodeIdGen::new();
        let mut t = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let a = t.add_child(r, &mut gen, sym(1));
        let b = t.add_child(a, &mut gen, sym(2));
        (t, r, a, b)
    }

    #[test]
    fn leaf_tree_basics() {
        let mut gen = NodeIdGen::new();
        let t: DocTree = Tree::leaf(&mut gen, sym(0));
        assert_eq!(t.size(), 1);
        assert_eq!(t.label(t.root()), sym(0));
        assert!(t.children(t.root()).is_empty());
        assert!(t.parent(t.root()).is_none());
        t.validate().unwrap();
    }

    #[test]
    fn add_children_preserves_order() {
        let mut gen = NodeIdGen::new();
        let mut t: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let c1 = t.add_child(r, &mut gen, sym(1));
        let c2 = t.add_child(r, &mut gen, sym(2));
        assert_eq!(t.children(r), &[c1, c2]);
        assert_eq!(t.child_word(r), vec![sym(1), sym(2)]);
        t.validate().unwrap();
    }

    #[test]
    fn slots_are_dense_and_resolve_ids() {
        let (t, r, a, b) = chain3();
        assert_eq!(t.slots().count(), t.size());
        for n in [r, a, b] {
            let s = t.slot(n).unwrap();
            assert_eq!(t.id_at(s), n);
            assert_eq!(t.node_at(s).id, n);
            assert!(s.index() < t.size());
        }
        assert!(t.slot(NodeId(99)).is_none());
    }

    #[test]
    fn detach_relocates_slots_but_not_ids() {
        // after detaching a middle subtree, every surviving id still
        // resolves and the arena stays dense
        let mut gen = NodeIdGen::new();
        let mut t: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let a = t.add_child(r, &mut gen, sym(1));
        t.add_child(a, &mut gen, sym(2));
        let c = t.add_child(r, &mut gen, sym(3));
        t.detach_subtree(a).unwrap();
        t.validate().unwrap();
        assert_eq!(t.size(), 2);
        assert_eq!(t.slots().count(), 2);
        assert_eq!(t.children(r), &[c]);
        assert_eq!(t.label(c), sym(3));
    }

    #[test]
    fn subtree_preserves_ids_and_detaches_parent() {
        let (t, _, a, b) = chain3();
        let sub = t.subtree(a);
        assert_eq!(sub.size(), 2);
        assert_eq!(sub.root(), a);
        assert!(sub.parent(a).is_none());
        assert_eq!(sub.children(a), &[b]);
        sub.validate().unwrap();
    }

    #[test]
    fn detach_subtree_removes_descendants() {
        let (mut t, r, a, b) = chain3();
        let sub = t.detach_subtree(a).unwrap();
        assert_eq!(t.size(), 1);
        assert!(!t.contains(a));
        assert!(!t.contains(b));
        assert!(t.children(r).is_empty());
        assert_eq!(sub.size(), 2);
        t.validate().unwrap();
        sub.validate().unwrap();
    }

    #[test]
    fn detach_root_is_an_error() {
        let (mut t, r, _, _) = chain3();
        assert_eq!(t.detach_subtree(r), Err(TreeError::CannotDetachRoot));
    }

    #[test]
    fn attach_subtree_at_position() {
        let mut gen = NodeIdGen::new();
        let mut t: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let c1 = t.add_child(r, &mut gen, sym(1));
        let c3 = t.add_child(r, &mut gen, sym(3));
        let sub: DocTree = Tree::leaf(&mut gen, sym(2));
        let c2 = sub.root();
        t.attach_subtree(r, 1, sub).unwrap();
        assert_eq!(t.children(r), &[c1, c2, c3]);
        t.validate().unwrap();
    }

    #[test]
    fn attach_rejects_duplicate_ids() {
        let (mut t, r, a, _) = chain3();
        let dup: DocTree = Tree::leaf_with_id(a, sym(5));
        assert_eq!(
            t.attach_subtree(r, 0, dup),
            Err(TreeError::DuplicateNodeId(a))
        );
    }

    #[test]
    fn attach_rejects_bad_position() {
        let (mut t, r, _, _) = chain3();
        let mut gen = NodeIdGen::starting_at(100);
        let sub: DocTree = Tree::leaf(&mut gen, sym(4));
        assert!(matches!(
            t.attach_subtree(r, 5, sub),
            Err(TreeError::PositionOutOfBounds { .. })
        ));
    }

    #[test]
    fn equality_is_identifier_sensitive() {
        let mut g1 = NodeIdGen::new();
        let mut g2 = NodeIdGen::starting_at(10);
        let t1: DocTree = Tree::leaf(&mut g1, sym(0));
        let t2: DocTree = Tree::leaf(&mut g2, sym(0));
        assert_ne!(t1, t2);
        assert!(t1.isomorphic(&t2));
    }

    #[test]
    fn equality_ignores_arena_order() {
        // same identifiers and structure, different construction order ⇒
        // different arena layouts, equal trees
        let mut t1: DocTree = Tree::leaf_with_id(NodeId(0), sym(0));
        t1.add_child_with_id(NodeId(0), NodeId(1), sym(1)).unwrap();
        t1.add_child_with_id(NodeId(0), NodeId(2), sym(2)).unwrap();

        let mut t2: DocTree = Tree::leaf_with_id(NodeId(0), sym(0));
        t2.add_child_with_id(NodeId(0), NodeId(2), sym(2)).unwrap();
        let sub: DocTree = Tree::leaf_with_id(NodeId(1), sym(1));
        t2.attach_subtree(NodeId(0), 0, sub).unwrap();

        assert_ne!(
            t1.slot(NodeId(1)),
            t2.slot(NodeId(1)),
            "layouts genuinely differ"
        );
        assert_eq!(t1, t2);
    }

    #[test]
    fn isomorphic_detects_label_and_shape_differences() {
        let (t1, ..) = chain3();
        let mut gen = NodeIdGen::starting_at(50);
        let mut t2: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t2.root();
        t2.add_child(r, &mut gen, sym(1));
        assert!(!t1.isomorphic(&t2));
    }

    #[test]
    fn subtree_size_and_depth() {
        let (t, r, a, b) = chain3();
        assert_eq!(t.subtree_size(r), 3);
        assert_eq!(t.subtree_size(a), 2);
        assert_eq!(t.subtree_size(b), 1);
        assert_eq!(t.depth(r), 0);
        assert_eq!(t.depth(b), 2);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn map_labels_preserves_structure() {
        let (t, r, a, _) = chain3();
        let mapped = t.map_labels(|_, &l| l.index() + 10);
        assert_eq!(mapped.size(), 3);
        assert_eq!(mapped.label(r), 10);
        assert_eq!(mapped.label(a), 11);
        assert_eq!(mapped.children(r), t.children(r));
    }

    #[test]
    fn with_fresh_ids_is_isomorphic_and_disjoint() {
        let (t, ..) = chain3();
        let mut gen = NodeIdGen::starting_at(1000);
        let u = t.with_fresh_ids(&mut gen);
        assert!(t.isomorphic(&u));
        assert_ne!(t, u);
        for id in u.node_ids() {
            assert!(!t.contains(id), "fresh copy reuses id {id}");
        }
        u.validate().unwrap();
        // Sibling order must be preserved, not reversed.
        let pre_t: Vec<_> = t.preorder().map(|n| t.label(n)).collect();
        let pre_u: Vec<_> = u.preorder().map(|n| u.label(n)).collect();
        assert_eq!(pre_t, pre_u);
    }

    #[test]
    fn clone_equals_original() {
        let (t, ..) = chain3();
        let u = t.clone();
        assert_eq!(t, u);
    }

    #[test]
    fn epoch_and_versions_advance_on_mutation() {
        let mut gen = NodeIdGen::new();
        let mut t: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let e0 = t.epoch();
        let a = t.add_child(r, &mut gen, sym(1));
        assert!(t.epoch() > e0);
        assert_eq!(t.version(r), Some(t.epoch()));
        let va = t.version(a).unwrap();
        // growing elsewhere does not touch a's stamp
        t.add_child(r, &mut gen, sym(2));
        assert_eq!(t.version(a), Some(va));
        assert_eq!(t.version(NodeId(99)), None);
        // a mutation *under* a bumps a, not the root's newer stamp
        let vr = t.version(r).unwrap();
        t.add_child(a, &mut gen, sym(3));
        assert!(t.version(a).unwrap() > va);
        assert_eq!(t.version(r), Some(vr));
    }

    #[test]
    fn journal_records_changed_parents_only_when_tracking() {
        let mut gen = NodeIdGen::new();
        let mut t: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let a = t.add_child(r, &mut gen, sym(1));
        // construction above was untracked
        t.set_change_tracking(true);
        assert!(t.take_changed_parents().is_empty());
        let b = t.add_child(a, &mut gen, sym(2));
        t.add_child(a, &mut gen, sym(3));
        let changed = t.take_changed_parents();
        assert_eq!(changed, vec![a]); // deduplicated
        assert!(t.take_changed_parents().is_empty(), "drained");
        // detach journals the parent of the cut point
        t.detach_subtree(b).unwrap();
        assert_eq!(t.take_changed_parents(), vec![a]);
        // disabling tracking stops the journal
        t.set_change_tracking(false);
        t.add_child(r, &mut gen, sym(4));
        assert!(t.take_changed_parents().is_empty());
    }

    #[test]
    fn dirty_to_root_marks_all_ancestors() {
        // r(a(b(c)), d): touching b dirties {b, a, r} but not d.
        let mut gen = NodeIdGen::new();
        let mut t: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let a = t.add_child(r, &mut gen, sym(1));
        let b = t.add_child(a, &mut gen, sym(2));
        t.add_child(b, &mut gen, sym(3));
        let d = t.add_child(r, &mut gen, sym(4));
        t.set_change_tracking(true);
        t.add_child(b, &mut gen, sym(5));
        let mut dirty = t.drain_dirty_to_root();
        dirty.sort();
        assert_eq!(dirty, vec![r, a, b]);
        assert!(!dirty.contains(&d));
        assert!(t.drain_dirty_to_root().is_empty(), "drained");
    }

    #[test]
    fn journal_skips_parents_removed_after_the_touch() {
        let mut gen = NodeIdGen::new();
        let mut t: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let a = t.add_child(r, &mut gen, sym(1));
        t.set_change_tracking(true);
        t.add_child(a, &mut gen, sym(2)); // journals a
        t.detach_subtree(a).unwrap(); // journals r, removes a
        assert_eq!(t.take_changed_parents(), vec![r]);
    }

    #[test]
    fn clones_and_projections_do_not_inherit_journal() {
        let mut gen = NodeIdGen::new();
        let mut t: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        t.set_change_tracking(true);
        t.add_child(r, &mut gen, sym(1));
        // clone copies journal state verbatim…
        let mut c = t.clone();
        assert_eq!(c.take_changed_parents(), vec![r]);
        // …but label-mapped and subtree projections start fresh
        let mut m = t.map_labels(|_, &l| l);
        assert!(!m.is_change_tracking());
        assert!(m.take_changed_parents().is_empty());
        assert_eq!(m.epoch(), 0);
        let sub = t.subtree(r);
        assert!(!sub.is_change_tracking());
        sub.validate().unwrap();
    }
}
