//! The tree structure itself.

use crate::alphabet::Sym;
use crate::error::TreeError;
use crate::iter::{Postorder, Preorder};
use crate::node::{Node, NodeId, NodeIdGen};
use std::collections::HashMap;

/// A document tree: labels are interned alphabet symbols.
pub type DocTree = Tree<Sym>;

/// An ordered, labeled, non-empty tree with persistent node identifiers.
///
/// The structure corresponds to `t = (Σ, N_t, ↓_t, <_t, λ_t)` from the
/// paper: `N_t` is the key set of the node map, the descendant and sibling
/// relations are induced by per-node parent/children links, and `λ_t` is the
/// `label` field.
///
/// **Equality is identifier-sensitive**: `t == u` holds iff the trees have
/// the same node-identifier set, the same labeling, and the same structure.
/// Use [`Tree::isomorphic`] for identifier-oblivious comparison — the paper
/// stresses that the two notions must not be confused.
///
/// The label type `L` is generic: documents use [`Sym`], editing scripts use
/// an edit alphabet (`xvu_edit`).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tree<L> {
    nodes: HashMap<NodeId, Node<L>>,
    root: NodeId,
}

impl<L> Tree<L> {
    /// Creates a single-node tree with a fresh identifier.
    pub fn leaf(gen: &mut NodeIdGen, label: L) -> Tree<L> {
        Tree::leaf_with_id(gen.fresh(), label)
    }

    /// Creates a single-node tree with an explicit identifier.
    pub fn leaf_with_id(id: NodeId, label: L) -> Tree<L> {
        let mut nodes = HashMap::new();
        nodes.insert(
            id,
            Node {
                id,
                label,
                parent: None,
                children: Vec::new(),
            },
        );
        Tree { nodes, root: id }
    }

    /// The root node identifier.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The number of nodes, `|t|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `id` is a node of this tree.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Borrow a node.
    ///
    /// # Panics
    /// Panics if `id` is not a node of this tree; use [`Tree::get`] for a
    /// fallible lookup.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<L> {
        self.nodes
            .get(&id)
            .unwrap_or_else(|| panic!("node {id} not in tree"))
    }

    /// Fallible node lookup.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&Node<L>> {
        self.nodes.get(&id)
    }

    /// The label of a node.
    #[inline]
    pub fn label(&self, id: NodeId) -> L
    where
        L: Copy,
    {
        self.node(id).label
    }

    /// The ordered children of a node.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// The parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// The sequence of child labels of `id` — the word that a DTD content
    /// model constrains.
    pub fn child_word(&self, id: NodeId) -> Vec<L>
    where
        L: Copy,
    {
        self.node(id)
            .children
            .iter()
            .map(|&c| self.node(c).label)
            .collect()
    }

    /// All node identifiers, in unspecified order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Pre-order (document-order) traversal from the root.
    pub fn preorder(&self) -> Preorder<'_, L> {
        Preorder::new(self, self.root)
    }

    /// Pre-order traversal of the subtree rooted at `id`.
    pub fn preorder_from(&self, id: NodeId) -> Preorder<'_, L> {
        Preorder::new(self, id)
    }

    /// Post-order traversal from the root.
    pub fn postorder(&self) -> Postorder<'_, L> {
        Postorder::new(self, self.root)
    }

    /// Appends a fresh leaf child to `parent`, returning its identifier.
    pub fn add_child(&mut self, parent: NodeId, gen: &mut NodeIdGen, label: L) -> NodeId {
        let id = gen.fresh();
        self.add_child_with_id(parent, id, label)
            .expect("fresh id cannot collide");
        id
    }

    /// Appends a leaf child with an explicit identifier.
    pub fn add_child_with_id(
        &mut self,
        parent: NodeId,
        id: NodeId,
        label: L,
    ) -> Result<(), TreeError> {
        if !self.contains(parent) {
            return Err(TreeError::UnknownNode(parent));
        }
        if self.contains(id) {
            return Err(TreeError::DuplicateNodeId(id));
        }
        self.nodes.insert(
            id,
            Node {
                id,
                label,
                parent: Some(parent),
                children: Vec::new(),
            },
        );
        self.nodes
            .get_mut(&parent)
            .expect("parent checked above")
            .children
            .push(id);
        Ok(())
    }

    /// Grafts `sub` as the `position`-th child of `parent`.
    ///
    /// The subtree keeps its identifiers; the identifier sets must be
    /// disjoint.
    pub fn attach_subtree(
        &mut self,
        parent: NodeId,
        position: usize,
        sub: Tree<L>,
    ) -> Result<(), TreeError> {
        if !self.contains(parent) {
            return Err(TreeError::UnknownNode(parent));
        }
        let arity = self.node(parent).children.len();
        if position > arity {
            return Err(TreeError::PositionOutOfBounds {
                node: parent,
                position,
                arity,
            });
        }
        for id in sub.nodes.keys() {
            if self.contains(*id) {
                return Err(TreeError::DuplicateNodeId(*id));
            }
        }
        let sub_root = sub.root;
        for (id, mut node) in sub.nodes {
            if id == sub_root {
                node.parent = Some(parent);
            }
            self.nodes.insert(id, node);
        }
        self.nodes
            .get_mut(&parent)
            .expect("parent checked above")
            .children
            .insert(position, sub_root);
        Ok(())
    }

    /// Removes and returns the subtree rooted at `id`.
    pub fn detach_subtree(&mut self, id: NodeId) -> Result<Tree<L>, TreeError> {
        if !self.contains(id) {
            return Err(TreeError::UnknownNode(id));
        }
        if id == self.root {
            return Err(TreeError::CannotDetachRoot);
        }
        let parent = self.node(id).parent.expect("non-root has a parent");
        let p = self.nodes.get_mut(&parent).expect("parent exists");
        let pos = p
            .children
            .iter()
            .position(|&c| c == id)
            .expect("child listed in parent");
        p.children.remove(pos);

        let mut sub_nodes = HashMap::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let node = self.nodes.remove(&n).expect("descendant present");
            stack.extend(node.children.iter().copied());
            sub_nodes.insert(n, node);
        }
        sub_nodes.get_mut(&id).expect("subtree root present").parent = None;
        Ok(Tree {
            nodes: sub_nodes,
            root: id,
        })
    }

    /// A clone of the subtree rooted at `id` (identifiers preserved) — the
    /// paper's `t|_n`.
    pub fn subtree(&self, id: NodeId) -> Tree<L>
    where
        L: Clone,
    {
        let mut nodes = HashMap::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let mut node = self.node(n).clone();
            if n == id {
                node.parent = None;
            }
            stack.extend(node.children.iter().copied());
            nodes.insert(n, node);
        }
        Tree { nodes, root: id }
    }

    /// The number of nodes in the subtree rooted at `id`, `|t|_n|`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        let mut count = 0usize;
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            count += 1;
            stack.extend(self.node(n).children.iter().copied());
        }
        count
    }

    /// Depth of `id` (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the tree (a leaf-only tree has height 0).
    pub fn height(&self) -> usize {
        self.preorder().map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// Maps the label of every node, preserving identifiers and structure.
    pub fn map_labels<M>(&self, mut f: impl FnMut(NodeId, &L) -> M) -> Tree<M> {
        let nodes = self
            .nodes
            .iter()
            .map(|(&id, node)| {
                (
                    id,
                    Node {
                        id,
                        label: f(id, &node.label),
                        parent: node.parent,
                        children: node.children.clone(),
                    },
                )
            })
            .collect();
        Tree {
            nodes,
            root: self.root,
        }
    }

    /// An isomorphic copy of this tree in which every node receives a fresh
    /// identifier from `gen`.
    ///
    /// This is the "each time we use fresh nodes" operation of the paper's
    /// graph traversals: template fragments (minimal witnesses, insertlets)
    /// are instantiated with fresh identifiers on every insertion.
    pub fn with_fresh_ids(&self, gen: &mut NodeIdGen) -> Tree<L>
    where
        L: Clone,
    {
        fn rec<L: Clone>(
            src: &Tree<L>,
            n: NodeId,
            parent: Option<NodeId>,
            gen: &mut NodeIdGen,
            out: &mut HashMap<NodeId, Node<L>>,
        ) -> NodeId {
            let id = gen.fresh();
            let mut children = Vec::with_capacity(src.children(n).len());
            out.insert(
                id,
                Node {
                    id,
                    label: src.node(n).label.clone(),
                    parent,
                    children: Vec::new(),
                },
            );
            for &c in src.children(n) {
                children.push(rec(src, c, Some(id), gen, out));
            }
            out.get_mut(&id).expect("just inserted").children = children;
            id
        }
        let mut nodes = HashMap::new();
        let root = rec(self, self.root, None, gen, &mut nodes);
        Tree { nodes, root }
    }

    /// Identifier-oblivious structural equality (same shape, same labels).
    pub fn isomorphic(&self, other: &Tree<L>) -> bool
    where
        L: PartialEq,
    {
        fn rec<L: PartialEq>(a: &Tree<L>, an: NodeId, b: &Tree<L>, bn: NodeId) -> bool {
            let na = a.node(an);
            let nb = b.node(bn);
            na.label == nb.label
                && na.children.len() == nb.children.len()
                && na
                    .children
                    .iter()
                    .zip(nb.children.iter())
                    .all(|(&ca, &cb)| rec(a, ca, b, cb))
        }
        rec(self, self.root, other, other.root)
    }

    /// Checks internal invariants: parent/child agreement, reachability of
    /// exactly the node map from the root, no duplicate children.
    ///
    /// Intended for tests and debug assertions; all public mutators maintain
    /// these invariants.
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.node(self.root).parent.is_some() {
            return Err(TreeError::Inconsistent("root has a parent".into()));
        }
        let mut seen = HashMap::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if seen.insert(n, ()).is_some() {
                return Err(TreeError::Inconsistent(format!(
                    "node {n} reachable twice (cycle or shared child)"
                )));
            }
            let node = self
                .nodes
                .get(&n)
                .ok_or_else(|| TreeError::Inconsistent(format!("dangling child {n}")))?;
            for &c in &node.children {
                let child = self
                    .nodes
                    .get(&c)
                    .ok_or_else(|| TreeError::Inconsistent(format!("dangling child {c}")))?;
                if child.parent != Some(n) {
                    return Err(TreeError::Inconsistent(format!(
                        "child {c} does not point back to parent {n}"
                    )));
                }
                stack.push(c);
            }
        }
        if seen.len() != self.nodes.len() {
            return Err(TreeError::Inconsistent(format!(
                "{} nodes in map, {} reachable from root",
                self.nodes.len(),
                seen.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: usize) -> Sym {
        Sym::from_index(i)
    }

    fn chain3() -> (DocTree, NodeId, NodeId, NodeId) {
        // r(a(b))
        let mut gen = NodeIdGen::new();
        let mut t = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let a = t.add_child(r, &mut gen, sym(1));
        let b = t.add_child(a, &mut gen, sym(2));
        (t, r, a, b)
    }

    #[test]
    fn leaf_tree_basics() {
        let mut gen = NodeIdGen::new();
        let t: DocTree = Tree::leaf(&mut gen, sym(0));
        assert_eq!(t.size(), 1);
        assert_eq!(t.label(t.root()), sym(0));
        assert!(t.children(t.root()).is_empty());
        assert!(t.parent(t.root()).is_none());
        t.validate().unwrap();
    }

    #[test]
    fn add_children_preserves_order() {
        let mut gen = NodeIdGen::new();
        let mut t: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let c1 = t.add_child(r, &mut gen, sym(1));
        let c2 = t.add_child(r, &mut gen, sym(2));
        assert_eq!(t.children(r), &[c1, c2]);
        assert_eq!(t.child_word(r), vec![sym(1), sym(2)]);
        t.validate().unwrap();
    }

    #[test]
    fn subtree_preserves_ids_and_detaches_parent() {
        let (t, _, a, b) = chain3();
        let sub = t.subtree(a);
        assert_eq!(sub.size(), 2);
        assert_eq!(sub.root(), a);
        assert!(sub.parent(a).is_none());
        assert_eq!(sub.children(a), &[b]);
        sub.validate().unwrap();
    }

    #[test]
    fn detach_subtree_removes_descendants() {
        let (mut t, r, a, b) = chain3();
        let sub = t.detach_subtree(a).unwrap();
        assert_eq!(t.size(), 1);
        assert!(!t.contains(a));
        assert!(!t.contains(b));
        assert!(t.children(r).is_empty());
        assert_eq!(sub.size(), 2);
        t.validate().unwrap();
        sub.validate().unwrap();
    }

    #[test]
    fn detach_root_is_an_error() {
        let (mut t, r, _, _) = chain3();
        assert_eq!(t.detach_subtree(r), Err(TreeError::CannotDetachRoot));
    }

    #[test]
    fn attach_subtree_at_position() {
        let mut gen = NodeIdGen::new();
        let mut t: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t.root();
        let c1 = t.add_child(r, &mut gen, sym(1));
        let c3 = t.add_child(r, &mut gen, sym(3));
        let sub: DocTree = Tree::leaf(&mut gen, sym(2));
        let c2 = sub.root();
        t.attach_subtree(r, 1, sub).unwrap();
        assert_eq!(t.children(r), &[c1, c2, c3]);
        t.validate().unwrap();
    }

    #[test]
    fn attach_rejects_duplicate_ids() {
        let (mut t, r, a, _) = chain3();
        let dup: DocTree = Tree::leaf_with_id(a, sym(5));
        assert_eq!(
            t.attach_subtree(r, 0, dup),
            Err(TreeError::DuplicateNodeId(a))
        );
    }

    #[test]
    fn attach_rejects_bad_position() {
        let (mut t, r, _, _) = chain3();
        let mut gen = NodeIdGen::starting_at(100);
        let sub: DocTree = Tree::leaf(&mut gen, sym(4));
        assert!(matches!(
            t.attach_subtree(r, 5, sub),
            Err(TreeError::PositionOutOfBounds { .. })
        ));
    }

    #[test]
    fn equality_is_identifier_sensitive() {
        let mut g1 = NodeIdGen::new();
        let mut g2 = NodeIdGen::starting_at(10);
        let t1: DocTree = Tree::leaf(&mut g1, sym(0));
        let t2: DocTree = Tree::leaf(&mut g2, sym(0));
        assert_ne!(t1, t2);
        assert!(t1.isomorphic(&t2));
    }

    #[test]
    fn isomorphic_detects_label_and_shape_differences() {
        let (t1, ..) = chain3();
        let mut gen = NodeIdGen::starting_at(50);
        let mut t2: DocTree = Tree::leaf(&mut gen, sym(0));
        let r = t2.root();
        t2.add_child(r, &mut gen, sym(1));
        assert!(!t1.isomorphic(&t2));
    }

    #[test]
    fn subtree_size_and_depth() {
        let (t, r, a, b) = chain3();
        assert_eq!(t.subtree_size(r), 3);
        assert_eq!(t.subtree_size(a), 2);
        assert_eq!(t.subtree_size(b), 1);
        assert_eq!(t.depth(r), 0);
        assert_eq!(t.depth(b), 2);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn map_labels_preserves_structure() {
        let (t, r, a, _) = chain3();
        let mapped = t.map_labels(|_, &l| l.index() + 10);
        assert_eq!(mapped.size(), 3);
        assert_eq!(mapped.label(r), 10);
        assert_eq!(mapped.label(a), 11);
        assert_eq!(mapped.children(r), t.children(r));
    }

    #[test]
    fn with_fresh_ids_is_isomorphic_and_disjoint() {
        let (t, ..) = chain3();
        let mut gen = NodeIdGen::starting_at(1000);
        let u = t.with_fresh_ids(&mut gen);
        assert!(t.isomorphic(&u));
        assert_ne!(t, u);
        for id in u.node_ids() {
            assert!(!t.contains(id), "fresh copy reuses id {id}");
        }
        u.validate().unwrap();
        // Sibling order must be preserved, not reversed.
        let pre_t: Vec<_> = t.preorder().map(|n| t.label(n)).collect();
        let pre_u: Vec<_> = u.preorder().map(|n| u.label(n)).collect();
        assert_eq!(pre_t, pre_u);
    }

    #[test]
    fn clone_equals_original() {
        let (t, ..) = chain3();
        let u = t.clone();
        assert_eq!(t, u);
    }
}
