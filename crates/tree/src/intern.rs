//! Hash-consed structural interning of subtrees.
//!
//! An [`Interner`] assigns every *subtree shape* — a label together with
//! the ordered intern ids of its children — a stable [`InternId`]. Two
//! subtrees receive the same id **iff** they are structurally equal
//! (same labels in the same tree shape, node identifiers ignored), so
//! structural equality becomes one integer comparison and any
//! pure-function-of-structure memo can be keyed by `InternId` and shared
//! across documents.
//!
//! # Keying contract
//!
//! `InternId = intern(label, [InternId of child₁, …, InternId of childₖ])`
//!
//! computed bottom-up (postorder). Ids are allocated from a private
//! counter in first-come order: they are **stable for the lifetime of
//! the `Interner`** and meaningless outside it. Nothing about an id's
//! numeric value is structural — only *equality within one interner*
//! carries meaning, which is why engine-level caches that key by
//! `InternId` must live next to the interner that minted the ids.
//!
//! # Concurrency
//!
//! The table is sharded: a lookup takes one shard read lock on the hit
//! path and one shard write lock only when inserting a never-seen shape.
//! Concurrent interning of the same shape races benignly — the write
//! path re-checks under the exclusive lock, so all callers still agree
//! on a single id.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::alphabet::Sym;
use crate::slot::SlotMap;
use crate::tree::DocTree;
use crate::NodeId;

/// The stable identity of a subtree *shape* under one [`Interner`].
///
/// Equal ids ⟺ structurally equal subtrees (for ids minted by the same
/// interner). The numeric value is an allocation order, not a hash:
/// compare it, hash it, key maps by it — but never persist it or compare
/// ids across interners.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InternId(u64);

impl InternId {
    /// The raw id value (for diagnostics and dense-map keys).
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for InternId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "~{}", self.0)
    }
}

/// One subtree shape: the node label plus the interned children, in
/// order.
type ShapeKey = (u32, Box<[InternId]>);

const SHARD_COUNT: usize = 16;

/// A thread-safe hash-consing table mapping subtree shapes to
/// [`InternId`]s.
///
/// The module docs spell out the keying contract. The interner
/// only ever grows — retiring a document does not retire its shapes,
/// which is exactly what lets memos keyed by `InternId` outlive the
/// session that created them.
#[derive(Debug)]
pub struct Interner {
    shards: [RwLock<HashMap<ShapeKey, InternId>>; SHARD_COUNT],
    next: AtomicU64,
}

impl Default for Interner {
    fn default() -> Interner {
        Interner::new()
    }
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            next: AtomicU64::new(0),
        }
    }

    fn shard_of(label: Sym, children: &[InternId]) -> usize {
        let mut h = DefaultHasher::new();
        label.index().hash(&mut h);
        children.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }

    fn read_shard(&self, i: usize) -> RwLockReadGuard<'_, HashMap<ShapeKey, InternId>> {
        self.shards[i]
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write_shard(&self, i: usize) -> RwLockWriteGuard<'_, HashMap<ShapeKey, InternId>> {
        self.shards[i]
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The id of the shape `label(children…)`, allocating one on first
    /// sight. Children must already be interned (bottom-up order).
    pub fn intern(&self, label: Sym, children: &[InternId]) -> InternId {
        let shard = Self::shard_of(label, children);
        let key: ShapeKey = (label.index() as u32, children.into());
        if let Some(&id) = self.read_shard(shard).get(&key) {
            return id;
        }
        let mut map = self.write_shard(shard);
        // Re-check: another thread may have inserted between the locks.
        if let Some(&id) = map.get(&key) {
            return id;
        }
        let id = InternId(self.next.fetch_add(1, Ordering::Relaxed));
        map.insert(key, id);
        id
    }

    /// Looks up the shape `label(children…)` without allocating an id.
    pub fn lookup(&self, label: Sym, children: &[InternId]) -> Option<InternId> {
        let shard = Self::shard_of(label, children);
        let key: ShapeKey = (label.index() as u32, children.into());
        self.read_shard(shard).get(&key).copied()
    }

    /// Number of distinct shapes interned so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.read_len(s)).sum()
    }

    fn read_len(&self, s: &RwLock<HashMap<ShapeKey, InternId>>) -> usize {
        s.read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether no shape has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns every subtree of `doc` bottom-up, returning the id of
    /// each node's subtree keyed by the node's arena slot.
    pub fn intern_doc(&self, doc: &DocTree) -> SlotMap<InternId> {
        let mut ids = SlotMap::with_capacity(doc.size());
        let mut scratch = Vec::new();
        for n in doc.postorder() {
            let id = self.intern_node(doc, n, &ids, &mut scratch);
            ids.insert(doc.slot(n).expect("postorder yields live nodes"), id);
        }
        ids
    }

    /// Interns the subtree rooted at `n`, reading the children's ids
    /// from `ids` (they must already be present — postorder discipline).
    pub fn intern_node(
        &self,
        doc: &DocTree,
        n: NodeId,
        ids: &SlotMap<InternId>,
        scratch: &mut Vec<InternId>,
    ) -> InternId {
        scratch.clear();
        for &c in doc.children(n) {
            let cslot = doc.slot(c).expect("child of a live node is live");
            scratch.push(*ids.get(cslot).expect("children interned first"));
        }
        self.intern(doc.label(n), scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::parse_term_with_ids;
    use crate::{Alphabet, NodeIdGen};

    fn doc(alpha: &mut Alphabet, start: u64, term: &str) -> DocTree {
        let mut gen = NodeIdGen::starting_at(start);
        parse_term_with_ids(alpha, &mut gen, term).unwrap()
    }

    #[test]
    fn structurally_equal_subtrees_coalesce() {
        let mut alpha = Alphabet::new();
        let interner = Interner::new();
        // same shape, disjoint node identifiers
        let t1 = doc(&mut alpha, 0, "r#0(a#1, d#2(c#3), a#4)");
        let t2 = doc(&mut alpha, 100, "r#100(a#101, d#102(c#103), a#104)");
        let m1 = interner.intern_doc(&t1);
        let m2 = interner.intern_doc(&t2);
        assert_eq!(
            m1[t1.slot(t1.root()).unwrap()],
            m2[t2.slot(t2.root()).unwrap()],
            "identical shapes must share one id"
        );
        // the two `a` leaves inside one document coalesce too
        let a1 = t1.slot(crate::NodeId(1)).unwrap();
        let a4 = t1.slot(crate::NodeId(4)).unwrap();
        assert_eq!(m1[a1], m1[a4]);
        // interning a document adds no shapes the other didn't
        assert_eq!(interner.len(), 4, "r(...), a, d(c), c");
    }

    #[test]
    fn distinct_shapes_get_distinct_ids() {
        let mut alpha = Alphabet::new();
        let interner = Interner::new();
        let t = doc(&mut alpha, 0, "r#0(a#1, b#2, a#3(b#4))");
        let m = interner.intern_doc(&t);
        let slot = |id: u64| t.slot(crate::NodeId(id)).unwrap();
        // leaf a vs leaf b
        assert_ne!(m[slot(1)], m[slot(2)]);
        // leaf a vs a(b): same label, different children
        assert_ne!(m[slot(1)], m[slot(3)]);
        // b leaves coalesce wherever they sit
        assert_eq!(m[slot(2)], m[slot(4)]);
    }

    #[test]
    fn lookup_never_allocates() {
        let mut alpha = Alphabet::new();
        let interner = Interner::new();
        let a = alpha.intern("a");
        assert_eq!(interner.lookup(a, &[]), None);
        let id = interner.intern(a, &[]);
        assert_eq!(interner.lookup(a, &[]), Some(id));
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        use std::sync::Arc;
        let mut alpha = Alphabet::new();
        let syms: Vec<Sym> = (0..8).map(|i| alpha.intern(&format!("s{i}"))).collect();
        let interner = Arc::new(Interner::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let interner = Arc::clone(&interner);
                let syms = syms.clone();
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for &s in &syms {
                        let leaf = interner.intern(s, &[]);
                        let pair = interner.intern(s, &[leaf, leaf]);
                        ids.push((leaf, pair));
                    }
                    ids
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "every thread sees the same ids");
        }
        assert_eq!(interner.len(), 16, "8 leaves + 8 pairs, no duplicates");
    }
}
