//! Fluent construction of trees with explicit identifiers.
//!
//! [`TreeBuilder`] is the programmatic counterpart of
//! [`crate::parse_term_with_ids`]: it builds trees node by node while
//! keeping the enclosing [`NodeIdGen`] consistent. It is mainly used by the
//! paper-figure fixtures and the workload generators.

use crate::error::TreeError;
use crate::node::{NodeId, NodeIdGen};
use crate::tree::Tree;

/// Builder for a [`Tree`] rooted at a given node.
///
/// # Example
/// ```
/// use xvu_tree::{Alphabet, NodeIdGen, TreeBuilder};
///
/// let mut alpha = Alphabet::new();
/// let (r, a, b) = (alpha.intern("r"), alpha.intern("a"), alpha.intern("b"));
/// let mut gen = NodeIdGen::new();
/// let mut builder = TreeBuilder::new(&mut gen, r);
/// let root = builder.root();
/// builder.child(root, a).unwrap();
/// let nb = builder.child(root, b).unwrap();
/// builder.child(nb, a).unwrap();
/// let t = builder.finish();
/// assert_eq!(t.size(), 4);
/// ```
pub struct TreeBuilder<'g, L> {
    gen: &'g mut NodeIdGen,
    tree: Tree<L>,
}

impl<'g, L> TreeBuilder<'g, L> {
    /// Starts a tree with a fresh root labeled `label`.
    pub fn new(gen: &'g mut NodeIdGen, label: L) -> TreeBuilder<'g, L> {
        let tree = Tree::leaf(gen, label);
        TreeBuilder { gen, tree }
    }

    /// Starts a tree with an explicit root identifier.
    pub fn with_root_id(gen: &'g mut NodeIdGen, id: NodeId, label: L) -> TreeBuilder<'g, L> {
        gen.bump_past(id);
        TreeBuilder {
            gen,
            tree: Tree::leaf_with_id(id, label),
        }
    }

    /// The root identifier of the tree under construction.
    pub fn root(&self) -> NodeId {
        self.tree.root()
    }

    /// Appends a fresh child under `parent`, returning its identifier.
    pub fn child(&mut self, parent: NodeId, label: L) -> Result<NodeId, TreeError> {
        if !self.tree.contains(parent) {
            return Err(TreeError::UnknownNode(parent));
        }
        Ok(self.tree.add_child(parent, self.gen, label))
    }

    /// Appends a child with an explicit identifier under `parent`.
    pub fn child_with_id(
        &mut self,
        parent: NodeId,
        id: NodeId,
        label: L,
    ) -> Result<NodeId, TreeError> {
        self.tree.add_child_with_id(parent, id, label)?;
        self.gen.bump_past(id);
        Ok(id)
    }

    /// Grafts a fully built subtree as the last child of `parent`.
    pub fn graft(&mut self, parent: NodeId, sub: Tree<L>) -> Result<NodeId, TreeError> {
        let sub_root = sub.root();
        let pos = self.tree.children(parent).len();
        self.tree.attach_subtree(parent, pos, sub)?;
        Ok(sub_root)
    }

    /// Read-only access to the tree under construction.
    pub fn tree(&self) -> &Tree<L> {
        &self.tree
    }

    /// Finishes construction and returns the tree.
    pub fn finish(self) -> Tree<L> {
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Sym;

    fn sym(i: usize) -> Sym {
        Sym::from_index(i)
    }

    #[test]
    fn builds_nested_tree() {
        let mut gen = NodeIdGen::new();
        let mut b = TreeBuilder::new(&mut gen, sym(0));
        let r = b.root();
        let a = b.child(r, sym(1)).unwrap();
        b.child(a, sym(2)).unwrap();
        b.child(r, sym(3)).unwrap();
        let t = b.finish();
        assert_eq!(t.size(), 4);
        assert_eq!(t.children(r).len(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn explicit_ids_bump_generator() {
        let mut gen = NodeIdGen::new();
        let mut b = TreeBuilder::with_root_id(&mut gen, NodeId(5), sym(0));
        let r = b.root();
        b.child_with_id(r, NodeId(9), sym(1)).unwrap();
        let fresh = b.child(r, sym(2)).unwrap();
        assert!(fresh.0 > 9);
    }

    #[test]
    fn child_of_unknown_parent_fails() {
        let mut gen = NodeIdGen::new();
        let mut b = TreeBuilder::new(&mut gen, sym(0));
        let err = b.child(NodeId(999), sym(1)).unwrap_err();
        assert_eq!(err, TreeError::UnknownNode(NodeId(999)));
    }

    #[test]
    fn graft_attaches_subtree() {
        let mut gen = NodeIdGen::new();
        let sub: Tree<Sym> = Tree::leaf(&mut gen, sym(7));
        let sub_root = sub.root();
        let mut b = TreeBuilder::new(&mut gen, sym(0));
        let r = b.root();
        let attached = b.graft(r, sub).unwrap();
        assert_eq!(attached, sub_root);
        let t = b.finish();
        assert_eq!(t.children(r), &[sub_root]);
    }
}
