//! Stateful property tests: random sequences of tree operations maintain
//! every structural invariant.

use proptest::prelude::*;
use xvu_tree::{Alphabet, NodeIdGen, Sym, Tree};

/// One mutation step, interpreted against the current tree.
#[derive(Clone, Debug)]
enum Op {
    /// Add a leaf child under the node at (preorder index % size).
    AddChild(usize, usize),
    /// Detach the subtree at (preorder index % size), if not the root,
    /// and reattach it under the root at position 0.
    DetachReattach(usize),
    /// Detach the subtree at (preorder index % size) and drop it.
    DetachDrop(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), 0usize..5).prop_map(|(n, l)| Op::AddChild(n, l)),
        any::<usize>().prop_map(Op::DetachReattach),
        any::<usize>().prop_map(Op::DetachDrop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_op_sequences_keep_invariants(ops in prop::collection::vec(arb_op(), 0..40)) {
        let alpha = Alphabet::from_labels(["a", "b", "c", "d", "e"]);
        let mut gen = NodeIdGen::new();
        let mut tree = Tree::leaf(&mut gen, alpha.get("a").unwrap());
        let mut dropped = 0usize;
        let mut added = 0usize;

        for op in &ops {
            let pre: Vec<_> = tree.preorder().collect();
            match *op {
                Op::AddChild(ix, l) => {
                    let parent = pre[ix % pre.len()];
                    tree.add_child(parent, &mut gen, Sym::from_index(l));
                    added += 1;
                }
                Op::DetachReattach(ix) => {
                    let n = pre[ix % pre.len()];
                    if n != tree.root() {
                        let sub = tree.detach_subtree(n).unwrap();
                        let root = tree.root();
                        tree.attach_subtree(root, 0, sub).unwrap();
                    }
                }
                Op::DetachDrop(ix) => {
                    let n = pre[ix % pre.len()];
                    if n != tree.root() {
                        let sub = tree.detach_subtree(n).unwrap();
                        sub.validate().unwrap();
                        dropped += sub.size();
                    }
                }
            }
            tree.validate().unwrap();
        }

        // conservation: initial 1 + added − dropped = final size
        prop_assert_eq!(1 + added - dropped, tree.size());
        // traversals agree with size
        prop_assert_eq!(tree.preorder().count(), tree.size());
        prop_assert_eq!(tree.postorder().count(), tree.size());
        // subtree sizes at the root match the whole
        prop_assert_eq!(tree.subtree_size(tree.root()), tree.size());
        // a full clone round-trips equality
        let copy = tree.clone();
        prop_assert_eq!(&copy, &tree);
        // fresh-id copies stay isomorphic
        let fresh = tree.with_fresh_ids(&mut gen);
        prop_assert!(fresh.isomorphic(&tree));
        fresh.validate().unwrap();
    }

    /// `subtree` + `detach_subtree` agree (same shape and identifiers).
    #[test]
    fn subtree_and_detach_agree(ops in prop::collection::vec(arb_op(), 0..25), pick in any::<usize>()) {
        let alpha = Alphabet::from_labels(["a", "b", "c"]);
        let mut gen = NodeIdGen::new();
        let mut tree = Tree::leaf(&mut gen, alpha.get("a").unwrap());
        for op in &ops {
            let pre: Vec<_> = tree.preorder().collect();
            if let Op::AddChild(ix, l) = *op {
                let parent = pre[ix % pre.len()];
                tree.add_child(parent, &mut gen, Sym::from_index(l % 3));
            }
        }
        let pre: Vec<_> = tree.preorder().collect();
        let n = pre[pick % pre.len()];
        if n != tree.root() {
            let copied = tree.subtree(n);
            let mut tree2 = tree.clone();
            let detached = tree2.detach_subtree(n).unwrap();
            prop_assert_eq!(copied, detached);
        }
    }
}
