//! Stateful property tests: random sequences of tree operations maintain
//! every structural invariant, and the arena-backed storage is
//! observationally equivalent to the mathematical node-map semantics.

use proptest::prelude::*;
use xvu_tree::{parse_term_with_ids, to_term_with_ids, Alphabet, NodeId, NodeIdGen, Sym, Tree};

/// One mutation step, interpreted against the current tree.
#[derive(Clone, Debug)]
enum Op {
    /// Add a leaf child under the node at (preorder index % size).
    AddChild(usize, usize),
    /// Detach the subtree at (preorder index % size), if not the root,
    /// and reattach it under the root at position 0.
    DetachReattach(usize),
    /// Detach the subtree at (preorder index % size) and drop it.
    DetachDrop(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), 0usize..5).prop_map(|(n, l)| Op::AddChild(n, l)),
        any::<usize>().prop_map(Op::DetachReattach),
        any::<usize>().prop_map(Op::DetachDrop),
    ]
}

/// Interprets an op sequence into a tree (shared by the observational-
/// equivalence properties).
fn build_by_ops(ops: &[Op]) -> Tree<Sym> {
    let mut gen = NodeIdGen::new();
    let mut tree = Tree::leaf(&mut gen, Sym::from_index(0));
    for op in ops {
        let pre: Vec<_> = tree.preorder().collect();
        match *op {
            Op::AddChild(ix, l) => {
                let parent = pre[ix % pre.len()];
                tree.add_child(parent, &mut gen, Sym::from_index(l));
            }
            Op::DetachReattach(ix) => {
                let n = pre[ix % pre.len()];
                if n != tree.root() {
                    let sub = tree.detach_subtree(n).unwrap();
                    let root = tree.root();
                    tree.attach_subtree(root, 0, sub).unwrap();
                }
            }
            Op::DetachDrop(ix) => {
                let n = pre[ix % pre.len()];
                if n != tree.root() {
                    tree.detach_subtree(n).unwrap();
                }
            }
        }
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_op_sequences_keep_invariants(ops in prop::collection::vec(arb_op(), 0..40)) {
        let alpha = Alphabet::from_labels(["a", "b", "c", "d", "e"]);
        let mut gen = NodeIdGen::new();
        let mut tree = Tree::leaf(&mut gen, alpha.get("a").unwrap());
        let mut dropped = 0usize;
        let mut added = 0usize;

        for op in &ops {
            let pre: Vec<_> = tree.preorder().collect();
            match *op {
                Op::AddChild(ix, l) => {
                    let parent = pre[ix % pre.len()];
                    tree.add_child(parent, &mut gen, Sym::from_index(l));
                    added += 1;
                }
                Op::DetachReattach(ix) => {
                    let n = pre[ix % pre.len()];
                    if n != tree.root() {
                        let sub = tree.detach_subtree(n).unwrap();
                        let root = tree.root();
                        tree.attach_subtree(root, 0, sub).unwrap();
                    }
                }
                Op::DetachDrop(ix) => {
                    let n = pre[ix % pre.len()];
                    if n != tree.root() {
                        let sub = tree.detach_subtree(n).unwrap();
                        sub.validate().unwrap();
                        dropped += sub.size();
                    }
                }
            }
            tree.validate().unwrap();
        }

        // conservation: initial 1 + added − dropped = final size
        prop_assert_eq!(1 + added - dropped, tree.size());
        // traversals agree with size
        prop_assert_eq!(tree.preorder().count(), tree.size());
        prop_assert_eq!(tree.postorder().count(), tree.size());
        // subtree sizes at the root match the whole
        prop_assert_eq!(tree.subtree_size(tree.root()), tree.size());
        // a full clone round-trips equality
        let copy = tree.clone();
        prop_assert_eq!(&copy, &tree);
        // fresh-id copies stay isomorphic
        let fresh = tree.with_fresh_ids(&mut gen);
        prop_assert!(fresh.isomorphic(&tree));
        fresh.validate().unwrap();
    }

    /// Traversal orders match the recursive definition of pre-/post-order
    /// (node before/after its children, children in sibling order) —
    /// arena layout must never leak into visit order.
    #[test]
    fn traversals_match_recursive_definition(ops in prop::collection::vec(arb_op(), 0..40)) {
        fn pre_rec(t: &Tree<Sym>, n: NodeId, out: &mut Vec<NodeId>) {
            out.push(n);
            for &c in t.children(n) {
                pre_rec(t, c, out);
            }
        }
        fn post_rec(t: &Tree<Sym>, n: NodeId, out: &mut Vec<NodeId>) {
            for &c in t.children(n) {
                post_rec(t, c, out);
            }
            out.push(n);
        }
        let tree = build_by_ops(&ops);
        let mut pre_expected = Vec::new();
        pre_rec(&tree, tree.root(), &mut pre_expected);
        let mut post_expected = Vec::new();
        post_rec(&tree, tree.root(), &mut post_expected);
        prop_assert_eq!(tree.preorder().collect::<Vec<_>>(), pre_expected);
        prop_assert_eq!(tree.postorder().collect::<Vec<_>>(), post_expected);
    }

    /// Node identifiers survive clone and edit cycles: whatever subtree
    /// shuffling happens, every surviving node keeps its id, label, and
    /// parent/child structure.
    #[test]
    fn node_ids_survive_clone_and_edit_cycles(ops in prop::collection::vec(arb_op(), 0..40)) {
        let tree = build_by_ops(&ops);
        // clone: identical observation
        let cloned = tree.clone();
        prop_assert_eq!(&cloned, &tree);
        // edit cycle: detach a non-root subtree and reattach it where it
        // was — all identifiers, labels, and relations are preserved
        let mut cycled = tree.clone();
        let pre: Vec<_> = cycled.preorder().collect();
        for &n in &pre {
            if n == cycled.root() {
                continue;
            }
            let parent = cycled.parent(n).unwrap();
            let pos = cycled.children(parent).iter().position(|&c| c == n).unwrap();
            let sub = cycled.detach_subtree(n).unwrap();
            cycled.attach_subtree(parent, pos, sub).unwrap();
            break;
        }
        cycled.validate().unwrap();
        prop_assert_eq!(&cycled, &tree);
        for n in tree.node_ids() {
            prop_assert!(cycled.contains(n));
            prop_assert_eq!(cycled.label(n), tree.label(n));
            prop_assert_eq!(cycled.parent(n), tree.parent(n));
            prop_assert_eq!(cycled.children(n), tree.children(n));
        }
    }

    /// `isomorphic` is invariant under identifier remapping, while `==`
    /// is identifier-sensitive.
    #[test]
    fn isomorphic_is_invariant_under_id_remapping(ops in prop::collection::vec(arb_op(), 0..40), offset in 1u64..1_000_000) {
        let tree = build_by_ops(&ops);
        // remap every id by a constant offset beyond the used range
        let base = tree.node_ids().map(|n| n.0).max().unwrap() + offset;
        fn rebuild(src: &Tree<Sym>, n: NodeId, base: u64, out: &mut Tree<Sym>, out_n: NodeId) {
            for &c in src.children(n) {
                let mapped = NodeId(base + c.0);
                out.add_child_with_id(out_n, mapped, src.label(c)).unwrap();
                rebuild(src, c, base, out, mapped);
            }
        }
        let root_mapped = NodeId(base + tree.root().0);
        let mut remapped = Tree::leaf_with_id(root_mapped, tree.label(tree.root()));
        rebuild(&tree, tree.root(), base, &mut remapped, root_mapped);
        remapped.validate().unwrap();
        prop_assert!(tree.isomorphic(&remapped));
        prop_assert!(remapped.isomorphic(&tree));
        prop_assert_ne!(&remapped, &tree);
    }

    /// Serialization round-trips are identity: the textual `label#id` term
    /// form captures the full observable state (identifiers, labels,
    /// structure, sibling order), so parse ∘ print = id whatever the
    /// internal arena layout.
    #[test]
    fn term_round_trip_is_identity(ops in prop::collection::vec(arb_op(), 0..40)) {
        let mut alpha = Alphabet::from_labels(["a", "b", "c", "d", "e"]);
        let tree = build_by_ops(&ops);
        let printed = to_term_with_ids(&tree, &alpha);
        let mut gen = NodeIdGen::new();
        let reparsed = parse_term_with_ids(&mut alpha, &mut gen, &printed).unwrap();
        prop_assert_eq!(&reparsed, &tree);
        prop_assert_eq!(to_term_with_ids(&reparsed, &alpha), printed);
    }

    /// `subtree` + `detach_subtree` agree (same shape and identifiers).
    #[test]
    fn subtree_and_detach_agree(ops in prop::collection::vec(arb_op(), 0..25), pick in any::<usize>()) {
        let alpha = Alphabet::from_labels(["a", "b", "c"]);
        let mut gen = NodeIdGen::new();
        let mut tree = Tree::leaf(&mut gen, alpha.get("a").unwrap());
        for op in &ops {
            let pre: Vec<_> = tree.preorder().collect();
            if let Op::AddChild(ix, l) = *op {
                let parent = pre[ix % pre.len()];
                tree.add_child(parent, &mut gen, Sym::from_index(l % 3));
            }
        }
        let pre: Vec<_> = tree.preorder().collect();
        let n = pre[pick % pre.len()];
        if n != tree.root() {
            let copied = tree.subtree(n);
            let mut tree2 = tree.clone();
            let detached = tree2.detach_subtree(n).unwrap();
            prop_assert_eq!(copied, detached);
        }
    }
}
