//! End-to-end daemon tests over real TCP: full document lifecycle,
//! error replies that keep the connection alive, and drain-on-shutdown.

use std::net::TcpListener;
use xvu_dtd::parse_dtd;
use xvu_propagate::Engine;
use xvu_server::{Client, ClientError, Server, ServerConfig};
use xvu_tree::Alphabet;
use xvu_view::parse_annotation;

/// DTD `r -> (a.h?)*` with `h` hidden: view of `r(a, h)` is `r(a)`.
fn engine() -> Engine {
    let mut alpha = Alphabet::new();
    let dtd = parse_dtd(&mut alpha, "r -> (a.h?)*").unwrap();
    let ann = parse_annotation(&mut alpha, "hide r h").unwrap();
    Engine::builder()
        .alphabet(alpha)
        .dtd(dtd)
        .annotation(ann)
        .build()
        .unwrap()
}

fn small_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 4,
        pool_capacity: 1,
        retry_after_ms: 1,
    }
}

#[test]
fn daemon_serves_a_full_document_lifecycle_over_tcp() {
    let engines = [engine()];
    let server = Server::new(&engines, small_config());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.serve_listener(listener).unwrap());

        let mut c = Client::connect(&addr).unwrap();
        c.load(7, 0, "r#0(a#1, h#2)").unwrap();
        assert_eq!(c.open(7).unwrap(), "r#0(a#1)");

        // insert a view node; the propagation must also insert in the source
        let reply = c.propagate(7, "nop:r#0(nop:a#1, ins:a#5)").unwrap();
        assert!(reply.cost > 0, "insertion has positive cost");
        assert!(reply.count >= 1);
        assert!(reply.script.contains("ins:a"), "got {}", reply.script);

        // the read-only verbs agree with the propagate fingerprint
        assert_eq!(
            c.count(7, "nop:r#0(nop:a#1, ins:a#5)").unwrap(),
            reply.count
        );
        c.verify(7, "nop:r#0(nop:a#1, ins:a#5)", &reply.script)
            .unwrap();

        c.commit(7).unwrap();
        // after commit the update is already applied: reopening shows both a's
        c.close_doc(7).unwrap();
        let view = c.open(7).unwrap();
        assert_eq!(view.matches('a').count(), 2, "committed view: {view}");

        let stats = c.stats().unwrap();
        assert!(stats.contains("\"propagate\":1"), "{stats}");
        assert!(stats.contains("\"write_latency\""), "{stats}");

        let finale = c.shutdown().unwrap();
        assert!(finale.contains("\"requests\""), "{finale}");
        let report = daemon.join().unwrap();
        assert!(report.drained_clean);
        assert!(report.stats.total_requests() >= 9);
    });
}

#[test]
fn error_replies_keep_the_connection_usable() {
    let engines = [engine()];
    let server = Server::new(&engines, small_config());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.serve_listener(listener).unwrap());

        let mut c = Client::connect(&addr).unwrap();
        // every malformed or out-of-contract request earns a typed error…
        assert!(
            matches!(c.open(99), Err(ClientError::Server(_))),
            "unknown doc"
        );
        assert!(
            matches!(c.load(1, 5, "r#0"), Err(ClientError::Server(_))),
            "family out of range"
        );
        assert!(
            matches!(c.load(1, 0, "r#0(zebra#1)"), Err(ClientError::Server(_))),
            "label outside the family alphabet"
        );
        assert!(
            matches!(c.load(1, 0, "r#0(h#1)"), Err(ClientError::Server(_))),
            "document violates the DTD"
        );
        assert!(
            matches!(c.commit(1), Err(ClientError::Server(_))),
            "nothing pending"
        );

        // …and the same connection still serves valid requests afterwards
        c.load(1, 0, "r#0(a#1)").unwrap();
        assert_eq!(c.open(1).unwrap(), "r#0(a#1)");
        assert!(
            matches!(
                c.propagate(1, "nop:r#0(del:a#1, what"),
                Err(ClientError::Server(_))
            ),
            "bad script term"
        );
        let reply = c.propagate(1, "nop:r#0(nop:a#1)").unwrap();
        assert_eq!(reply.cost, 0, "identity update costs nothing");

        c.shutdown().unwrap();
        let report = daemon.join().unwrap();
        assert!(report.drained_clean);
        assert!(report.stats.errors >= 6);
    });
}

#[test]
fn lru_pool_of_one_evicts_transparently_between_documents() {
    // pool capacity 1 forces an eviction on every document switch; the
    // replies must be indistinguishable from a large pool
    let engines = [engine()];
    let server = Server::new(&engines, small_config());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.serve_listener(listener).unwrap());
        let mut c = Client::connect(&addr).unwrap();
        c.load(1, 0, "r#0(a#1, h#2)").unwrap();
        c.load(2, 0, "r#0(a#1)").unwrap();
        for round in 0..3 {
            // alternating documents evicts the other session each time
            let r1 = c.propagate(1, "nop:r#0(nop:a#1, ins:a#9)").unwrap();
            assert!(r1.cost > 0, "round {round}");
            let r2 = c.propagate(2, "nop:r#0(nop:a#1)").unwrap();
            assert_eq!(r2.cost, 0, "round {round}");
        }
        c.shutdown().unwrap();
        let report = daemon.join().unwrap();
        assert!(
            report.stats.evictions >= 4,
            "expected steady eviction churn, saw {}",
            report.stats.evictions
        );
        assert!(report.drained_clean);
    });
}

#[test]
fn shared_memo_cache_survives_eviction_and_spans_documents() {
    // Pool capacity 1: every document switch evicts the resident session
    // and drops its slot-keyed memos. The engine-owned shared tier must
    // keep serving by structure regardless — the second document has the
    // same shape under different identifiers, so its cold session warms
    // straight from memos the first session published.
    let engines = [engine()];
    let server = Server::new(&engines, small_config());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.serve_listener(listener).unwrap());
        let mut c = Client::connect(&addr).unwrap();
        c.load(1, 0, "r#0(a#1, h#2, a#3)").unwrap();
        c.load(2, 0, "r#10(a#11, h#12, a#13)").unwrap();
        // doc 1 publishes; checking out doc 2 evicts doc 1's session
        assert_eq!(c.propagate(1, "nop:r#0(nop:a#1, nop:a#3)").unwrap().cost, 0);
        assert_eq!(
            c.propagate(2, "nop:r#10(nop:a#11, nop:a#13)").unwrap().cost,
            0
        );
        // …and coming back to doc 1 after ITS eviction re-warms from the
        // shared tier too (the session-local memos are long gone)
        assert_eq!(c.propagate(1, "nop:r#0(nop:a#1, nop:a#3)").unwrap().cost, 0);
        let stats = c.stats().unwrap();
        assert!(stats.contains("\"shared_cache\""), "{stats}");
        c.shutdown().unwrap();
        let report = daemon.join().unwrap();
        assert!(report.drained_clean);
        assert!(report.stats.evictions >= 2, "{:?}", report.stats.evictions);
        assert!(
            report.stats.shared_hits > 0,
            "eviction must not empty the shared tier: {:?}",
            report.stats
        );
        assert!(report.stats.shared_entries > 0);
        assert!(report.stats.shared_hit_rate() > 0.0);
    });
}

#[test]
fn concurrent_eviction_write_back_never_resurrects_stale_state() {
    // Regression test for the store↔pool coherence race: with a pool of
    // one, every checkout evicts the *other* client's document, so the
    // window between "session removed from the pool" and "write-back
    // lands in the store" is exercised on nearly every request. A stale
    // reopen shows up as `In(S) differs from the view` on the very next
    // propagate, or as a lost committed insert in the final view.
    let engines = [engine()];
    let server = Server::new(
        &engines,
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            pool_capacity: 1,
            retry_after_ms: 1,
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    const ROUNDS: usize = 12;
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.serve_listener(listener).unwrap());
        {
            let mut c = Client::connect(&addr).unwrap();
            c.load(1, 0, "r#0(a#1, h#2)").unwrap();
            c.load(2, 0, "r#0(a#1)").unwrap();
        }
        let worker = |doc: u64| {
            let addr = addr.clone();
            move || {
                let mut c = Client::connect(&addr).unwrap();
                for round in 0..ROUNDS {
                    // read the live view and grow it by one fresh `a`
                    let view = c.open(doc).unwrap();
                    let children = view
                        .strip_prefix("r#0(")
                        .and_then(|v| v.strip_suffix(')'))
                        .unwrap_or_else(|| panic!("doc {doc} view {view}"));
                    let mut update = String::from("nop:r#0(");
                    for child in children.split(", ") {
                        update.push_str("nop:");
                        update.push_str(child);
                        update.push_str(", ");
                    }
                    update.push_str(&format!("ins:a#{})", 1000 + doc * 500 + round as u64));
                    let reply = c.propagate(doc, &update).unwrap_or_else(|e| {
                        panic!("doc {doc} round {round}: stale session state: {e}")
                    });
                    assert!(reply.cost > 0, "doc {doc} round {round}");
                    c.commit(doc).unwrap();
                }
            }
        };
        let a = scope.spawn(worker(1));
        let b = scope.spawn(worker(2));
        let (ra, rb) = (a.join(), b.join());
        if let Err(panic) = ra.and(rb) {
            // release the daemon thread before propagating the failure,
            // or the scope hangs joining the still-serving daemon
            if let Ok(mut c) = Client::connect(&addr) {
                let _ = c.shutdown();
            }
            std::panic::resume_unwind(panic);
        }

        // every committed insert survived the eviction churn
        let mut c = Client::connect(&addr).unwrap();
        for (doc, seed_a) in [(1u64, 1), (2u64, 1)] {
            let view = c.open(doc).unwrap();
            assert_eq!(
                view.matches('a').count(),
                seed_a + ROUNDS,
                "doc {doc} lost commits: {view}"
            );
        }
        c.shutdown().unwrap();
        let report = daemon.join().unwrap();
        assert!(report.drained_clean);
        assert!(
            report.stats.evictions >= ROUNDS as u64,
            "pool of one under two clients must churn: {} evictions",
            report.stats.evictions
        );
    });
}
