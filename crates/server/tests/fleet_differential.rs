//! Small fleet differential: the daemon must replay a generated fleet
//! plan with byte-identical fingerprints, under a pool small enough to
//! force evictions mid-lifecycle. The full-scale run (≥ 1k requests,
//! ≥ 32 documents) lives in the workspace-level `tests/serving.rs`.

use xvu_server::{run_fleet, ServerConfig};
use xvu_workload::fleet::{generate_fleet, FleetConfig};

fn small_plan_config(seed: u64) -> FleetConfig {
    FleetConfig {
        docs: 8,
        families: 3,
        clients: 3,
        updates: 24,
        seed,
        ..FleetConfig::default()
    }
}

#[test]
fn daemon_replay_matches_direct_sessions_with_tiny_pool() {
    let plan = generate_fleet(&small_plan_config(0xD1FF));
    assert!(plan.request_count() > 0);
    // pool of 2 across 8 documents: evictions and id-floor restoration
    // are exercised constantly
    let report = run_fleet(
        &plan,
        ServerConfig {
            workers: 2,
            queue_capacity: 8,
            pool_capacity: 2,
            retry_after_ms: 1,
        },
    )
    .unwrap();
    assert!(
        report.mismatches.is_empty(),
        "daemon diverged from direct sessions:\n{}",
        report.mismatches.join("\n")
    );
    assert_eq!(report.protocol_errors, 0);
    assert!(report.drained_clean);
    // the driver also issues one load per corpus document
    assert_eq!(
        report.requests as usize,
        plan.request_count() + plan.docs.len()
    );
    assert!(
        report.stats.evictions > 0,
        "a pool of 2 over 8 docs must evict"
    );
}

#[test]
fn daemon_replay_matches_direct_sessions_with_roomy_pool() {
    let plan = generate_fleet(&small_plan_config(0xD1FF));
    let report = run_fleet(
        &plan,
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            pool_capacity: 16,
            retry_after_ms: 1,
        },
    )
    .unwrap();
    assert!(
        report.mismatches.is_empty(),
        "daemon diverged from direct sessions:\n{}",
        report.mismatches.join("\n")
    );
    assert_eq!(report.protocol_errors, 0);
    assert!(report.drained_clean);
}
