//! Daemon observability: lock-free latency histograms and counters,
//! snapshotted into a [`StatsSnapshot`] for the `stats` verb, the
//! shutdown report, and `bench_serve`.

use crate::protocol::Verb;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of geometric latency buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds, so 32 buckets span 1 µs to ~71 min.
const BUCKETS: usize = 32;

/// A fixed-bucket geometric latency histogram, safe for concurrent
/// recording (relaxed atomics; stats are advisory, not a synchronisation
/// channel).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// A zeroed histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one latency sample.
    pub fn record(&self, d: Duration) {
        let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1);
        let idx = (63 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.each_ref().map(|b| b.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
        }
    }
}

/// A frozen [`Histogram`], with quantile estimation.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_micros: u64,
}

impl HistogramSnapshot {
    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in milliseconds (0 with no samples).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_micros as f64 / self.count as f64 / 1000.0
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in milliseconds,
    /// reporting the **upper bound** of the bucket holding the quantile
    /// sample (a conservative, never-optimistic estimate). 0 with no
    /// samples.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return (1u64 << (i + 1)) as f64 / 1000.0;
            }
        }
        (1u64 << BUCKETS) as f64 / 1000.0
    }
}

/// The request verbs the daemon counts individually, in stats order.
pub(crate) const COUNTED_VERBS: [Verb; 11] = [
    Verb::Hello,
    Verb::Load,
    Verb::Open,
    Verb::Propagate,
    Verb::Verify,
    Verb::Count,
    Verb::Commit,
    Verb::CloseDoc,
    Verb::Stats,
    Verb::Shutdown,
    Verb::Snapshot,
];

/// Live daemon metrics. One instance per [`crate::Server`], shared by
/// every worker and connection thread.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: [AtomicU64; COUNTED_VERBS.len()],
    errors: AtomicU64,
    /// Writes pushed back by admission control.
    pub rejected_writes: AtomicU64,
    /// Current queued (not yet started) write requests.
    pub queue_depth: AtomicU64,
    /// High-water mark of the queue depth.
    pub queue_max: AtomicU64,
    /// Sessions evicted by the LRU pool.
    pub evictions: AtomicU64,
    /// Propagation-cache hits/misses/invalidated, accumulated from
    /// retired (evicted or closed) sessions.
    pub cache_hits: AtomicU64,
    /// See [`Metrics::cache_hits`].
    pub cache_misses: AtomicU64,
    /// See [`Metrics::cache_hits`].
    pub cache_invalidated: AtomicU64,
    /// Latency of write verbs (enqueue → reply ready: queueing included).
    pub write_latency: Histogram,
    /// Latency of the read-only fast path (verify/count).
    pub read_latency: Histogram,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Counts one request of `verb`.
    pub fn count_request(&self, verb: Verb) {
        if let Some(i) = COUNTED_VERBS.iter().position(|&v| v == verb) {
            self.requests[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one error reply.
    pub fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a queue depth observation, maintaining the high-water
    /// mark.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Folds a retired session's cache counters into the totals.
    pub fn retire_cache_stats(&self, stats: &xvu_propagate::CacheStats) {
        self.cache_hits.fetch_add(stats.hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(stats.misses, Ordering::Relaxed);
        self.cache_invalidated
            .fetch_add(stats.invalidated, Ordering::Relaxed);
    }

    /// Freezes everything into a [`StatsSnapshot`]. `live_cache` is the
    /// aggregate over still-resident sessions (the pool knows them);
    /// `shared` the engine-level shared-memo-cache counters (aggregated
    /// over the server's families — engine-owned, so they survive session
    /// eviction); `resident`/`capacity` describe the pool.
    pub fn snapshot(
        &self,
        live_cache: xvu_propagate::CacheStats,
        shared: xvu_propagate::SharedCacheStats,
        resident: usize,
        capacity: usize,
    ) -> StatsSnapshot {
        StatsSnapshot {
            requests: COUNTED_VERBS
                .iter()
                .enumerate()
                .map(|(i, &v)| (v.name(), self.requests[i].load(Ordering::Relaxed)))
                .collect(),
            errors: self.errors.load(Ordering::Relaxed),
            rejected_writes: self.rejected_writes.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_max: self.queue_max.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            pool_resident: resident,
            pool_capacity: capacity,
            cache_hits: self.cache_hits.load(Ordering::Relaxed) + live_cache.hits,
            cache_misses: self.cache_misses.load(Ordering::Relaxed) + live_cache.misses,
            cache_invalidated: self.cache_invalidated.load(Ordering::Relaxed)
                + live_cache.invalidated,
            cache_live_entries: live_cache.entries,
            shared_hits: shared.hits,
            shared_misses: shared.misses,
            shared_published: shared.published,
            shared_entries: shared.entries,
            write_latency: self.write_latency.snapshot(),
            read_latency: self.read_latency.snapshot(),
        }
    }
}

/// A point-in-time copy of every daemon metric, with JSON rendering for
/// the `stats` verb and bench reports.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Request counts per verb name.
    pub requests: Vec<(&'static str, u64)>,
    /// Error replies sent.
    pub errors: u64,
    /// Writes pushed back with `retry`.
    pub rejected_writes: u64,
    /// Queue depth when the snapshot was taken.
    pub queue_depth: u64,
    /// Queue depth high-water mark.
    pub queue_max: u64,
    /// LRU pool evictions.
    pub evictions: u64,
    /// Sessions currently resident in the pool.
    pub pool_resident: usize,
    /// The pool's configured bound.
    pub pool_capacity: usize,
    /// Propagation-cache hits (retired + live sessions).
    pub cache_hits: u64,
    /// Propagation-cache misses (retired + live sessions).
    pub cache_misses: u64,
    /// Propagation-cache invalidations (retired + live sessions).
    pub cache_invalidated: u64,
    /// Memo entries held by live sessions right now.
    pub cache_live_entries: usize,
    /// Shared-memo-cache lookups served by structure, fleet-wide
    /// (engine-owned: unlike the session-local counters above these
    /// survive session eviction).
    pub shared_hits: u64,
    /// Shared-memo-cache lookups that found nothing for the structure.
    pub shared_misses: u64,
    /// Entries published to the shared tier by session flush batches.
    pub shared_published: u64,
    /// Distinct interned structures the shared tier holds right now.
    pub shared_entries: usize,
    /// Write-path latency (includes queueing).
    pub write_latency: HistogramSnapshot,
    /// Read-only fast-path latency.
    pub read_latency: HistogramSnapshot,
}

impl StatsSnapshot {
    /// Total requests across all verbs.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().map(|(_, n)| n).sum()
    }

    /// Session-local cache hit rate over hits+misses (0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Shared-tier hit rate over the fleet-wide structure lookups (0
    /// when idle or sharing is disabled).
    pub fn shared_hit_rate(&self) -> f64 {
        let total = self.shared_hits + self.shared_misses;
        if total == 0 {
            0.0
        } else {
            self.shared_hits as f64 / total as f64
        }
    }

    /// Renders the snapshot as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str("\"requests\":{");
        for (i, (name, n)) in self.requests.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{name}\":{n}"));
        }
        s.push_str("},");
        s.push_str(&format!(
            "\"errors\":{},\"rejected_writes\":{},\"queue_depth\":{},\"queue_max\":{},",
            self.errors, self.rejected_writes, self.queue_depth, self.queue_max
        ));
        s.push_str(&format!(
            "\"evictions\":{},\"pool_resident\":{},\"pool_capacity\":{},",
            self.evictions, self.pool_resident, self.pool_capacity
        ));
        s.push_str(&format!(
            "\"cache\":{{\"hits\":{},\"misses\":{},\"invalidated\":{},\"live_entries\":{},\"hit_rate\":{:.4}}},",
            self.cache_hits,
            self.cache_misses,
            self.cache_invalidated,
            self.cache_live_entries,
            self.cache_hit_rate()
        ));
        s.push_str(&format!(
            "\"shared_cache\":{{\"hits\":{},\"misses\":{},\"published\":{},\"entries\":{},\"hit_rate\":{:.4}}},",
            self.shared_hits,
            self.shared_misses,
            self.shared_published,
            self.shared_entries,
            self.shared_hit_rate()
        ));
        let lat = |h: &HistogramSnapshot| {
            format!(
                "{{\"count\":{},\"mean_ms\":{:.3},\"p50_ms\":{:.3},\"p90_ms\":{:.3},\"p99_ms\":{:.3}}}",
                h.count(),
                h.mean_ms(),
                h.quantile_ms(0.50),
                h.quantile_ms(0.90),
                h.quantile_ms(0.99)
            )
        };
        s.push_str(&format!(
            "\"write_latency\":{},\"read_latency\":{}",
            lat(&self.write_latency),
            lat(&self.read_latency)
        ));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotone_upper_bounds() {
        let h = Histogram::new();
        for micros in [10u64, 20, 40, 80, 5000, 5000, 5000, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 8);
        let p50 = snap.quantile_ms(0.50);
        let p90 = snap.quantile_ms(0.90);
        let p99 = snap.quantile_ms(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // every sample is ≤ its bucket's upper bound, so p99 must cover
        // the 100 ms outlier's bucket
        assert!(p99 >= 100.0, "p99 {p99} below the largest sample");
        // and p50 is near the 5 ms cluster, not the outlier
        assert!(p50 <= 16.0, "p50 {p50} dragged up by the outlier");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile_ms(0.99), 0.0);
        assert_eq!(snap.mean_ms(), 0.0);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let m = Metrics::new();
        m.count_request(Verb::Propagate);
        m.count_request(Verb::Verify);
        m.write_latency.record(Duration::from_micros(800));
        m.observe_queue_depth(3);
        let json = m
            .snapshot(
                xvu_propagate::CacheStats::default(),
                xvu_propagate::SharedCacheStats::default(),
                2,
                8,
            )
            .to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"propagate\":1"));
        assert!(json.contains("\"shared_cache\""));
        assert!(json.contains("\"queue_max\":3"));
        assert!(json.contains("\"pool_capacity\":8"));
        assert!(json.contains("\"write_latency\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
