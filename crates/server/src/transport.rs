//! Byte-stream transports: TCP sockets and stdio pipes behind one trait.
//!
//! The daemon's connection loop is generic over [`Transport`], so the
//! same request dispatch serves a [`std::net::TcpStream`] (the network
//! daemon) and a stdin/stdout pair (the `--stdio` single-client mode, as
//! used by process supervisors and tests).

use crate::protocol::{read_frame, write_frame, Frame, ProtocolError, Recv};
use std::io::{Read, Write};

/// One bidirectional frame channel. Implementations should return
/// [`Recv::Idle`] from a configured read timeout so servers can poll
/// their shutdown flag between frames.
pub trait Transport {
    /// Receives the next frame (or [`Recv::Eof`]/[`Recv::Idle`]).
    fn recv(&mut self) -> Result<Recv, ProtocolError>;
    /// Sends one frame.
    fn send(&mut self, frame: &Frame) -> Result<(), ProtocolError>;
}

/// A transport over one full-duplex byte stream (e.g.
/// [`std::net::TcpStream`]).
#[derive(Debug)]
pub struct StreamTransport<S> {
    stream: S,
}

impl<S: Read + Write> StreamTransport<S> {
    /// Wraps the stream.
    pub fn new(stream: S) -> StreamTransport<S> {
        StreamTransport { stream }
    }

    /// The underlying stream (e.g. to set socket timeouts).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }
}

impl<S: Read + Write> Transport for StreamTransport<S> {
    fn recv(&mut self) -> Result<Recv, ProtocolError> {
        read_frame(&mut self.stream)
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ProtocolError> {
        write_frame(&mut self.stream, frame)
    }
}

/// A transport over separate read and write halves (stdin/stdout, or an
/// in-memory pipe pair in tests).
#[derive(Debug)]
pub struct DuplexTransport<R, W> {
    reader: R,
    writer: W,
}

impl<R: Read, W: Write> DuplexTransport<R, W> {
    /// Wraps the halves.
    pub fn new(reader: R, writer: W) -> DuplexTransport<R, W> {
        DuplexTransport { reader, writer }
    }
}

impl<R: Read, W: Write> Transport for DuplexTransport<R, W> {
    fn recv(&mut self) -> Result<Recv, ProtocolError> {
        read_frame(&mut self.reader)
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ProtocolError> {
        write_frame(&mut self.writer, frame)
    }
}
