//! A typed client for the xvu serving protocol.
//!
//! Wraps any [`Transport`] with per-verb helpers that perform the hello
//! handshake, retry `retry` pushback with the server-suggested backoff,
//! and turn `err` frames into [`ClientError`]. Used by the fleet
//! differential driver, the `xvu client` CLI mode, and the serving
//! benchmarks.

use crate::protocol::{Frame, ProtocolError, Recv, Verb};
use crate::transport::{StreamTransport, Transport};
use std::net::TcpStream;
use std::time::Duration;

/// What a request can come back as.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The server replied with an `err` frame.
    Server(String),
    /// Framing or transport failure.
    Protocol(ProtocolError),
    /// The connection closed before a reply arrived.
    Disconnected,
    /// The server kept pushing back past the retry budget.
    Saturated,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Saturated => write!(f, "server kept pushing back (retry budget spent)"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

/// One reply to `propagate`: the canonical fingerprint triple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropagateReply {
    /// Minimal source-update cost.
    pub cost: u64,
    /// Number of cost-optimal propagations.
    pub count: u128,
    /// The chosen optimal script, rendered as a term.
    pub script: String,
}

/// A protocol client over any transport. Retries `retry` pushback up to
/// [`Client::retry_budget`] times before reporting
/// [`ClientError::Saturated`].
#[derive(Debug)]
pub struct Client<T> {
    transport: T,
    retry_budget: u32,
    retries: u64,
}

impl Client<StreamTransport<TcpStream>> {
    /// Connects over TCP and performs the hello handshake.
    pub fn connect(addr: &str) -> Result<Client<StreamTransport<TcpStream>>, ClientError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ClientError::Protocol(ProtocolError::from(e)))?;
        let _ = stream.set_nodelay(true);
        Client::handshake(StreamTransport::new(stream))
    }
}

impl<T: Transport> Client<T> {
    /// Wraps an already-open transport and performs the hello handshake.
    pub fn handshake(transport: T) -> Result<Client<T>, ClientError> {
        let mut c = Client {
            transport,
            retry_budget: 10_000,
            retries: 0,
        };
        let reply = c.roundtrip(Frame::hello())?;
        match reply.verb {
            Verb::Ok => Ok(c),
            Verb::Err => Err(ClientError::Server(reply.payload)),
            _ => Err(ClientError::Server(format!(
                "unexpected hello reply verb {}",
                reply.verb.name()
            ))),
        }
    }

    /// How many `retry` pushbacks this client absorbs per request.
    pub fn retry_budget(&self) -> u32 {
        self.retry_budget
    }

    /// Total `retry` frames absorbed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Sends one frame and blocks for the reply (idle timeouts keep
    /// waiting).
    fn roundtrip(&mut self, frame: Frame) -> Result<Frame, ClientError> {
        self.transport.send(&frame)?;
        loop {
            match self.transport.recv()? {
                Recv::Frame(reply) => return Ok(reply),
                Recv::Idle => continue,
                Recv::Eof => return Err(ClientError::Disconnected),
            }
        }
    }

    /// Sends a request, absorbing `retry` pushback with the
    /// server-suggested backoff.
    fn request(&mut self, verb: Verb, payload: String) -> Result<String, ClientError> {
        for _ in 0..=self.retry_budget {
            let reply = self.roundtrip(Frame::new(verb, payload.clone()))?;
            match reply.verb {
                Verb::Ok => return Ok(reply.payload),
                Verb::Err => return Err(ClientError::Server(reply.payload)),
                Verb::Retry => {
                    self.retries += 1;
                    let after_ms = reply.payload.parse::<u64>().unwrap_or(1);
                    std::thread::sleep(Duration::from_millis(after_ms.clamp(1, 50)));
                }
                other => {
                    return Err(ClientError::Server(format!(
                        "unexpected reply verb {}",
                        other.name()
                    )))
                }
            }
        }
        Err(ClientError::Saturated)
    }

    /// Loads (or replaces) a document in the server's store.
    pub fn load(&mut self, doc: u64, family: usize, term: &str) -> Result<(), ClientError> {
        self.request(Verb::Load, format!("{doc}\n{family}\n{term}"))
            .map(|_| ())
    }

    /// Opens the document's session; returns the view rendered as an
    /// identifier-annotated term.
    pub fn open(&mut self, doc: u64) -> Result<String, ClientError> {
        self.request(Verb::Open, doc.to_string())
    }

    /// Propagates a view update; returns the `(cost, count, script)`
    /// fingerprint and leaves the propagation pending for `commit`.
    pub fn propagate(&mut self, doc: u64, update: &str) -> Result<PropagateReply, ClientError> {
        let payload = self.request(Verb::Propagate, format!("{doc}\n{update}"))?;
        let mut fields = payload.splitn(3, '\n');
        let (Some(cost), Some(count), Some(script)) = (fields.next(), fields.next(), fields.next())
        else {
            return Err(ClientError::Server(format!(
                "malformed propagate reply {payload:?}"
            )));
        };
        let cost = cost
            .parse::<u64>()
            .map_err(|_| ClientError::Server(format!("bad cost {cost:?}")))?;
        let count = count
            .parse::<u128>()
            .map_err(|_| ClientError::Server(format!("bad count {count:?}")))?;
        Ok(PropagateReply {
            cost,
            count,
            script: script.to_owned(),
        })
    }

    /// Verifies a candidate source script against a view update.
    pub fn verify(&mut self, doc: u64, update: &str, candidate: &str) -> Result<(), ClientError> {
        self.request(Verb::Verify, format!("{doc}\n{update}\n{candidate}"))
            .map(|_| ())
    }

    /// Counts the cost-optimal propagations of a view update.
    pub fn count(&mut self, doc: u64, update: &str) -> Result<u128, ClientError> {
        let payload = self.request(Verb::Count, format!("{doc}\n{update}"))?;
        payload
            .parse::<u128>()
            .map_err(|_| ClientError::Server(format!("bad count reply {payload:?}")))
    }

    /// Commits the pending propagation for `doc`.
    pub fn commit(&mut self, doc: u64) -> Result<(), ClientError> {
        self.request(Verb::Commit, doc.to_string()).map(|_| ())
    }

    /// Closes the document's session (write-back, fresh id history on
    /// reopen).
    pub fn close_doc(&mut self, doc: u64) -> Result<(), ClientError> {
        self.request(Verb::CloseDoc, doc.to_string()).map(|_| ())
    }

    /// Asks the server to write its committed store to `path` as a flat
    /// snapshot corpus; returns the server's `docs=… bytes=…` summary.
    pub fn snapshot(&mut self, path: &str) -> Result<String, ClientError> {
        self.request(Verb::Snapshot, path.to_owned())
    }

    /// Fetches the server's stats snapshot as JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.request(Verb::Stats, String::new())
    }

    /// Asks the server to drain and stop; returns the final stats JSON.
    pub fn shutdown(&mut self) -> Result<String, ClientError> {
        self.request(Verb::Shutdown, String::new())
    }
}
