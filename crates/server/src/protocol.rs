//! The wire protocol: versioned, length-prefixed frames.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! +----------------+--------+--------------------+
//! | length: u32 BE | verb:u8| payload (UTF-8)    |
//! +----------------+--------+--------------------+
//! ```
//!
//! `length` counts the verb byte plus the payload (so it is always ≥ 1;
//! a zero length is [`ProtocolError::Empty`]) and is capped at
//! [`MAX_FRAME`] ([`ProtocolError::Oversized`] beyond — the reader never
//! allocates attacker-controlled amounts). Payloads are UTF-8 text with
//! newline-separated fields; documents and scripts travel as the
//! library's term syntax (single-line by construction), so the protocol
//! needs no escaping.
//!
//! Malformed input — truncated frames, oversized lengths, unknown verbs,
//! non-UTF-8 payloads — is always a typed [`ProtocolError`], never a
//! panic; the fuzz tests in this crate drive exactly those paths.
//!
//! ## Verbs
//!
//! | verb | payload | Ok payload |
//! |------|---------|------------|
//! | [`Verb::Hello`] | `xvu <version>` | `xvu <version>` |
//! | [`Verb::Load`] | `doc_id\nfamily\n<term>` | — |
//! | [`Verb::Open`] | `doc_id` | view term with ids |
//! | [`Verb::Propagate`] | `doc_id\n<update term>` | `cost\ncount\n<script term>` |
//! | [`Verb::Verify`] | `doc_id\n<update>\n<candidate>` | — |
//! | [`Verb::Count`] | `doc_id\n<update term>` | `count` |
//! | [`Verb::Commit`] | `doc_id` | — |
//! | [`Verb::CloseDoc`] | `doc_id` | — |
//! | [`Verb::Stats`] | — | stats JSON |
//! | [`Verb::Shutdown`] | — | final stats JSON |
//! | [`Verb::Snapshot`] | `path` | `docs=<n> bytes=<n>` |
//!
//! Responses reuse the verb byte: [`Verb::Ok`], [`Verb::Err`] (payload:
//! message), or [`Verb::Retry`] (payload: suggested backoff in
//! milliseconds — the admission controller pushing back).

use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// Protocol version, exchanged in [`Verb::Hello`]. Bump on any wire
/// format change.
pub const PROTOCOL_VERSION: u32 = 2;

/// Hard cap on one frame's length field (16 MiB): larger claims are
/// rejected before any allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Frame verbs — requests, plus the three response verbs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Verb {
    /// Version handshake.
    Hello = 0,
    /// Load (or replace) a document in the store.
    Load = 1,
    /// Open a serving session on a stored document.
    Open = 2,
    /// Propagate a view update (becomes the document's pending
    /// propagation).
    Propagate = 3,
    /// Verify a candidate propagation (read-only fast path).
    Verify = 4,
    /// Count cost-minimal propagations (read-only fast path).
    Count = 5,
    /// Commit the pending propagation.
    Commit = 6,
    /// Close the document's session, persisting its committed state.
    CloseDoc = 7,
    /// Observability snapshot.
    Stats = 8,
    /// Graceful shutdown: drain in-flight work, reply with final stats.
    Shutdown = 9,
    /// Write the committed store out as a flat snapshot corpus file
    /// (payload: destination path).
    Snapshot = 10,
    /// Success response.
    Ok = 100,
    /// Failure response (payload: message).
    Err = 101,
    /// Admission pushback (payload: retry-after milliseconds).
    Retry = 102,
}

impl Verb {
    /// Decodes a verb byte; `None` for unknown verbs (the caller reports
    /// [`ProtocolError::UnknownVerb`] — unknown input never panics).
    pub fn from_u8(b: u8) -> Option<Verb> {
        Some(match b {
            0 => Verb::Hello,
            1 => Verb::Load,
            2 => Verb::Open,
            3 => Verb::Propagate,
            4 => Verb::Verify,
            5 => Verb::Count,
            6 => Verb::Commit,
            7 => Verb::CloseDoc,
            8 => Verb::Stats,
            9 => Verb::Shutdown,
            10 => Verb::Snapshot,
            100 => Verb::Ok,
            101 => Verb::Err,
            102 => Verb::Retry,
            _ => return None,
        })
    }

    /// Whether the request mutates serving state (admission control may
    /// push these back under load; read-only verbs take the fast path).
    pub fn is_write(self) -> bool {
        matches!(
            self,
            Verb::Load
                | Verb::Open
                | Verb::Propagate
                | Verb::Commit
                | Verb::CloseDoc
                | Verb::Snapshot
        )
    }

    /// The verb's wire name (used in stats and error messages).
    pub fn name(self) -> &'static str {
        match self {
            Verb::Hello => "hello",
            Verb::Load => "load",
            Verb::Open => "open",
            Verb::Propagate => "propagate",
            Verb::Verify => "verify",
            Verb::Count => "count",
            Verb::Commit => "commit",
            Verb::CloseDoc => "close",
            Verb::Stats => "stats",
            Verb::Shutdown => "shutdown",
            Verb::Snapshot => "snapshot",
            Verb::Ok => "ok",
            Verb::Err => "err",
            Verb::Retry => "retry",
        }
    }
}

/// One decoded frame: a verb and its UTF-8 payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The verb.
    pub verb: Verb,
    /// The payload text (newline-separated fields).
    pub payload: String,
}

impl Frame {
    /// A request/response frame with the given verb and payload.
    pub fn new(verb: Verb, payload: impl Into<String>) -> Frame {
        Frame {
            verb,
            payload: payload.into(),
        }
    }

    /// An [`Verb::Ok`] response.
    pub fn ok(payload: impl Into<String>) -> Frame {
        Frame::new(Verb::Ok, payload)
    }

    /// An [`Verb::Err`] response.
    pub fn err(message: impl Into<String>) -> Frame {
        Frame::new(Verb::Err, message)
    }

    /// A [`Verb::Retry`] response suggesting a backoff.
    pub fn retry(after_ms: u64) -> Frame {
        Frame::new(Verb::Retry, after_ms.to_string())
    }

    /// The [`Verb::Hello`] handshake frame for this build's
    /// [`PROTOCOL_VERSION`].
    pub fn hello() -> Frame {
        Frame::new(Verb::Hello, format!("xvu {PROTOCOL_VERSION}"))
    }
}

/// Everything that can go wrong on the wire. Malformed peers produce
/// errors, never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The stream ended mid-frame.
    Truncated,
    /// A frame claimed a length over [`MAX_FRAME`].
    Oversized(u32),
    /// A frame claimed length zero (no verb byte).
    Empty,
    /// An unknown verb byte.
    UnknownVerb(u8),
    /// The payload was not UTF-8 or did not match the verb's field
    /// layout.
    BadPayload(String),
    /// The peer speaks a different protocol version.
    VersionMismatch(String),
    /// An underlying I/O error (kind plus message).
    Io(ErrorKind, String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "stream ended mid-frame"),
            ProtocolError::Oversized(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            ProtocolError::Empty => write!(f, "zero-length frame (no verb byte)"),
            ProtocolError::UnknownVerb(b) => write!(f, "unknown verb byte {b}"),
            ProtocolError::BadPayload(m) => write!(f, "bad payload: {m}"),
            ProtocolError::VersionMismatch(m) => write!(f, "protocol version mismatch: {m}"),
            ProtocolError::Io(kind, m) => write!(f, "i/o error ({kind:?}): {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> ProtocolError {
        ProtocolError::Io(e.kind(), e.to_string())
    }
}

/// What [`read_frame`] observed on the stream.
#[derive(Debug)]
pub enum Recv {
    /// A complete frame.
    Frame(Frame),
    /// Clean end of stream (the peer closed between frames).
    Eof,
    /// No data before the stream's read timeout fired *between* frames
    /// (only with a read timeout configured). Mid-frame timeouts keep
    /// waiting — a slow peer cannot desynchronise the framing.
    Idle,
}

/// Reads bytes until `buf` is full, retrying timeouts: once a frame has
/// started, a read timeout must not tear it. EOF mid-buffer is
/// [`ProtocolError::Truncated`].
fn read_exact_persistent(r: &mut impl Read, buf: &mut [u8]) -> Result<(), ProtocolError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Err(ProtocolError::Truncated),
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads one frame. Returns [`Recv::Eof`] on a clean close before any
/// byte of a frame, [`Recv::Idle`] when a configured read timeout fires
/// between frames, and a [`ProtocolError`] for every malformed input.
pub fn read_frame(r: &mut impl Read) -> Result<Recv, ProtocolError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(Recv::Eof)
                } else {
                    Err(ProtocolError::Truncated)
                };
            }
            Ok(n) => got += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if got == 0 {
                    return Ok(Recv::Idle);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len == 0 {
        return Err(ProtocolError::Empty);
    }
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized(len));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_persistent(r, &mut body)?;
    let verb = Verb::from_u8(body[0]).ok_or(ProtocolError::UnknownVerb(body[0]))?;
    let payload = String::from_utf8(body.split_off(1))
        .map_err(|e| ProtocolError::BadPayload(format!("payload is not UTF-8: {e}")))?;
    Ok(Recv::Frame(Frame { verb, payload }))
}

/// Writes one frame (length prefix, verb, payload) and flushes.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), ProtocolError> {
    let payload = frame.payload.as_bytes();
    let len = 1u64 + payload.len() as u64;
    if len > u64::from(MAX_FRAME) {
        return Err(ProtocolError::Oversized(u32::MAX));
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(&[frame.verb as u8])?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Checks a [`Verb::Hello`] payload against this build's version.
pub fn check_hello(payload: &str) -> Result<(), ProtocolError> {
    let expected = format!("xvu {PROTOCOL_VERSION}");
    if payload == expected {
        Ok(())
    } else {
        Err(ProtocolError::VersionMismatch(format!(
            "peer says {payload:?}, this build speaks {expected:?}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, frame).unwrap();
        match read_frame(&mut Cursor::new(buf)).unwrap() {
            Recv::Frame(f) => f,
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn frames_round_trip() {
        for frame in [
            Frame::hello(),
            Frame::new(Verb::Propagate, "7\nnop:r#0(del:a#1)"),
            Frame::ok(""),
            Frame::err("boom"),
            Frame::retry(5),
            Frame::new(Verb::Stats, ""),
        ] {
            assert_eq!(round_trip(&frame), frame);
        }
    }

    #[test]
    fn clean_eof_between_frames() {
        assert!(matches!(
            read_frame(&mut Cursor::new(Vec::new())).unwrap(),
            Recv::Eof
        ));
    }

    #[test]
    fn truncated_length_prefix_errors() {
        for cut in 1..4 {
            let mut buf = Vec::new();
            write_frame(&mut buf, &Frame::hello()).unwrap();
            buf.truncate(cut);
            assert_eq!(
                read_frame(&mut Cursor::new(buf)).unwrap_err(),
                ProtocolError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn truncated_body_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::new(Verb::Propagate, "payload text")).unwrap();
        for cut in 4..buf.len() {
            let mut cut_buf = buf.clone();
            cut_buf.truncate(cut);
            assert_eq!(
                read_frame(&mut Cursor::new(cut_buf)).unwrap_err(),
                ProtocolError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.push(Verb::Hello as u8);
        assert_eq!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            ProtocolError::Oversized(MAX_FRAME + 1)
        );
        // u32::MAX would be a 4 GiB allocation if the cap were missing
        let huge = u32::MAX.to_be_bytes().to_vec();
        assert_eq!(
            read_frame(&mut Cursor::new(huge)).unwrap_err(),
            ProtocolError::Oversized(u32::MAX)
        );
    }

    #[test]
    fn zero_length_frame_rejected() {
        let buf = 0u32.to_be_bytes().to_vec();
        assert_eq!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            ProtocolError::Empty
        );
    }

    #[test]
    fn unknown_verbs_error_not_panic() {
        for bad in [11u8, 42, 99, 103, 255] {
            let mut buf = 1u32.to_be_bytes().to_vec();
            buf.push(bad);
            assert_eq!(
                read_frame(&mut Cursor::new(buf)).unwrap_err(),
                ProtocolError::UnknownVerb(bad)
            );
        }
    }

    #[test]
    fn non_utf8_payload_rejected() {
        let mut buf = 3u32.to_be_bytes().to_vec();
        buf.push(Verb::Open as u8);
        buf.extend([0xFF, 0xFE]);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)).unwrap_err(),
            ProtocolError::BadPayload(_)
        ));
    }

    #[test]
    fn hello_checks_version() {
        assert!(check_hello(&format!("xvu {PROTOCOL_VERSION}")).is_ok());
        assert!(matches!(
            check_hello("xvu 999"),
            Err(ProtocolError::VersionMismatch(_))
        ));
        assert!(matches!(
            check_hello("http/1.1"),
            Err(ProtocolError::VersionMismatch(_))
        ));
    }
}
