//! `xvu_server` — a long-lived serving daemon for the XML view-update
//! engine.
//!
//! The library crates answer one propagation question at a time; this
//! crate keeps the engine warm across many documents and many clients:
//!
//! * [`protocol`] — a versioned, length-prefixed frame protocol
//!   (`hello`/`load`/`open`/`propagate`/`verify`/`count`/`commit`/
//!   `close`/`stats`/`shutdown`) with typed, non-panicking decode
//!   errors;
//! * [`transport`] — TCP sockets and stdio pipes behind one
//!   [`Transport`] trait;
//! * [`pool`] — a bounded LRU layer over [`xvu_propagate::SessionPool`]
//!   that evicts parked sessions (leased ones are exempt) and hands them
//!   back for write-back, preserving document content and identifier
//!   floors across eviction;
//! * [`daemon`] — the [`Server`]: document store, fixed worker pool fed
//!   by a bounded queue with admission control (`retry` pushback), a
//!   read-only fast path for `verify`/`count`, and graceful
//!   drain-on-shutdown;
//! * [`metrics`] — latency histograms (p50/p90/p99), queue depth,
//!   admission rejects, and propagation-cache counters, served by the
//!   `stats` verb;
//! * [`client`] — a typed client with handshake and retry-pushback
//!   handling;
//! * [`driver`] — [`run_fleet`]: replay an [`xvu_workload::fleet`] plan
//!   against an in-process daemon and diff every reply against
//!   fingerprints recorded from direct sessions — the end-to-end
//!   determinism oracle.
//!
//! ```no_run
//! use xvu_server::{run_fleet, ServerConfig};
//! use xvu_workload::fleet::{generate_fleet, FleetConfig};
//!
//! let plan = generate_fleet(&FleetConfig::default());
//! let report = run_fleet(&plan, ServerConfig::default()).unwrap();
//! assert!(report.is_clean(), "{:?}", report.mismatches);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod driver;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod transport;

pub use client::{Client, ClientError, PropagateReply};
pub use daemon::{Server, ServerConfig, ServerReport};
pub use driver::{run_fleet, run_fleet_from_corpus, run_fleet_with, CorpusMode, FleetReport};
pub use metrics::{Histogram, HistogramSnapshot, Metrics, StatsSnapshot};
pub use pool::{Evicted, LruSessionPool};
pub use protocol::{
    read_frame, write_frame, Frame, ProtocolError, Recv, Verb, MAX_FRAME, PROTOCOL_VERSION,
};
pub use transport::{DuplexTransport, StreamTransport, Transport};
