//! The fleet differential driver: replay a generated [`FleetPlan`]
//! against an in-process daemon and check every reply against the
//! fingerprints the generator recorded from direct [`xvu_propagate`]
//! sessions.
//!
//! This is the end-to-end determinism oracle for the serving stack: the
//! daemon (framing, queueing, admission, LRU eviction, write-back,
//! identifier-floor restoration) must be observationally identical to a
//! long-lived in-process session per document. Any divergence surfaces
//! as a [`FleetReport::mismatches`] entry naming the op.

use crate::client::Client;
use crate::daemon::{Server, ServerConfig};
use crate::metrics::StatsSnapshot;
use std::collections::HashMap;
use std::net::TcpListener;
use std::time::{Duration, Instant};
use xvu_edit::script_to_term;
use xvu_propagate::Engine;
use xvu_tree::{to_term_with_ids, SnapshotFile};
use xvu_workload::fleet::{FleetOpKind, FleetPlan};

/// The outcome of one [`run_fleet`] replay.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Requests issued (everything except client think time).
    pub requests: u64,
    /// Committed edits in the plan.
    pub updates: usize,
    /// `retry` pushbacks absorbed across all clients.
    pub retries: u64,
    /// Fingerprint divergences (empty on a correct daemon).
    pub mismatches: Vec<String>,
    /// Transport/framing/server errors (0 on a correct daemon).
    pub protocol_errors: u64,
    /// Wall-clock time for the whole replay.
    pub wall: Duration,
    /// The daemon's final stats snapshot.
    pub stats: StatsSnapshot,
    /// Whether the daemon drained every in-flight request on shutdown.
    pub drained_clean: bool,
}

impl FleetReport {
    /// No mismatches, no protocol errors, clean drain.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty() && self.protocol_errors == 0 && self.drained_clean
    }
}

#[derive(Default)]
struct ClientOutcome {
    requests: u64,
    retries: u64,
    protocol_errors: u64,
    mismatches: Vec<String>,
}

/// How the daemon's corpus is installed before the replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorpusMode {
    /// A loader client uploads every document with `load` verbs (term
    /// syntax over the wire) once the daemon is accepting connections.
    TermLoad,
    /// The store is preloaded from packed snapshot bytes
    /// ([`FleetPlan::corpus_snapshot_bytes`]) before the daemon starts
    /// serving — the near-zero cold-start path. No `load` requests are
    /// issued.
    Snapshot,
}

/// Replays `plan` against a fresh in-process daemon (TCP on an ephemeral
/// loopback port, one connection per fleet client) and diffs every reply
/// against the plan's recorded fingerprints.
pub fn run_fleet(plan: &FleetPlan, cfg: ServerConfig) -> std::io::Result<FleetReport> {
    run_fleet_with(plan, cfg, CorpusMode::TermLoad)
}

/// [`run_fleet`] with the corpus preloaded from packed snapshot bytes
/// instead of term `load` verbs. A correct daemon replies byte-identically
/// in both modes; `tests/serving.rs` holds the differential.
pub fn run_fleet_from_corpus(plan: &FleetPlan, cfg: ServerConfig) -> std::io::Result<FleetReport> {
    run_fleet_with(plan, cfg, CorpusMode::Snapshot)
}

/// Replays `plan` with the chosen corpus-installation mode.
pub fn run_fleet_with(
    plan: &FleetPlan,
    cfg: ServerConfig,
    mode: CorpusMode,
) -> std::io::Result<FleetReport> {
    let engines: Vec<Engine> = plan.families.iter().map(|f| f.engine()).collect();
    let server = Server::new(&engines, cfg);
    if mode == CorpusMode::Snapshot {
        let corpus = SnapshotFile::from_bytes(plan.corpus_snapshot_bytes())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        server
            .preload_corpus(&corpus)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    }
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    let family_of: HashMap<u64, usize> = plan.docs.iter().map(|d| (d.id, d.family)).collect();
    let clients = plan.ops.iter().map(|op| op.client + 1).max().unwrap_or(0);
    let start = Instant::now();

    let mut outcomes: Vec<ClientOutcome> = Vec::new();
    let mut server_report = None;
    std::thread::scope(|scope| {
        let server_handle = scope.spawn(|| server.serve_listener(listener));

        // corpus upload (unless preloaded), then the per-client replay
        // threads
        let mut load_outcome = ClientOutcome::default();
        if mode == CorpusMode::TermLoad {
            match Client::connect(&addr) {
                Ok(mut loader) => {
                    for fd in &plan.docs {
                        let alpha = &plan.families[fd.family].alpha;
                        let term = to_term_with_ids(&fd.doc, alpha);
                        load_outcome.requests += 1;
                        if let Err(e) = loader.load(fd.id, fd.family, &term) {
                            load_outcome.protocol_errors += 1;
                            load_outcome
                                .mismatches
                                .push(format!("load doc {}: {e}", fd.id));
                        }
                    }
                    load_outcome.retries = loader.retries();
                }
                Err(e) => {
                    load_outcome.protocol_errors += 1;
                    load_outcome.mismatches.push(format!("loader connect: {e}"));
                }
            }
        }
        let loaded_clean = load_outcome.protocol_errors == 0;
        outcomes.push(load_outcome);

        if loaded_clean {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = &addr;
                    let family_of = &family_of;
                    scope.spawn(move || run_client(plan, family_of, addr, c))
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(_) => outcomes.push(ClientOutcome {
                        protocol_errors: 1,
                        mismatches: vec!["client thread panicked".to_owned()],
                        ..ClientOutcome::default()
                    }),
                }
            }
        }

        // orderly shutdown: drain, then collect the server-side report
        match Client::connect(&addr) {
            Ok(mut ctl) => {
                if ctl.shutdown().is_err() {
                    server.request_shutdown();
                }
            }
            Err(_) => server.request_shutdown(),
        }
        server_report = Some(server_handle.join().expect("server thread panicked"));
    });

    let server_report = server_report.expect("server report missing")?;
    let mut report = FleetReport {
        requests: 0,
        updates: plan.updates,
        retries: 0,
        mismatches: Vec::new(),
        protocol_errors: 0,
        wall: start.elapsed(),
        stats: server_report.stats,
        drained_clean: server_report.drained_clean,
    };
    for o in outcomes {
        report.requests += o.requests;
        report.retries += o.retries;
        report.protocol_errors += o.protocol_errors;
        report.mismatches.extend(o.mismatches);
    }
    Ok(report)
}

/// Replays one fleet client's operation stream over its own connection.
fn run_client(
    plan: &FleetPlan,
    family_of: &HashMap<u64, usize>,
    addr: &str,
    client_idx: usize,
) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            out.protocol_errors += 1;
            out.mismatches
                .push(format!("client {client_idx} connect: {e}"));
            return out;
        }
    };
    for (i, op) in plan.client_ops(client_idx).enumerate() {
        let alpha = &plan.families[family_of[&op.doc]].alpha;
        let tag = format!("client {client_idx} op {i} doc {}", op.doc);
        let fail = |out: &mut ClientOutcome, what: String| {
            out.protocol_errors += 1;
            out.mismatches.push(format!("{tag}: {what}"));
        };
        match &op.kind {
            FleetOpKind::Idle(ticks) => {
                // think time; clamped so large gaps don't slow the replay
                std::thread::sleep(Duration::from_millis((*ticks).clamp(1, 3)));
                continue;
            }
            FleetOpKind::Open => {
                out.requests += 1;
                match client.open(op.doc) {
                    Ok(view) => {
                        if Some(&view) != op.expect.view.as_ref() {
                            out.mismatches.push(format!(
                                "{tag}: open view diverged: got {view:?}, want {:?}",
                                op.expect.view
                            ));
                        }
                    }
                    Err(e) => fail(&mut out, format!("open: {e}")),
                }
            }
            FleetOpKind::Propagate(update) => {
                out.requests += 1;
                match client.propagate(op.doc, &script_to_term(update, alpha)) {
                    Ok(reply) => {
                        if Some(reply.cost) != op.expect.cost
                            || Some(reply.count) != op.expect.count
                            || Some(&reply.script) != op.expect.script.as_ref()
                        {
                            out.mismatches.push(format!(
                                "{tag}: propagate diverged: got ({}, {}, {:?}), want ({:?}, {:?}, {:?})",
                                reply.cost,
                                reply.count,
                                reply.script,
                                op.expect.cost,
                                op.expect.count,
                                op.expect.script
                            ));
                        }
                    }
                    Err(e) => fail(&mut out, format!("propagate: {e}")),
                }
            }
            FleetOpKind::Verify { update, candidate } => {
                out.requests += 1;
                if let Err(e) = client.verify(
                    op.doc,
                    &script_to_term(update, alpha),
                    &script_to_term(candidate, alpha),
                ) {
                    fail(&mut out, format!("verify: {e}"));
                }
            }
            FleetOpKind::Count(update) => {
                out.requests += 1;
                match client.count(op.doc, &script_to_term(update, alpha)) {
                    Ok(n) => {
                        if Some(n) != op.expect.count {
                            out.mismatches.push(format!(
                                "{tag}: count diverged: got {n}, want {:?}",
                                op.expect.count
                            ));
                        }
                    }
                    Err(e) => fail(&mut out, format!("count: {e}")),
                }
            }
            FleetOpKind::Commit => {
                out.requests += 1;
                if let Err(e) = client.commit(op.doc) {
                    fail(&mut out, format!("commit: {e}"));
                }
            }
            FleetOpKind::Close => {
                out.requests += 1;
                if let Err(e) = client.close_doc(op.doc) {
                    fail(&mut out, format!("close: {e}"));
                }
            }
        }
    }
    out.retries = client.retries();
    out
}
