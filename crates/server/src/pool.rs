//! A bounded, multi-family LRU layer over [`SessionPool`].
//!
//! The daemon serves documents from several grammar families (one
//! compiled [`Engine`] each) but bounds the *total* number of resident
//! sessions: [`LruSessionPool`] keeps one inner [`SessionPool`] per
//! family plus a global recency list, and evicts the least-recently-used
//! **parked** session when a checkout would exceed the bound.
//!
//! Eviction policy (the serving contract, tested here and end-to-end):
//!
//! * only parked sessions are evicted — a leased session is
//!   eviction-exempt ([`xvu_propagate::EvictOutcome::Leased`] defers to
//!   the next victim), so a request never loses its session mid-flight;
//! * the evicted session is handed back to the caller for write-back:
//!   its committed document (and identifier high-water mark) persist in
//!   the caller's store, only the propagation-cache memos die with it;
//! * if every resident session is leased (nothing evictable), a
//!   checkout for a *new* document fails fast with
//!   [`PropagateError::PoolAtCapacity`] — the daemon converts that into
//!   admission pushback (`retry`) instead of growing without bound. The
//!   inner pools carry the same capacity as a backstop against
//!   bookkeeping drift.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};
use xvu_propagate::{Engine, EvictOutcome, PropagateError, Session, SessionLease, SessionPool};
use xvu_tree::DocTree;

/// A session evicted to make room, owed a write-back to long-term
/// storage by the caller.
pub struct Evicted<'e> {
    /// The document key the session served.
    pub doc: u64,
    /// The session, parked at its last commit.
    pub session: Box<Session<'e>>,
}

/// Bookkeeping shared by every checkout: global recency plus the
/// resident-document → family map.
#[derive(Default)]
struct LruState {
    /// Resident document keys, least recently used first.
    recency: Vec<u64>,
    /// Family index of each resident document.
    family: HashMap<u64, usize>,
}

/// The bounded LRU session pool. See the module docs for the policy.
pub struct LruSessionPool<'e> {
    pools: Vec<SessionPool<'e, u64>>,
    state: Mutex<LruState>,
    capacity: usize,
}

impl<'e> LruSessionPool<'e> {
    /// A pool over one engine per family, bounded to `capacity` resident
    /// sessions in total. `capacity` must be ≥ 1.
    pub fn new(engines: &'e [Engine], capacity: usize) -> LruSessionPool<'e> {
        assert!(capacity >= 1, "LruSessionPool capacity must be ≥ 1");
        LruSessionPool {
            pools: engines
                .iter()
                .map(|e| SessionPool::with_capacity(e, capacity))
                .collect(),
            state: Mutex::new(LruState::default()),
            capacity,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident (parked or leased) sessions right now.
    pub fn resident(&self) -> usize {
        self.lock().family.len()
    }

    /// The documents with a resident session right now (snapshot of the
    /// tracking state; a concurrent checkout may change it immediately).
    /// Used by the `snapshot` verb to flush every resident session's
    /// committed state into the store before serializing it.
    pub fn resident_docs(&self) -> Vec<u64> {
        self.lock().family.keys().copied().collect()
    }

    fn lock(&self) -> MutexGuard<'_, LruState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Checks out the session for `doc` (family `family`), opening it
    /// from `tree` on first touch and updating the recency order. Any
    /// sessions evicted to make room are returned alongside the lease —
    /// the caller must write their documents back before serving further
    /// requests for those keys.
    ///
    /// Blocks while another worker holds the same document's lease
    /// (per-document isolation, inherited from [`SessionPool`]).
    pub fn checkout(
        &self,
        doc: u64,
        family: usize,
        tree: &DocTree,
    ) -> Result<(SessionLease<'_, 'e, u64>, Vec<Evicted<'e>>), PropagateError> {
        assert!(family < self.pools.len(), "unknown family index");
        let mut evicted = Vec::new();
        {
            let mut state = self.lock();
            if let Some(pos) = state.recency.iter().position(|&d| d == doc) {
                // resident: touch
                state.recency.remove(pos);
                state.recency.push(doc);
            } else {
                // make room, oldest parked victim first; leased sessions
                // are exempt
                let mut scan = 0;
                while state.family.len() >= self.capacity && scan < state.recency.len() {
                    let victim = state.recency[scan];
                    let vf = state.family[&victim];
                    match self.pools[vf].evict(&victim) {
                        EvictOutcome::Evicted(session) => {
                            state.recency.remove(scan);
                            state.family.remove(&victim);
                            evicted.push(Evicted {
                                doc: victim,
                                session,
                            });
                        }
                        EvictOutcome::Leased => scan += 1,
                        EvictOutcome::Unknown => {
                            // state said resident but the slot is gone (a
                            // failed open cleaned up): drop the stale entry
                            state.recency.remove(scan);
                            state.family.remove(&victim);
                        }
                    }
                }
                if state.family.len() >= self.capacity {
                    // every resident session is leased: push back rather
                    // than grow past the bound
                    return Err(PropagateError::PoolAtCapacity {
                        capacity: self.capacity,
                    });
                }
                state.recency.push(doc);
                state.family.insert(doc, family);
            }
        }
        match self.pools[family].checkout(doc, tree) {
            Ok(lease) => Ok((lease, evicted)),
            Err(e) => {
                // roll the reservation back: the inner pool holds no slot
                // for a failed open, so the state map must not either
                let mut state = self.lock();
                if let Some(pos) = state.recency.iter().position(|&d| d == doc) {
                    state.recency.remove(pos);
                }
                state.family.remove(&doc);
                Err(e)
            }
        }
    }

    /// Removes `doc`'s session from the pool entirely (the `close` verb),
    /// returning it for write-back. Spins briefly if the session is
    /// momentarily leased by another worker; returns `None` for an
    /// untracked document or if the lease never returns.
    pub fn remove(&self, doc: u64) -> Option<Box<Session<'e>>> {
        for _ in 0..10_000 {
            let mut state = self.lock();
            let &family = state.family.get(&doc)?;
            match self.pools[family].evict(&doc) {
                EvictOutcome::Evicted(session) => {
                    if let Some(pos) = state.recency.iter().position(|&d| d == doc) {
                        state.recency.remove(pos);
                    }
                    state.family.remove(&doc);
                    return Some(session);
                }
                EvictOutcome::Unknown => {
                    if let Some(pos) = state.recency.iter().position(|&d| d == doc) {
                        state.recency.remove(pos);
                    }
                    state.family.remove(&doc);
                    return None;
                }
                EvictOutcome::Leased => {
                    drop(state);
                    std::thread::yield_now();
                }
            }
        }
        None
    }
}

impl std::fmt::Debug for LruSessionPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruSessionPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.resident())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvu_dtd::parse_dtd;
    use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};
    use xvu_view::parse_annotation;

    fn engine_and_doc() -> (Engine, DocTree) {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
        let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
        let t = parse_term_with_ids(
            &mut alpha,
            &mut gen,
            "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
        )
        .unwrap();
        let engine = Engine::builder()
            .alphabet(alpha)
            .dtd(dtd)
            .annotation(ann)
            .build()
            .unwrap();
        (engine, t)
    }

    #[test]
    fn lru_evicts_oldest_parked_session_at_capacity() {
        let (engine, t) = engine_and_doc();
        let engines = [engine];
        let pool = LruSessionPool::new(&engines, 2);
        for doc in [1u64, 2, 3] {
            let (lease, evicted) = pool.checkout(doc, 0, &t).unwrap();
            drop(lease);
            match doc {
                3 => {
                    // inserting doc 3 must evict doc 1 (the LRU)
                    assert_eq!(evicted.len(), 1);
                    assert_eq!(evicted[0].doc, 1);
                }
                _ => assert!(evicted.is_empty()),
            }
        }
        assert_eq!(pool.resident(), 2);
        // touching doc 2 protects it: inserting doc 4 now evicts doc 3
        drop(pool.checkout(2, 0, &t).unwrap());
        let (_, evicted) = pool.checkout(4, 0, &t).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].doc, 3);
    }

    #[test]
    fn leased_sessions_are_eviction_exempt() {
        let (engine, t) = engine_and_doc();
        let engines = [engine];
        let pool = LruSessionPool::new(&engines, 2);
        let (held_1, _) = pool.checkout(1, 0, &t).unwrap();
        drop(pool.checkout(2, 0, &t).unwrap());
        // doc 1 is LRU but leased: doc 2 is evicted instead
        let (_, evicted) = pool.checkout(3, 0, &t).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].doc, 2);
        drop(held_1);
    }

    #[test]
    fn fully_leased_pool_pushes_back_instead_of_growing() {
        let (engine, t) = engine_and_doc();
        let engines = [engine];
        let pool = LruSessionPool::new(&engines, 2);
        let (a, _) = pool.checkout(1, 0, &t).unwrap();
        let (b, _) = pool.checkout(2, 0, &t).unwrap();
        // both resident sessions are leased: a new document is refused
        // with the retryable capacity error, never admitted past the bound
        assert!(matches!(
            pool.checkout(3, 0, &t),
            Err(PropagateError::PoolAtCapacity { capacity: 2 })
        ));
        assert_eq!(pool.resident(), 2);
        drop((a, b));
        // with the leases returned the same checkout succeeds by eviction
        let (_, evicted) = pool.checkout(3, 0, &t).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn remove_returns_the_session_for_write_back() {
        let (engine, t) = engine_and_doc();
        let engines = [engine];
        let pool = LruSessionPool::new(&engines, 4);
        drop(pool.checkout(7, 0, &t).unwrap());
        let session = pool.remove(7).expect("parked session removed");
        assert_eq!(session.commits(), 0);
        assert_eq!(pool.resident(), 0);
        assert!(pool.remove(7).is_none(), "already gone");
    }

    #[test]
    fn eviction_write_back_preserves_id_floor_via_merge() {
        // The serving invariant behind deterministic replay: evict a
        // session, write back document + id_gen, reopen, merge — the
        // reopened session mints the same fresh identifiers the evicted
        // one would have.
        let (engine, t) = engine_and_doc();
        let engines = [engine];
        let pool = LruSessionPool::new(&engines, 1);
        let (lease, _) = pool.checkout(1, 0, &t).unwrap();
        let floor_before = lease.id_gen().peek();
        drop(lease);
        let evicted = pool.checkout(2, 0, &t).unwrap().1;
        let saved_gen = evicted[0].session.id_gen();
        let saved_doc = evicted[0].session.document().clone();
        // reopen from the written-back document and restore the floor
        let (mut lease, _) = pool.checkout(1, 0, &saved_doc).unwrap();
        lease.merge_id_gen(&saved_gen);
        assert!(lease.id_gen().peek() >= floor_before);
        assert_eq!(lease.id_gen().peek(), saved_gen.peek());
    }
}
