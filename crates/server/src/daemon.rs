//! The serving daemon: document store, worker pool, admission control,
//! and graceful shutdown.
//!
//! A [`Server`] owns a corpus of documents (keyed by `u64` id, each
//! belonging to one compiled [`Engine`] family), a bounded
//! [`LruSessionPool`] of open sessions, and a fixed worker pool fed by a
//! bounded work queue:
//!
//! * **write verbs** (`load`/`open`/`propagate`/`commit`/`close`) are
//!   admitted into the queue — or pushed back with a `retry` frame when
//!   the queue is at capacity — and executed by worker threads;
//! * **read-only verbs** (`verify`/`count`) take a fast path on the
//!   connection thread, never queueing behind writes;
//! * `hello`/`stats` are answered inline; `shutdown` drains every queued
//!   and in-flight request, replies with the final stats snapshot, and
//!   stops the accept loop;
//! * `snapshot` (a write verb) flushes every resident session into the
//!   store with eviction semantics and writes the committed corpus out
//!   as a flat snapshot file (`xvu_tree::snapshot`); the inverse is
//!   [`Server::preload_corpus`], the parse-free cold-start path.
//!
//! Request latencies (including queueing for writes), queue depth,
//! admission rejects, pool evictions, and propagation-cache counters are
//! all observable via the `stats` verb ([`crate::StatsSnapshot`]).
//!
//! ## Determinism across eviction
//!
//! Evicting an idle session drops only its *session-private* state — the
//! slot-keyed propagation-cache memos and intern-id map: the committed
//! document **and** its fresh-identifier high-water mark are written back
//! to the store and restored on the next checkout
//! ([`xvu_propagate::Session::merge_id_gen`]), so replies are
//! byte-identical whether or not an eviction happened in between — the
//! property the fleet differential driver ([`crate::run_fleet`]) checks
//! end to end. Structure-keyed memos live in the engine-owned
//! [`xvu_propagate::SharedMemoCache`] and **survive eviction**: a
//! reopened session re-interns its document and warms straight from the
//! shared tier instead of recomputing, and the `stats` verb reports that
//! tier separately (`shared_cache` object) from the session-local
//! counters (`cache` object). An explicit `close` resets the identifier floor instead:
//! a closed document starts a fresh session history, exactly like a
//! direct [`xvu_propagate::Engine::open`].

use crate::metrics::{Metrics, StatsSnapshot};
use crate::pool::{Evicted, LruSessionPool};
use crate::protocol::{check_hello, Frame, Recv, Verb, PROTOCOL_VERSION};
use crate::transport::{StreamTransport, Transport};
use std::collections::{HashMap, VecDeque};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};
use xvu_edit::{parse_script, script_to_term, Script};
use xvu_propagate::{
    count_optimal_propagations, CacheStats, Engine, PropagateError, Propagation, SessionLease,
    SharedCacheStats,
};
use xvu_tree::{
    parse_term_with_ids, to_term_with_ids, Alphabet, CorpusBuilder, DocTree, NodeIdGen,
    SnapshotFile,
};

/// Daemon sizing and admission knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing write verbs.
    pub workers: usize,
    /// Bounded work-queue depth; writes beyond it are pushed back with
    /// `retry`.
    pub queue_capacity: usize,
    /// [`LruSessionPool`] bound: resident sessions across all documents.
    pub pool_capacity: usize,
    /// Backoff suggested to pushed-back clients, in milliseconds.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            pool_capacity: 64,
            retry_after_ms: 2,
        }
    }
}

/// What [`Server::serve_listener`] / [`Server::serve_transport`] hand
/// back after shutdown.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// The final metrics snapshot (also sent as the `shutdown` reply).
    pub stats: StatsSnapshot,
    /// Whether every queued and in-flight request completed within the
    /// drain window.
    pub drained_clean: bool,
}

/// One stored document: its family, committed content, and — after an
/// eviction — the identifier high-water mark to restore on reopen.
struct StoredDoc {
    family: usize,
    doc: DocTree,
    gen: Option<NodeIdGen>,
}

/// One queued write request.
struct Job {
    frame: Frame,
    enqueued: Instant,
    reply: mpsc::Sender<Frame>,
}

/// Queue state under one mutex: jobs, in-flight count, shutdown flag.
struct WorkQueue {
    jobs: VecDeque<Job>,
    in_flight: usize,
    shutdown: bool,
}

/// The long-lived serving daemon. Construct once over the compiled
/// family engines, then run [`Server::serve_listener`] (TCP) or
/// [`Server::serve_transport`] (stdio or an in-memory pipe).
pub struct Server<'e> {
    engines: &'e [Engine],
    cfg: ServerConfig,
    pool: LruSessionPool<'e>,
    store: Mutex<HashMap<u64, StoredDoc>>,
    /// Serializes the store↔pool critical sections (read-store →
    /// checkout → write-back, and close/load's remove → store update).
    /// Without it a concurrent eviction leaves a window — session gone
    /// from the pool, write-back not yet in the store — in which a
    /// checkout for the evicted document reopens a stale snapshot.
    /// Lease *holders* never take this lock, so the blocking inner
    /// checkout (same-document isolation) cannot deadlock through it.
    coherence: Mutex<()>,
    pending: Mutex<HashMap<u64, Propagation>>,
    live_cache: Mutex<HashMap<u64, CacheStats>>,
    metrics: Metrics,
    queue: Mutex<WorkQueue>,
    work_ready: Condvar,
    drained: Condvar,
    stopped: AtomicBool,
    drained_clean: AtomicBool,
}

fn relock<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl<'e> Server<'e> {
    /// A daemon serving documents of the given families.
    pub fn new(engines: &'e [Engine], cfg: ServerConfig) -> Server<'e> {
        assert!(!engines.is_empty(), "a server needs at least one family");
        let workers = cfg.workers.max(1);
        let pool = LruSessionPool::new(engines, cfg.pool_capacity.max(1));
        Server {
            engines,
            cfg: ServerConfig { workers, ..cfg },
            pool,
            store: Mutex::new(HashMap::new()),
            coherence: Mutex::new(()),
            pending: Mutex::new(HashMap::new()),
            live_cache: Mutex::new(HashMap::new()),
            metrics: Metrics::new(),
            queue: Mutex::new(WorkQueue {
                jobs: VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            drained: Condvar::new(),
            stopped: AtomicBool::new(false),
            drained_clean: AtomicBool::new(true),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// A current metrics snapshot (what the `stats` verb returns).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let live = {
            let map = relock(self.live_cache.lock());
            map.values().fold(CacheStats::default(), |mut acc, s| {
                acc.hits += s.hits;
                acc.misses += s.misses;
                acc.invalidated += s.invalidated;
                acc.entries += s.entries;
                acc.shared_hits += s.shared_hits;
                acc.shared_misses += s.shared_misses;
                acc.published += s.published;
                acc
            })
        };
        // The shared tier is engine-owned: its counters need no retired /
        // live split (eviction never touches it), just a sum over the
        // server's families.
        let shared = self.engines.iter().map(|e| e.shared_cache_stats()).fold(
            SharedCacheStats::default(),
            |mut acc, s| {
                acc.hits += s.hits;
                acc.misses += s.misses;
                acc.published += s.published;
                acc.entries += s.entries;
                acc
            },
        );
        self.metrics
            .snapshot(live, shared, self.pool.resident(), self.pool.capacity())
    }

    /// Initiates shutdown from outside a connection (equivalent to the
    /// `shutdown` verb, minus the reply).
    pub fn request_shutdown(&self) {
        self.drain(Duration::from_secs(30));
    }

    /// Whether the daemon has fully stopped accepting work.
    pub fn stopped(&self) -> bool {
        self.stopped.load(Ordering::Acquire)
    }

    /// Serves TCP connections until a `shutdown` request completes.
    /// Every connection gets its own thread; write verbs funnel into the
    /// shared worker pool.
    pub fn serve_listener(&self, listener: TcpListener) -> std::io::Result<ServerReport> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.workers {
                scope.spawn(|| self.worker_loop());
            }
            loop {
                if self.stopped() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                        scope.spawn(move || self.conn_loop(StreamTransport::new(stream)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            // belt and braces: if the accept loop exited abnormally, make
            // sure the workers can drain and terminate
            self.drain(Duration::from_secs(30));
        });
        Ok(self.final_report())
    }

    /// Serves one transport (the `--stdio` mode) until the peer sends
    /// `shutdown` or closes the stream; either way the queue is drained
    /// before returning.
    pub fn serve_transport<T: Transport>(&self, transport: T) -> ServerReport {
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.workers {
                scope.spawn(|| self.worker_loop());
            }
            self.conn_loop(transport);
            self.drain(Duration::from_secs(30));
        });
        self.final_report()
    }

    fn final_report(&self) -> ServerReport {
        ServerReport {
            stats: self.stats_snapshot(),
            drained_clean: self.drained_clean.load(Ordering::Acquire),
        }
    }

    // ---- connection side ------------------------------------------------

    fn conn_loop<T: Transport>(&self, mut t: T) {
        loop {
            match t.recv() {
                Ok(Recv::Idle) => {
                    if self.stopped() {
                        break;
                    }
                }
                Ok(Recv::Eof) => break,
                Ok(Recv::Frame(req)) => {
                    let resp = self.dispatch(req);
                    if t.send(&resp).is_err() {
                        break;
                    }
                }
                Err(e) => {
                    // malformed peers get a typed error, then the
                    // connection closes (framing can no longer be trusted)
                    let _ = t.send(&Frame::err(format!("protocol error: {e}")));
                    break;
                }
            }
        }
    }

    /// Routes one request frame to its handler and produces the reply.
    fn dispatch(&self, req: Frame) -> Frame {
        self.metrics.count_request(req.verb);
        let resp = match req.verb {
            Verb::Hello => match check_hello(&req.payload) {
                Ok(()) => Frame::ok(format!("xvu {PROTOCOL_VERSION}")),
                Err(e) => Frame::err(e.to_string()),
            },
            Verb::Stats => Frame::ok(self.stats_snapshot().to_json()),
            Verb::Verify | Verb::Count => {
                if self.shutting_down() {
                    Frame::err("shutting down")
                } else {
                    let start = Instant::now();
                    let resp = self.handle_read(req.verb, &req.payload);
                    self.metrics.read_latency.record(start.elapsed());
                    resp
                }
            }
            Verb::Load
            | Verb::Open
            | Verb::Propagate
            | Verb::Commit
            | Verb::CloseDoc
            | Verb::Snapshot => self.enqueue_write(req),
            Verb::Shutdown => self.do_shutdown(),
            Verb::Ok | Verb::Err | Verb::Retry => Frame::err("not a request verb"),
        };
        if resp.verb == Verb::Err {
            self.metrics.count_error();
        }
        resp
    }

    fn shutting_down(&self) -> bool {
        relock(self.queue.lock()).shutdown
    }

    /// Admission control: bounded queue, reject-with-retry-after when
    /// deep. Blocks the connection thread until a worker replies.
    fn enqueue_write(&self, frame: Frame) -> Frame {
        let (tx, rx) = mpsc::channel();
        {
            let mut q = relock(self.queue.lock());
            if q.shutdown {
                return Frame::err("shutting down");
            }
            if q.jobs.len() >= self.cfg.queue_capacity {
                self.metrics.rejected_writes.fetch_add(1, Ordering::Relaxed);
                return Frame::retry(self.cfg.retry_after_ms);
            }
            q.jobs.push_back(Job {
                frame,
                enqueued: Instant::now(),
                reply: tx,
            });
            self.metrics.observe_queue_depth(q.jobs.len() as u64);
            self.work_ready.notify_one();
        }
        rx.recv()
            .unwrap_or_else(|_| Frame::err("worker dropped the request"))
    }

    fn do_shutdown(&self) -> Frame {
        self.drain(Duration::from_secs(30));
        Frame::ok(self.stats_snapshot().to_json())
    }

    /// Sets the shutdown flag and waits (bounded) for queued plus
    /// in-flight work to finish; then stops the accept loop.
    fn drain(&self, window: Duration) {
        let clean = {
            let mut q = relock(self.queue.lock());
            q.shutdown = true;
            self.work_ready.notify_all();
            let deadline = Instant::now() + window;
            while !(q.jobs.is_empty() && q.in_flight == 0) {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                q = relock(self.drained.wait_timeout(q, left)).0;
            }
            q.jobs.is_empty() && q.in_flight == 0
        };
        if !clean {
            self.drained_clean.store(false, Ordering::Release);
        }
        self.stopped.store(true, Ordering::Release);
    }

    // ---- worker side ----------------------------------------------------

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = relock(self.queue.lock());
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        q.in_flight += 1;
                        self.metrics.observe_queue_depth(q.jobs.len() as u64);
                        break Some(job);
                    }
                    if q.shutdown {
                        break None;
                    }
                    q = relock(self.work_ready.wait_timeout(q, Duration::from_millis(100))).0;
                }
            };
            let Some(job) = job else { return };
            let resp = self.handle_write(job.frame.verb, &job.frame.payload);
            if resp.verb == Verb::Err {
                self.metrics.count_error();
            }
            self.metrics.write_latency.record(job.enqueued.elapsed());
            let _ = job.reply.send(resp);
            let mut q = relock(self.queue.lock());
            q.in_flight -= 1;
            if q.shutdown && q.jobs.is_empty() && q.in_flight == 0 {
                self.drained.notify_all();
            }
        }
    }

    fn handle_write(&self, verb: Verb, payload: &str) -> Frame {
        match verb {
            Verb::Load => self.handle_load(payload),
            Verb::Open => self.handle_open(payload),
            Verb::Propagate => self.handle_propagate(payload),
            Verb::Commit => self.handle_commit(payload),
            Verb::CloseDoc => self.handle_close(payload),
            Verb::Snapshot => self.handle_snapshot(payload),
            other => Frame::err(format!("{} is not a write verb", other.name())),
        }
    }

    fn handle_read(&self, verb: Verb, payload: &str) -> Frame {
        match verb {
            Verb::Verify => self.handle_verify(payload),
            Verb::Count => self.handle_count(payload),
            other => Frame::err(format!("{} is not a read verb", other.name())),
        }
    }

    // ---- request handlers -----------------------------------------------

    fn handle_load(&self, payload: &str) -> Frame {
        let mut fields = payload.splitn(3, '\n');
        let (Some(id), Some(family), Some(term)) = (fields.next(), fields.next(), fields.next())
        else {
            return Frame::err("load expects doc_id\\nfamily\\nterm");
        };
        let Ok(doc_id) = id.parse::<u64>() else {
            return Frame::err(format!("bad document id {id:?}"));
        };
        let Ok(family) = family.parse::<usize>() else {
            return Frame::err(format!("bad family index {family:?}"));
        };
        if family >= self.engines.len() {
            return Frame::err(format!(
                "family {family} out of range (server has {})",
                self.engines.len()
            ));
        }
        let tree = match self.parse_doc(self.engines[family].alphabet(), term) {
            Ok(t) => t,
            Err(m) => return Frame::err(m),
        };
        if let Err(e) = self.engines[family].dtd().validate(&tree) {
            return Frame::err(format!("document violates the family DTD: {e}"));
        }
        // replacing a document discards any resident session and pending
        // propagation for its id; atomic with concurrent checkouts so a
        // racing lease never resurrects the replaced session's state
        let _atomic = relock(self.coherence.lock());
        if let Some(session) = self.pool.remove(doc_id) {
            self.metrics.retire_cache_stats(&session.cache_stats());
        }
        relock(self.pending.lock()).remove(&doc_id);
        relock(self.live_cache.lock()).remove(&doc_id);
        relock(self.store.lock()).insert(
            doc_id,
            StoredDoc {
                family,
                doc: tree,
                gen: None,
            },
        );
        Frame::ok("")
    }

    fn handle_open(&self, payload: &str) -> Frame {
        let Ok(doc_id) = payload.trim().parse::<u64>() else {
            return Frame::err(format!("bad document id {payload:?}"));
        };
        let (lease, family) = match self.lease_for(doc_id) {
            Ok(x) => x,
            Err(resp) => return resp,
        };
        let view = to_term_with_ids(lease.view(), self.engines[family].alphabet());
        self.note_cache(doc_id, &lease);
        Frame::ok(view)
    }

    fn handle_propagate(&self, payload: &str) -> Frame {
        let Some((id, term)) = payload.split_once('\n') else {
            return Frame::err("propagate expects doc_id\\nupdate-term");
        };
        let Ok(doc_id) = id.parse::<u64>() else {
            return Frame::err(format!("bad document id {id:?}"));
        };
        let (lease, family) = match self.lease_for(doc_id) {
            Ok(x) => x,
            Err(resp) => return resp,
        };
        let alpha = self.engines[family].alphabet();
        let update = match self.parse_update(alpha, term) {
            Ok(u) => u,
            Err(m) => return Frame::err(m),
        };
        let prop = match lease.propagate(&update) {
            Ok(p) => p,
            Err(e) => return Frame::err(e.to_string()),
        };
        let Some(count) = count_optimal_propagations(&prop.forest) else {
            return Frame::err("optimal count overflows u128".to_owned());
        };
        let script = script_to_term(&prop.script, alpha);
        let reply = format!("{}\n{}\n{}", prop.cost, count, script);
        self.note_cache(doc_id, &lease);
        relock(self.pending.lock()).insert(doc_id, prop);
        Frame::ok(reply)
    }

    fn handle_commit(&self, payload: &str) -> Frame {
        let Ok(doc_id) = payload.trim().parse::<u64>() else {
            return Frame::err(format!("bad document id {payload:?}"));
        };
        let Some(prop) = relock(self.pending.lock()).remove(&doc_id) else {
            return Frame::err(format!("document {doc_id} has no pending propagation"));
        };
        let (mut lease, _) = match self.lease_for(doc_id) {
            Ok(x) => x,
            Err(resp) => {
                // checkout pushback (e.g. a fully-leased pool) must not
                // consume the propagation: the client will retry
                relock(self.pending.lock()).insert(doc_id, prop);
                return resp;
            }
        };
        match lease.commit(&prop) {
            Ok(()) => {
                self.note_cache(doc_id, &lease);
                Frame::ok("")
            }
            Err(e) => {
                // leave the propagation pending so the client may retry
                relock(self.pending.lock()).insert(doc_id, prop);
                Frame::err(e.to_string())
            }
        }
    }

    fn handle_close(&self, payload: &str) -> Frame {
        let Ok(doc_id) = payload.trim().parse::<u64>() else {
            return Frame::err(format!("bad document id {payload:?}"));
        };
        // atomic with concurrent checkouts: the removed session's state
        // must land in the store before any lease can reopen the document
        let _atomic = relock(self.coherence.lock());
        let removed = self.pool.remove(doc_id);
        relock(self.pending.lock()).remove(&doc_id);
        relock(self.live_cache.lock()).remove(&doc_id);
        let mut store = relock(self.store.lock());
        let Some(stored) = store.get_mut(&doc_id) else {
            return Frame::err(format!("unknown document {doc_id}"));
        };
        if let Some(session) = removed {
            self.metrics.retire_cache_stats(&session.cache_stats());
            stored.doc = session.document().clone();
        }
        // a closed document starts a fresh identifier history on reopen —
        // same as a direct Engine::open on the committed document
        stored.gen = None;
        Frame::ok("")
    }

    fn handle_snapshot(&self, payload: &str) -> Frame {
        let path = payload.trim();
        if path.is_empty() {
            return Frame::err("snapshot expects a destination path");
        }
        let bytes = self.snapshot_store_bytes();
        let docs = {
            let store = relock(self.store.lock());
            store.len()
        };
        match std::fs::write(path, &bytes) {
            Ok(()) => Frame::ok(format!("docs={docs} bytes={}", bytes.len())),
            Err(e) => Frame::err(format!("cannot write snapshot {path:?}: {e}")),
        }
    }

    fn handle_verify(&self, payload: &str) -> Frame {
        let mut fields = payload.splitn(3, '\n');
        let (Some(id), Some(update), Some(candidate)) =
            (fields.next(), fields.next(), fields.next())
        else {
            return Frame::err("verify expects doc_id\\nupdate\\ncandidate");
        };
        let Ok(doc_id) = id.parse::<u64>() else {
            return Frame::err(format!("bad document id {id:?}"));
        };
        let (lease, family) = match self.lease_for(doc_id) {
            Ok(x) => x,
            Err(resp) => return resp,
        };
        let alpha = self.engines[family].alphabet();
        let (update, candidate) = match (
            self.parse_update(alpha, update),
            self.parse_update(alpha, candidate),
        ) {
            (Ok(u), Ok(c)) => (u, c),
            (Err(m), _) | (_, Err(m)) => return Frame::err(m),
        };
        match lease.verify(&update, &candidate) {
            Ok(()) => {
                self.note_cache(doc_id, &lease);
                Frame::ok("")
            }
            Err(e) => Frame::err(e.to_string()),
        }
    }

    fn handle_count(&self, payload: &str) -> Frame {
        let Some((id, term)) = payload.split_once('\n') else {
            return Frame::err("count expects doc_id\\nupdate-term");
        };
        let Ok(doc_id) = id.parse::<u64>() else {
            return Frame::err(format!("bad document id {id:?}"));
        };
        let (lease, family) = match self.lease_for(doc_id) {
            Ok(x) => x,
            Err(resp) => return resp,
        };
        let update = match self.parse_update(self.engines[family].alphabet(), term) {
            Ok(u) => u,
            Err(m) => return Frame::err(m),
        };
        match lease.count_optimal(&update) {
            Ok(n) => {
                self.note_cache(doc_id, &lease);
                Frame::ok(n.to_string())
            }
            Err(e) => Frame::err(e.to_string()),
        }
    }

    // ---- shared plumbing -------------------------------------------------

    /// Checks out the document's session (opening or reopening as
    /// needed), writing back any sessions the LRU pool evicted to make
    /// room and restoring the identifier floor after a reopen.
    fn lease_for(&self, doc_id: u64) -> Result<(SessionLease<'_, 'e, u64>, usize), Frame> {
        // the store snapshot, the checkout it seeds, and the write-back
        // of whatever that checkout evicted must be one atomic step: a
        // concurrent eviction between the snapshot and the checkout
        // would otherwise reopen this document from a stale store entry
        let _atomic = relock(self.coherence.lock());
        let (family, tree, saved_gen) = {
            let store = relock(self.store.lock());
            let Some(stored) = store.get(&doc_id) else {
                return Err(Frame::err(format!("unknown document {doc_id}")));
            };
            (stored.family, stored.doc.clone(), stored.gen.clone())
        };
        match self.pool.checkout(doc_id, family, &tree) {
            Ok((mut lease, evicted)) => {
                self.write_back(evicted);
                if let Some(gen) = saved_gen {
                    lease.merge_id_gen(&gen);
                }
                Ok((lease, family))
            }
            Err(PropagateError::PoolAtCapacity { .. }) => {
                self.metrics.rejected_writes.fetch_add(1, Ordering::Relaxed);
                Err(Frame::retry(self.cfg.retry_after_ms))
            }
            Err(e) => Err(Frame::err(e.to_string())),
        }
    }

    /// Persists evicted sessions: committed document plus identifier
    /// high-water mark back into the store, cache counters into the
    /// retired totals.
    fn write_back(&self, evicted: Vec<Evicted<'e>>) {
        for ev in evicted {
            self.metrics.evictions.fetch_add(1, Ordering::Relaxed);
            self.metrics.retire_cache_stats(&ev.session.cache_stats());
            relock(self.live_cache.lock()).remove(&ev.doc);
            let mut store = relock(self.store.lock());
            if let Some(stored) = store.get_mut(&ev.doc) {
                stored.doc = ev.session.document().clone();
                stored.gen = Some(ev.session.id_gen());
            }
        }
    }

    /// Preloads the document store from a packed snapshot corpus — the
    /// cold-start path: no term/XML parsing, one bulk decode per
    /// document. Every document is checked against its family's alphabet
    /// (foreign labels are rejected, like the `load` verb) and DTD.
    /// Returns the number of documents loaded.
    pub fn preload_corpus(&self, corpus: &SnapshotFile) -> Result<usize, String> {
        let _atomic = relock(self.coherence.lock());
        let mut loaded = 0usize;
        for (i, entry) in corpus.entries().iter().enumerate() {
            let family = entry.family as usize;
            if family >= self.engines.len() {
                return Err(format!(
                    "doc {}: family {family} out of range (server has {})",
                    entry.doc_id,
                    self.engines.len()
                ));
            }
            let alpha = self.engines[family].alphabet();
            let mut scratch = alpha.clone();
            let tree = corpus
                .decode(i, &mut scratch)
                .map_err(|e| format!("doc {}: {e}", entry.doc_id))?;
            if scratch.len() != alpha.len() {
                return Err(format!(
                    "doc {}: document uses labels outside the family alphabet",
                    entry.doc_id
                ));
            }
            if let Err(e) = self.engines[family].dtd().validate(&tree) {
                return Err(format!(
                    "doc {}: document violates the family DTD: {e}",
                    entry.doc_id
                ));
            }
            relock(self.store.lock()).insert(
                entry.doc_id,
                StoredDoc {
                    family,
                    doc: tree,
                    gen: None,
                },
            );
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Serializes the committed store as a snapshot corpus image.
    ///
    /// Resident sessions are flushed first with eviction semantics —
    /// committed document and identifier high-water mark written back,
    /// session-private memos retired — so the corpus captures exactly
    /// what a cold restart would serve, and reopening after the flush is
    /// observationally invisible (same guarantee as LRU eviction).
    /// Documents are emitted sorted by id, so equal stores produce
    /// byte-identical corpora.
    pub fn snapshot_store_bytes(&self) -> Vec<u8> {
        let _atomic = relock(self.coherence.lock());
        for doc_id in self.pool.resident_docs() {
            if let Some(session) = self.pool.remove(doc_id) {
                self.metrics.retire_cache_stats(&session.cache_stats());
                relock(self.live_cache.lock()).remove(&doc_id);
                let mut store = relock(self.store.lock());
                if let Some(stored) = store.get_mut(&doc_id) {
                    stored.doc = session.document().clone();
                    stored.gen = Some(session.id_gen());
                }
            }
        }
        let store = relock(self.store.lock());
        let mut ids: Vec<u64> = store.keys().copied().collect();
        ids.sort_unstable();
        let mut builder = CorpusBuilder::new();
        for id in ids {
            let stored = &store[&id];
            let alpha = self.engines[stored.family].alphabet();
            builder
                .push(id, stored.family as u32, &stored.doc, alpha)
                .expect("stored documents always encode");
        }
        builder.finish()
    }

    /// Records the session's latest cache counters for live aggregation.
    fn note_cache(&self, doc_id: u64, lease: &SessionLease<'_, 'e, u64>) {
        relock(self.live_cache.lock()).insert(doc_id, lease.cache_stats());
    }

    /// Parses a script term over the family alphabet, rejecting labels
    /// the alphabet does not know.
    fn parse_update(&self, alpha: &Alphabet, term: &str) -> Result<Script, String> {
        let mut scratch = alpha.clone();
        let script =
            parse_script(&mut scratch, term).map_err(|e| format!("bad script term: {e}"))?;
        if scratch.len() != alpha.len() {
            return Err("script uses labels outside the family alphabet".to_owned());
        }
        Ok(script)
    }

    /// Parses a document term (identifiers come from the wire), rejecting
    /// unknown labels.
    fn parse_doc(&self, alpha: &Alphabet, term: &str) -> Result<DocTree, String> {
        let mut scratch = alpha.clone();
        let mut gen = NodeIdGen::new();
        let tree = parse_term_with_ids(&mut scratch, &mut gen, term)
            .map_err(|e| format!("bad document term: {e}"))?;
        if scratch.len() != alpha.len() {
            return Err("document uses labels outside the family alphabet".to_owned());
        }
        Ok(tree)
    }
}

impl std::fmt::Debug for Server<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("families", &self.engines.len())
            .field("config", &self.cfg)
            .finish_non_exhaustive()
    }
}
