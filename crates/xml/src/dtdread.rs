//! Reading real DTD `<!ELEMENT>` declarations.
//!
//! Maps standard DTD content-model syntax onto `xvu_dtd`:
//!
//! ```text
//! <!ELEMENT r (a, (b | c), d)*>
//! <!ELEMENT d ((a | b), c)*>
//! <!ELEMENT a EMPTY>
//! ```
//!
//! `,` is concatenation, `|` alternation, postfix `*`/`?`/`+` iteration
//! (with `e+` desugared to `e·e*`), `EMPTY` is `ε`. `ANY` and `#PCDATA`
//! are rejected — the element-only data model has neither mixed content
//! nor unconstrained children.

use crate::error::XmlError;
use xvu_automata::Regex;
use xvu_dtd::Dtd;
use xvu_tree::Alphabet;

/// Parses the `<!ELEMENT …>` declarations of a DTD document (internal
/// subset syntax; `<!ATTLIST>`/`<!ENTITY>` declarations and comments are
/// skipped).
pub fn read_dtd(alpha: &mut Alphabet, input: &str) -> Result<Dtd, XmlError> {
    let mut dtd = Dtd::new();
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes[pos].is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        if input[pos..].starts_with("<!--") {
            pos = input[pos + 4..]
                .find("-->")
                .map(|i| pos + 4 + i + 3)
                .ok_or_else(|| XmlError::Parse {
                    at: pos,
                    msg: "unterminated comment".to_owned(),
                })?;
            continue;
        }
        if input[pos..].starts_with("<!ELEMENT") {
            let end = input[pos..].find('>').ok_or_else(|| XmlError::Parse {
                at: pos,
                msg: "unterminated <!ELEMENT declaration".to_owned(),
            })?;
            let decl = &input[pos + "<!ELEMENT".len()..pos + end];
            parse_element_decl(alpha, &mut dtd, decl, pos)?;
            pos += end + 1;
            continue;
        }
        if input[pos..].starts_with("<!") {
            // other declarations: skip to '>'
            let end = input[pos..].find('>').ok_or_else(|| XmlError::Parse {
                at: pos,
                msg: "unterminated declaration".to_owned(),
            })?;
            pos += end + 1;
            continue;
        }
        return Err(XmlError::Parse {
            at: pos,
            msg: "expected a declaration".to_owned(),
        });
    }
    Ok(dtd)
}

fn parse_element_decl(
    alpha: &mut Alphabet,
    dtd: &mut Dtd,
    decl: &str,
    offset: usize,
) -> Result<(), XmlError> {
    let decl = decl.trim();
    let (name, model) = decl
        .split_once(char::is_whitespace)
        .ok_or_else(|| XmlError::Parse {
            at: offset,
            msg: "expected '<!ELEMENT name model>'".to_owned(),
        })?;
    let label = alpha.intern(name.trim());
    if dtd.has_rule(label) {
        return Err(XmlError::Parse {
            at: offset,
            msg: format!("duplicate <!ELEMENT {name}>"),
        });
    }
    let model = model.trim();
    let re = match model {
        "EMPTY" => Regex::Epsilon,
        "ANY" => {
            return Err(XmlError::Parse {
                at: offset,
                msg: "ANY content is not supported (element-only model)".to_owned(),
            })
        }
        _ => {
            let mut p = ModelParser {
                alpha,
                bytes: model.as_bytes(),
                pos: 0,
                offset,
            };
            let e = p.alt()?;
            p.skip_ws();
            if p.pos != p.bytes.len() {
                return Err(XmlError::Parse {
                    at: offset + p.pos,
                    msg: "trailing content in content model".to_owned(),
                });
            }
            e
        }
    };
    dtd.set_rule(label, &re);
    Ok(())
}

struct ModelParser<'a> {
    alpha: &'a mut Alphabet,
    bytes: &'a [u8],
    pos: usize,
    offset: usize,
}

impl ModelParser<'_> {
    fn alt(&mut self) -> Result<Regex, XmlError> {
        let mut parts = vec![self.seq()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'|') {
                self.pos += 1;
                parts.push(self.seq()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Regex::Alt(parts)
        })
    }

    fn seq(&mut self) -> Result<Regex, XmlError> {
        let mut parts = vec![self.rep()?];
        loop {
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
                parts.push(self.rep()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Regex::Concat(parts)
        })
    }

    fn rep(&mut self) -> Result<Regex, XmlError> {
        let mut e = self.atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    e = Regex::star(e);
                }
                Some(b'?') => {
                    self.pos += 1;
                    e = Regex::opt(e);
                }
                Some(b'+') => {
                    self.pos += 1;
                    // e+ = e · e*
                    e = Regex::concat([e.clone(), Regex::star(e)]);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Regex, XmlError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.alt()?;
                self.skip_ws();
                if self.peek() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                self.pos += 1;
                Ok(e)
            }
            Some(b'#') => Err(self.err("#PCDATA is not supported (element-only model)")),
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => {
                let start = self.pos;
                while self.peek().is_some_and(|b| {
                    b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b':'
                }) {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
                Ok(Regex::sym(self.alpha.intern(name)))
            }
            _ => Err(self.err("expected a name or '('")),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> XmlError {
        XmlError::Parse {
            at: self.offset + self.pos,
            msg: msg.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvu_tree::{parse_term, NodeIdGen};

    #[test]
    fn paper_d0_in_dtd_syntax() {
        let mut alpha = Alphabet::new();
        let dtd = read_dtd(
            &mut alpha,
            "<!-- D0 from the paper -->\n\
             <!ELEMENT r (a, (b | c), d)*>\n\
             <!ELEMENT d ((a | b), c)*>\n\
             <!ELEMENT a EMPTY>\n",
        )
        .unwrap();
        let mut gen = NodeIdGen::new();
        let t0 = parse_term(&mut alpha, &mut gen, "r(a, b, d(a, c), a, c, d(b, c))").unwrap();
        assert!(dtd.is_valid(&t0));
        let bad = parse_term(&mut alpha, &mut gen, "r(a, b)").unwrap();
        assert!(!dtd.is_valid(&bad));
    }

    #[test]
    fn plus_is_one_or_more() {
        let mut alpha = Alphabet::new();
        let dtd = read_dtd(&mut alpha, "<!ELEMENT r (a)+>").unwrap();
        let mut gen = NodeIdGen::new();
        assert!(!dtd.is_valid(&parse_term(&mut alpha, &mut gen, "r").unwrap()));
        assert!(dtd.is_valid(&parse_term(&mut alpha, &mut gen, "r(a)").unwrap()));
        assert!(dtd.is_valid(&parse_term(&mut alpha, &mut gen, "r(a, a, a)").unwrap()));
    }

    #[test]
    fn attlist_and_entities_are_skipped() {
        let mut alpha = Alphabet::new();
        let dtd = read_dtd(
            &mut alpha,
            "<!ELEMENT r (a)*>\n<!ATTLIST r version CDATA #REQUIRED>\n<!ENTITY x \"y\">",
        )
        .unwrap();
        assert!(dtd.has_rule(alpha.get("r").unwrap()));
    }

    #[test]
    fn pcdata_and_any_are_rejected() {
        let mut alpha = Alphabet::new();
        assert!(read_dtd(&mut alpha, "<!ELEMENT r (#PCDATA)>").is_err());
        assert!(read_dtd(&mut alpha, "<!ELEMENT r ANY>").is_err());
    }

    #[test]
    fn duplicate_elements_are_rejected() {
        let mut alpha = Alphabet::new();
        assert!(read_dtd(&mut alpha, "<!ELEMENT r (a)>\n<!ELEMENT r (b)>").is_err());
    }
}
