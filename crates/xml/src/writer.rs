//! Serialising document trees as XML.

use xvu_tree::{Alphabet, DocTree, NodeId};

/// Serialisation options.
#[derive(Clone, Debug)]
pub struct WriteOptions {
    /// Pretty-print with two-space indentation.
    pub pretty: bool,
    /// Emit `xvu:id` attributes carrying node identifiers (round-trips
    /// identifiers through XML; off by default for plain interchange).
    pub with_ids: bool,
}

impl Default for WriteOptions {
    fn default() -> WriteOptions {
        WriteOptions {
            pretty: true,
            with_ids: false,
        }
    }
}

/// Writes a tree as an XML document (element-only; see the crate docs for
/// the data-model note).
pub fn write_xml(tree: &DocTree, alpha: &Alphabet, opts: &WriteOptions) -> String {
    let mut out = String::new();
    write_node(tree, alpha, tree.root(), opts, 0, &mut out);
    out
}

fn write_node(
    tree: &DocTree,
    alpha: &Alphabet,
    n: NodeId,
    opts: &WriteOptions,
    depth: usize,
    out: &mut String,
) {
    if opts.pretty {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    let name = alpha.name(tree.label(n));
    out.push('<');
    out.push_str(name);
    if opts.with_ids {
        out.push_str(&format!(" xvu:id=\"{}\"", n.0));
    }
    let children = tree.children(n);
    if children.is_empty() {
        out.push_str("/>");
        if opts.pretty {
            out.push('\n');
        }
        return;
    }
    out.push('>');
    if opts.pretty {
        out.push('\n');
    }
    for &c in children {
        write_node(tree, alpha, c, opts, depth + 1, out);
    }
    if opts.pretty {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
    if opts.pretty {
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};

    #[test]
    fn writes_nested_elements() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, d#2(c#3))").unwrap();
        let xml = write_xml(&t, &alpha, &WriteOptions::default());
        assert_eq!(xml, "<r>\n  <a/>\n  <d>\n    <c/>\n  </d>\n</r>\n");
    }

    #[test]
    fn compact_mode() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1)").unwrap();
        let xml = write_xml(
            &t,
            &alpha,
            &WriteOptions {
                pretty: false,
                with_ids: false,
            },
        );
        assert_eq!(xml, "<r><a/></r>");
    }

    #[test]
    fn id_attributes() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term_with_ids(&mut alpha, &mut gen, "r#5(a#9)").unwrap();
        let xml = write_xml(
            &t,
            &alpha,
            &WriteOptions {
                pretty: false,
                with_ids: true,
            },
        );
        assert_eq!(xml, "<r xvu:id=\"5\"><a xvu:id=\"9\"/></r>");
    }
}
