//! XML and DTD interchange for the element-only tree model.
//!
//! The paper's formal model is element-only ordered labeled trees with
//! persistent node identifiers — no text nodes, no attributes, since none
//! appear in any definition or theorem. This crate provides just enough
//! real-world XML syntax to get documents and schemas in and out:
//!
//! * [`read_xml`] / [`write_xml`] — strict element-only documents, with an
//!   optional `xvu:id` attribute round-tripping node identifiers;
//! * [`read_dtd`] — standard `<!ELEMENT …>` declarations mapped onto
//!   `xvu_dtd` content models (`EMPTY`, sequences, choices, `* ? +`).
//!
//! Text content, `#PCDATA`, and `ANY` are rejected with typed errors
//! rather than silently dropped.
//!
//! # Paper cross-reference
//!
//! | paper | here |
//! |-------|------|
//! | element-only documents (§2's data model) as XML | [`read_xml`], [`write_xml`] |
//! | persistent node identifiers `N_t` across serialisation | the `xvu:id` attribute ([`WriteOptions::with_ids`]) |
//! | DTDs `D : Σ → NFA` (§2) from `<!ELEMENT>` syntax | [`read_dtd`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtdread;
mod error;
mod reader;
mod writer;

pub use dtdread::read_dtd;
pub use error::XmlError;
pub use reader::read_xml;
pub use writer::{write_xml, WriteOptions};
