//! Errors for XML reading.

use std::fmt;

/// Errors raised while parsing XML documents or DTD declarations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XmlError {
    /// Syntax or data-model error.
    Parse {
        /// Byte offset of the error in the input.
        at: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse { at, msg } => write!(f, "XML parse error at byte {at}: {msg}"),
        }
    }
}

impl std::error::Error for XmlError {}
