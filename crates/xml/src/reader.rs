//! Parsing XML documents into document trees.
//!
//! A deliberately small, strict parser for the element-only fragment of
//! XML the paper's data model covers: elements, self-closing tags, the
//! `xvu:id` identifier attribute written by the writer, comments, and an
//! optional XML declaration. Text content that is not whitespace, CDATA,
//! and entities are **rejected** (the formal model has no text nodes);
//! other attributes are ignored.

use crate::error::XmlError;
use xvu_tree::{Alphabet, DocTree, NodeId, NodeIdGen, Tree};

/// Parses an XML document into a tree. Elements with `xvu:id` attributes
/// keep those identifiers; others get fresh ones from `gen`.
pub fn read_xml(
    alpha: &mut Alphabet,
    gen: &mut NodeIdGen,
    input: &str,
) -> Result<DocTree, XmlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let tree = p.element(alpha, gen)?;
    p.skip_misc()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the root element"));
    }
    Ok(tree)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn element(&mut self, alpha: &mut Alphabet, gen: &mut NodeIdGen) -> Result<DocTree, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let label = alpha.intern(&name);

        // attributes (only xvu:id is interpreted)
        let mut explicit_id: Option<NodeId> = None;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') | Some(b'>') => break,
                Some(_) => {
                    let attr = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' after attribute name"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.quoted()?;
                    if attr == "xvu:id" {
                        let raw: u64 = value
                            .parse()
                            .map_err(|_| self.err("xvu:id must be a non-negative integer"))?;
                        explicit_id = Some(NodeId(raw));
                    }
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        let id = match explicit_id {
            Some(id) => {
                gen.bump_past(id);
                id
            }
            None => gen.fresh(),
        };
        let mut tree = Tree::leaf_with_id(id, label);

        if self.peek() == Some(b'/') {
            self.pos += 1;
            if self.peek() != Some(b'>') {
                return Err(self.err("expected '>' after '/'"));
            }
            self.pos += 1;
            return Ok(tree);
        }
        self.pos += 1; // '>'

        loop {
            self.skip_misc()?;
            match (self.peek(), self.peek_at(1)) {
                (Some(b'<'), Some(b'/')) => {
                    self.pos += 2;
                    let close = self.name()?;
                    if close != name {
                        return Err(
                            self.err(&format!("mismatched closing tag </{close}> for <{name}>"))
                        );
                    }
                    self.skip_ws();
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' in closing tag"));
                    }
                    self.pos += 1;
                    return Ok(tree);
                }
                (Some(b'<'), _) => {
                    let child = self.element(alpha, gen)?;
                    let pos = tree.children(tree.root()).len();
                    tree.attach_subtree(tree.root(), pos, child)
                        .map_err(|e| self.err(&format!("duplicate identifier: {e}")))?;
                }
                (Some(_), _) => {
                    return Err(self.err("text content is not supported (element-only data model)"))
                }
                (None, _) => return Err(self.err("unexpected end of input in element")),
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => self.pos += 1,
            _ => return Err(self.err("expected a name")),
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b':')
        {
            self.pos += 1;
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii")
            .to_owned())
    }

    fn quoted(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while self.peek().is_some_and(|b| b != quote) {
            self.pos += 1;
        }
        if self.peek() != Some(quote) {
            return Err(self.err("unterminated attribute value"));
        }
        let v = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("checked utf8 via input &str")
            .to_owned();
        self.pos += 1;
        Ok(v)
    }

    /// Skips whitespace, comments, processing instructions, and the XML
    /// declaration. Rejects non-whitespace text.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with(b"<!--") {
                match find(self.bytes, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.starts_with(b"<?") {
                match find(self.bytes, self.pos + 2, b"?>") {
                    Some(end) => self.pos = end + 2,
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn starts_with(&self, prefix: &[u8]) -> bool {
        self.bytes[self.pos..].starts_with(prefix)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, k: usize) -> Option<u8> {
        self.bytes.get(self.pos + k).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> XmlError {
        XmlError::Parse {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    (from..haystack.len().saturating_sub(needle.len() - 1))
        .find(|&i| haystack[i..].starts_with(needle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_xml, WriteOptions};
    use xvu_tree::{parse_term_with_ids, to_term};

    #[test]
    fn parses_nested_document() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = read_xml(
            &mut alpha,
            &mut gen,
            "<?xml version=\"1.0\"?>\n<!-- doc -->\n<r>\n  <a/>\n  <d><c/></d>\n</r>",
        )
        .unwrap();
        assert_eq!(to_term(&t, &alpha), "r(a, d(c))");
    }

    #[test]
    fn round_trip_with_ids() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term_with_ids(&mut alpha, &mut gen, "r#3(a#5, d#7(c#11))").unwrap();
        let xml = write_xml(
            &t,
            &alpha,
            &WriteOptions {
                pretty: true,
                with_ids: true,
            },
        );
        let mut gen2 = NodeIdGen::new();
        let back = read_xml(&mut alpha, &mut gen2, &xml).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn round_trip_without_ids_is_isomorphic() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = parse_term_with_ids(&mut alpha, &mut gen, "r#0(a#1, a#2, d#3(c#4))").unwrap();
        let xml = write_xml(&t, &alpha, &WriteOptions::default());
        let back = read_xml(&mut alpha, &mut gen, &xml).unwrap();
        assert!(back.isomorphic(&t));
    }

    #[test]
    fn unknown_attributes_are_ignored() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let t = read_xml(&mut alpha, &mut gen, "<r class='x' id=\"9\"><a/></r>").unwrap();
        assert_eq!(t.size(), 2);
    }

    #[test]
    fn text_content_is_rejected() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        let err = read_xml(&mut alpha, &mut gen, "<r>hello</r>").unwrap_err();
        assert!(matches!(err, XmlError::Parse { .. }));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let mut alpha = Alphabet::new();
        let mut gen = NodeIdGen::new();
        for bad in [
            "",
            "<r>",
            "<r></s>",
            "<r><a/></r><r/>",
            "<r attr></r>",
            "<r attr=x></r>",
            "<1bad/>",
            "<r><!-- unterminated </r>",
        ] {
            assert!(read_xml(&mut alpha, &mut gen, bad).is_err(), "{bad:?}");
        }
    }
}
