//! **The view update problem for XML** — the paper's core contribution.
//!
//! Given a DTD `D`, an annotation-defined view `A`, a source document
//! `t ∈ L(D)`, and a user update `S` of the view `A(t)`, this crate
//! constructs propagations `S'` of `S` to the source that are
//!
//! * **schema compliant** — `Out(S') ∈ L(D)`, and
//! * **side-effect free** — `A(Out(S')) = Out(S)`,
//!
//! using the paper's graph machinery:
//!
//! | paper | here |
//! |-------|------|
//! | inversion graphs `H(D,A,t')`, Theorems 1–2 | [`InversionForest`] |
//! | propagation graphs `G(D,A,t,S)`, Theorems 3–4 | [`PropagationForest`] |
//! | optimal subgraphs `H*`, `G*` | [`pathgraph::PathGraph::optimal_subgraph`] |
//! | existence (Theorem 5) | exercised by the randomized test-suite |
//! | the polynomial algorithm with `Φ` and insertlets (Theorem 6) | [`propagate`] + [`Selector`] |
//!
//! # Quickstart
//!
//! Compile the schema and view once into an [`Engine`], open the document
//! in a [`Session`], and serve updates:
//!
//! ```
//! use xvu_dtd::parse_dtd;
//! use xvu_edit::parse_script;
//! use xvu_propagate::Engine;
//! use xvu_tree::{parse_term_with_ids, Alphabet, NodeIdGen};
//! use xvu_view::parse_annotation;
//!
//! let mut alpha = Alphabet::new();
//! let mut gen = NodeIdGen::new();
//! let dtd = parse_dtd(&mut alpha, "r -> (a.(b+c).d)*\nd -> ((a+b).c)*").unwrap();
//! let ann = parse_annotation(&mut alpha, "hide r b\nhide r c\nhide d a\nhide d b").unwrap();
//! let t0 = parse_term_with_ids(
//!     &mut alpha, &mut gen,
//!     "r#0(a#1, b#2, d#3(a#7, c#8), a#4, c#5, d#6(b#9, c#10))",
//! ).unwrap();
//! // The user deletes the first (a, d) group and inserts a new one.
//! let s0 = parse_script(
//!     &mut alpha,
//!     "nop:r#0(del:a#1, del:d#3(del:c#8), nop:a#4, \
//!      ins:d#11(ins:c#13, ins:c#14), ins:a#12, nop:d#6(nop:c#10, ins:c#15))",
//! ).unwrap();
//!
//! let engine = Engine::builder()
//!     .alphabet(alpha)
//!     .dtd(dtd)
//!     .annotation(ann)
//!     .build()
//!     .unwrap();
//! let mut session = engine.open(&t0).unwrap();
//! let prop = session.propagate(&s0).unwrap();
//! assert_eq!(prop.cost, 14); // the paper's Figure 7 optimum
//! session.verify(&s0, &prop.script).unwrap();
//! session.commit(&prop).unwrap(); // serve the next update from Out(S')
//! ```
//!
//! Sessions are *incrementally cached*: per-node dynamic-programming
//! state (graphs, optimal subgraphs, complement restrictions, typing
//! runs) persists across updates in a [`PropCache`], consulted for every
//! node outside an update's footprint and invalidated at
//! [`Session::commit`] for exactly the dirty region — see the [`cache`
//! module](PropCache) and `README.md`'s "Architecture: incremental
//! propagation".
//!
//! The one-shot layer ([`Instance::new`] + [`propagate`] +
//! [`verify_propagation`]) remains for single-update callers and is
//! implemented over the same core code paths.
//!
//! For serving many independent requests, the engine is `Send + Sync`
//! and shares across OS threads behind one `Arc`: see the [`serve`]
//! module ([`Engine::propagate_batch`] and [`SessionPool`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod cache;
mod complement;
mod cost;
mod count;
mod engine;
mod enumerate;
mod error;
#[cfg(test)]
mod fixtures;
mod forest;
mod graph;
mod incremental;
mod instance;
mod inversion;
pub mod pathgraph;
mod scratch;
mod segments;
mod selection;
pub mod serve;
pub mod shared;
mod typing;
mod verify;

pub use algorithm::{propagate, propagate_view_edit, Config, PhaseBreakdown, Propagation};
pub use cache::{CacheStats, PropCache};
pub use complement::{find_complement_preserving, invisible_impact, InvisibleImpact};
pub use cost::CostModel;
pub use count::count_optimal_propagations;
pub use engine::{Engine, EngineBuilder, Session};
pub use enumerate::{enumerate_optimal_propagations, enumerate_propagations_bounded};
pub use error::PropagateError;
pub use forest::PropagationForest;
pub use graph::{build_prop_graph, source_child_run, PropEdge, PropGraph, PropVertex};
pub use incremental::{
    cross_view_effect, cross_view_touched, revalidate_output, revalidation_workload,
};
pub use instance::Instance;
pub use inversion::{InvEdge, InvGraph, InvVertex, InversionForest};
pub use pathgraph::GraphScratch;
pub use scratch::PropScratch;
pub use segments::Segmentation;
pub use selection::{Classify, EdgeClass, Selector};
pub use serve::{EvictOutcome, SessionLease, SessionPool};
pub use shared::{SharedCacheBackend, SharedCacheStats, SharedMemoCache};
pub use typing::{typing_report, TypingReport};
pub use verify::verify_propagation;
