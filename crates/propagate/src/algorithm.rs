//! The end-to-end propagation algorithm (paper §5, Theorem 6).
//!
//! 1. Build the optimal propagation graphs for the source document and the
//!    view update (plus inversion graphs for inserted fragments).
//! 2. Choose exactly one propagation (inversion) path per graph with the
//!    preference function `Φ` ([`crate::Selector`]).
//! 3. Recursively assemble the propagation script from the chosen paths,
//!    materialising insertlets for invisible inserts.
//!
//! With a polynomial `Φ` and an insertlet package `W`, the whole pipeline
//! is polynomial in `|D| + |t| + |S| + |W|`.

use crate::cache::PropCache;
use crate::cost::CostModel;
use crate::error::PropagateError;
use crate::forest::PropagationForest;
use crate::graph::{PropEdge, PropGraph};
use crate::instance::Instance;
use crate::scratch::PropScratch;
use crate::selection::Selector;
use std::sync::Arc;
use std::time::Instant;
use xvu_dtd::{min_sizes, InsertletPackage};
use xvu_edit::{del_script, ins_script, nop_script, ELabel, Script, ScriptFootprint};
use xvu_tree::{NodeId, NodeIdGen, SlotMap, Tree};

/// Tuning knobs for [`propagate`].
#[derive(Clone, Debug)]
pub struct Config {
    /// The path-preference function `Φ`.
    pub selector: Selector,
    /// Node budget for materialising minimal witnesses when a label has no
    /// insertlet (guards against the paper's exponential-minimal-tree
    /// DTDs).
    pub witness_budget: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            selector: Selector::PreferNop,
            witness_budget: 100_000,
        }
    }
}

/// Wall-clock decomposition of one propagation. All values are
/// nanoseconds. The kernel fills the graph/typing/assembly phases;
/// `instance_ns` belongs to the caller that constructs (or diffs) the
/// instance — [`crate::Session::propagate_phased`] fills it, and the bench
/// harness times the commit phase externally.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseBreakdown {
    /// Instance construction and validation.
    pub instance_ns: u64,
    /// Propagation-graph construction (forest build minus typing).
    pub graph_build_ns: u64,
    /// Content-model typing runs inside the forest build.
    pub typing_ns: u64,
    /// Path selection and script assembly.
    pub assemble_ns: u64,
}

/// The result of a propagation: the script, its cost, and the graphs it
/// was read off (kept for inspection, counting, and enumeration).
#[derive(Clone, Debug)]
pub struct Propagation {
    /// The propagation script `S'` (input tree = the source document).
    pub script: Script,
    /// Its cost — equal to [`PropagationForest::optimal_cost`].
    pub cost: u64,
    /// The graphs.
    pub forest: PropagationForest,
}

/// Computes the unique optimal propagation of `inst` under the given
/// insertlets and configuration.
///
/// The returned script is schema compliant and side-effect free
/// (Theorems 3–4); [`crate::verify_propagation`] re-checks this
/// explicitly.
pub fn propagate(
    inst: &Instance<'_>,
    insertlets: &InsertletPackage,
    cfg: &Config,
) -> Result<Propagation, PropagateError> {
    let sizes = min_sizes(inst.dtd, inst.alphabet_len);
    let cost = CostModel {
        sizes: &sizes,
        insertlets,
    };
    propagate_with(inst, &cost, cfg)
}

/// The propagation core, parameterised by a prebuilt cost model so callers
/// holding cached min-size tables (the [`crate::Engine`]) skip the
/// per-call `min_sizes` recomputation that [`propagate`] performs.
pub(crate) fn propagate_with(
    inst: &Instance<'_>,
    cost: &CostModel<'_>,
    cfg: &Config,
) -> Result<Propagation, PropagateError> {
    propagate_with_cache(inst, cost, cfg, None, None, &mut PropScratch::new(), None)
}

/// The cache-aware propagation core: graphs and optimal subgraphs for
/// nodes outside the update footprint (`fp`'s clean region) are served
/// from — and stored into — the session's [`PropCache`]. With `cache` /
/// `fp` absent this is exactly [`propagate_with`]; with them present the
/// result is byte-identical but the dynamic program is only recomputed
/// inside the footprint.
#[allow(clippy::too_many_arguments)]
pub(crate) fn propagate_with_cache(
    inst: &Instance<'_>,
    cost: &CostModel<'_>,
    cfg: &Config,
    mut cache: Option<&mut PropCache>,
    fp: Option<&ScriptFootprint>,
    scratch: &mut PropScratch,
    mut phases: Option<&mut PhaseBreakdown>,
) -> Result<Propagation, PropagateError> {
    let t0 = phases.is_some().then(Instant::now);
    let mut typing_ns = 0u64;
    let forest = PropagationForest::build_with(
        inst,
        cost,
        cache.as_deref_mut(),
        fp,
        scratch,
        phases.is_some().then_some(&mut typing_ns),
    )?;
    if let (Some(p), Some(t0)) = (phases.as_deref_mut(), t0) {
        let total = t0.elapsed().as_nanos() as u64;
        p.typing_ns = typing_ns;
        p.graph_build_ns = total.saturating_sub(typing_ns);
    }
    let t1 = phases.is_some().then(Instant::now);
    let mut gen = inst.id_gen();
    let script = assemble(
        inst,
        &forest,
        cost,
        cfg,
        forest.root,
        &mut gen,
        &mut SlotMap::with_capacity(inst.update.size()),
        cache,
        fp,
        scratch,
    )?;
    if let (Some(p), Some(t1)) = (phases, t1) {
        p.assemble_ns = t1.elapsed().as_nanos() as u64;
    }
    let cost_total = forest.optimal_cost();
    debug_assert_eq!(xvu_edit::cost(&script) as u64, cost_total);
    Ok(Propagation {
        script,
        cost: cost_total,
        forest,
    })
}

/// Convenience entry point for applications that edit the *view tree*
/// directly instead of building scripts: derives the view update by
/// identifier-based diff (`xvu_edit::diff`) and propagates it.
///
/// `edited_view` must be obtained from `extract_view(ann, source)` by
/// subtree insertions/deletions (identifiers of kept nodes preserved,
/// fresh identifiers disjoint from the source's).
pub fn propagate_view_edit(
    dtd: &xvu_dtd::Dtd,
    ann: &xvu_view::Annotation,
    source: &xvu_tree::DocTree,
    edited_view: &xvu_tree::DocTree,
    alphabet_len: usize,
    insertlets: &InsertletPackage,
    cfg: &Config,
) -> Result<Propagation, PropagateError> {
    let view = xvu_view::extract_view(ann, source);
    let update = xvu_edit::diff(&view, edited_view)?;
    let inst = Instance::new(dtd, ann, source, &update, alphabet_len)?;
    propagate(&inst, insertlets, cfg)
}

/// Builds the script for preserved node `n` from its chosen optimal path.
///
/// `opt_cache` memoises optimal subgraphs per update-tree slot within one
/// assembly (a node's graph is walked once, but subgraph extraction is
/// reused by enumeration callers); for clean nodes the extraction is
/// additionally memoised *across* updates in the session `cache`.
#[allow(clippy::too_many_arguments)]
fn assemble(
    inst: &Instance<'_>,
    forest: &PropagationForest,
    cost: &CostModel<'_>,
    cfg: &Config,
    n: NodeId,
    gen: &mut NodeIdGen,
    opt_cache: &mut SlotMap<Arc<PropGraph>>,
    mut cache: Option<&mut PropCache>,
    fp: Option<&ScriptFootprint>,
    scratch: &mut PropScratch,
) -> Result<Script, PropagateError> {
    let nslot = inst.update.slot(n).expect("preserved node in update");
    // Identity fast path: a clean node (subtree entirely `Nop`) whose
    // cheapest propagation costs 0 keeps its source subtree verbatim —
    // every 0-weight edge of `G_n` is a `Nop*` edge (deletions weigh the
    // subtree size, inserts at least 1), so any optimal path reproduces
    // the source child word unchanged, recursively. Emitting the nop
    // script directly skips the walk and the per-node subgraph machinery.
    if fp.is_some_and(|f| f.is_clean(nslot)) && forest.cost(n) == Some(0) {
        return Ok(nop_script(&inst.source.subtree(n)));
    }
    let opt: Arc<PropGraph> = match opt_cache.get(nslot) {
        Some(g) => Arc::clone(g),
        None => {
            // Clean nodes key the session memo by their document slot;
            // the extraction is a pure function of the (unchanged) graph.
            let src_slot = if fp.is_some_and(|f| f.is_clean(nslot)) {
                inst.source.slot(n)
            } else {
                None
            };
            let memo = match (cache.as_deref_mut(), src_slot) {
                (Some(c), Some(s)) => c.opt(s),
                _ => None,
            };
            let g = match memo {
                Some(g) => g,
                None => {
                    let g = Arc::new(
                        forest
                            .graph(n)
                            .ok_or(PropagateError::NoPropagationPath(n))?
                            .optimal_subgraph_with(scratch.graph_mut())
                            .ok_or(PropagateError::NoPropagationPath(n))?,
                    );
                    if let (Some(c), Some(s)) = (cache.as_deref_mut(), src_slot) {
                        c.store_opt(s, Arc::clone(&g));
                    }
                    g
                }
            };
            opt_cache.insert(nslot, Arc::clone(&g));
            g
        }
    };
    let path = opt
        .walk(|g, outs| cfg.selector.pick(g, outs))
        .ok_or(PropagateError::NoPropagationPath(n))?;
    build_script_from_path(
        inst, forest, cost, cfg, n, &opt, &path, gen, opt_cache, cache, fp, scratch,
    )
}

/// Assembles the script for node `n` given an explicit edge path in (a
/// subgraph of) `G_n`. Shared by the main algorithm and the enumerators.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_script_from_path(
    inst: &Instance<'_>,
    forest: &PropagationForest,
    cost: &CostModel<'_>,
    cfg: &Config,
    n: NodeId,
    graph: &PropGraph,
    path: &[u32],
    gen: &mut NodeIdGen,
    opt_cache: &mut SlotMap<Arc<PropGraph>>,
    mut cache: Option<&mut PropCache>,
    fp: Option<&ScriptFootprint>,
    scratch: &mut PropScratch,
) -> Result<Script, PropagateError> {
    let x = inst.source.label(n);
    // Positional edges resolve against the node's child words — see
    // `PropEdge`: for common children the source id serves both trees.
    let t_kids = inst.source.children(n);
    let s_kids = inst.update.children(n);
    let mut script: Script = Tree::leaf_with_id(n, ELabel::nop(x));
    let root = script.root();
    for &e in path {
        let sub = match graph.edge(e).payload {
            PropEdge::InsInvisible(y) => {
                let frag = cost.insertlets.instantiate(
                    inst.dtd,
                    cost.sizes,
                    y,
                    gen,
                    cfg.witness_budget,
                )?;
                ins_script(&frag)
            }
            PropEdge::DelInvisible { tpos } | PropEdge::DelVisible { tpos } => {
                del_script(&inst.source.subtree(t_kids[tpos as usize]))
            }
            PropEdge::NopInvisible { tpos, .. } => {
                nop_script(&inst.source.subtree(t_kids[tpos as usize]))
            }
            PropEdge::InsVisible { spos } => {
                let inv = forest
                    .inversion(s_kids[spos as usize])
                    .expect("built forest has an inversion per Ins child")
                    .materialize_min(inst.dtd, cost, cfg.selector, gen, cfg.witness_budget)?;
                ins_script(&inv)
            }
            PropEdge::NopVisible { tpos, .. } => assemble(
                inst,
                forest,
                cost,
                cfg,
                t_kids[tpos as usize],
                gen,
                opt_cache,
                cache.as_deref_mut(),
                fp,
                scratch,
            )?,
        };
        let pos = script.children(root).len();
        script.attach_subtree(root, pos, sub)?;
    }
    Ok(script)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::verify::verify_propagation;
    use xvu_edit::script_to_term;

    #[test]
    fn paper_running_example_end_to_end() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let pkg = InsertletPackage::new();
        let prop = propagate(&inst, &pkg, &Config::default()).unwrap();
        assert_eq!(prop.cost, 14, "Fig. 7 propagation has cost 14");
        verify_propagation(&inst, &prop.script).unwrap();
        assert_eq!(xvu_edit::cost(&prop.script), 14);
    }

    #[test]
    fn propagation_matches_fig7_shape() {
        // With Nop-preference, the root path keeps a4/c5/d6 (Nop), deletes
        // a1/b2/d3, and inserts the new material — exactly Fig. 7's choice
        // of operations (fresh identifiers may differ from the figure's).
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let pkg = InsertletPackage::new();
        let prop = propagate(&inst, &pkg, &Config::default()).unwrap();
        let term = script_to_term(&prop.script, &fx.alpha);
        // structural spot-checks (identifiers of fresh nodes elided):
        assert!(term.starts_with("nop:r#0(del:a#1, del:b#2, del:d#3(del:a#7, del:c#8)"));
        assert!(term.contains("nop:a#4"));
        assert!(term.contains("nop:c#5"));
        assert!(term.contains("ins:d#11("));
        assert!(term.contains("ins:a#12"));
        assert!(term.contains("nop:d#6(nop:b#9, nop:c#10, ins:a#"));
        assert!(term.contains("ins:c#15"));
    }

    #[test]
    fn selectors_all_produce_valid_optimal_propagations() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let pkg = InsertletPackage::new();
        for sel in [
            Selector::First,
            Selector::PreferNop,
            Selector::PreferTypePreserving,
        ] {
            let cfg = Config {
                selector: sel,
                ..Config::default()
            };
            let prop = propagate(&inst, &pkg, &cfg).unwrap();
            assert_eq!(prop.cost, 14, "selector {sel:?}");
            verify_propagation(&inst, &prop.script).unwrap();
        }
    }

    #[test]
    fn propagation_is_deterministic() {
        let fx = fixtures::paper_running_example();
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &fx.s0, fx.alpha.len()).unwrap();
        let pkg = InsertletPackage::new();
        let p1 = propagate(&inst, &pkg, &Config::default()).unwrap();
        let p2 = propagate(&inst, &pkg, &Config::default()).unwrap();
        assert_eq!(
            script_to_term(&p1.script, &fx.alpha),
            script_to_term(&p2.script, &fx.alpha)
        );
    }

    #[test]
    fn propagate_view_edit_matches_script_pipeline() {
        // Edit the view tree directly: delete a1 and d3, append a fresh a.
        let fx = fixtures::paper_running_example();
        let mut edited = xvu_view::extract_view(&fx.ann, &fx.t0);
        edited.detach_subtree(xvu_tree::NodeId(1)).unwrap();
        edited.detach_subtree(xvu_tree::NodeId(3)).unwrap();
        let mut gen = fx.gen.clone();
        let a = edited.label(xvu_tree::NodeId(4));
        let root = edited.root();
        edited.add_child(root, &mut gen, a);
        // word: a4 d6 a_new — needs a trailing d; make it view-legal by
        // also appending a d.
        let d = edited.label(xvu_tree::NodeId(6));
        edited.add_child(root, &mut gen, d);

        let prop = propagate_view_edit(
            &fx.dtd,
            &fx.ann,
            &fx.t0,
            &edited,
            fx.alpha.len(),
            &InsertletPackage::new(),
            &Config::default(),
        )
        .unwrap();
        let out = xvu_edit::output_tree(&prop.script).unwrap();
        assert!(fx.dtd.is_valid(&out));
        assert_eq!(xvu_view::extract_view(&fx.ann, &out), edited);
    }

    #[test]
    fn identity_update_propagates_to_identity() {
        let fx = fixtures::paper_running_example();
        let view = xvu_view::extract_view(&fx.ann, &fx.t0);
        let s = xvu_edit::nop_script(&view);
        let inst = Instance::new(&fx.dtd, &fx.ann, &fx.t0, &s, fx.alpha.len()).unwrap();
        let pkg = InsertletPackage::new();
        let prop = propagate(&inst, &pkg, &Config::default()).unwrap();
        assert_eq!(prop.cost, 0);
        let out = xvu_edit::output_tree(&prop.script).unwrap();
        assert_eq!(out, fx.t0, "identity update must not touch the source");
    }
}
